//! # sample-attention
//!
//! Umbrella crate for the Rust reproduction of **SampleAttention:
//! Near-Lossless Acceleration of Long Context LLM Inference with Adaptive
//! Structured Sparse Attention** (MLSys 2025).
//!
//! This crate re-exports the whole workspace under one roof so examples,
//! integration tests, and downstream users can depend on a single name:
//!
//! - [`json`] — minimal std-only JSON encode/parse ([`sa_json`])
//! - [`trace`] — hierarchical span tracing, metrics registry,
//!   Chrome-trace export ([`sa_trace`])
//! - [`tensor`] — dense math substrate ([`sa_tensor`])
//! - [`kernels`] — full / flash / block-sparse attention kernels
//!   ([`sa_kernels`])
//! - [`core`] — the SampleAttention algorithm, CRA/SD metrics, tuner
//!   ([`sa_core`])
//! - [`baselines`] — BigBird, StreamingLLM, HyperAttention, Hash-Sparse
//!   ([`sa_baselines`])
//! - [`model`] — synthetic decoder-only transformer substrate
//!   ([`sa_model`])
//! - [`workloads`] — NIAH / LongBench-proxy / BABILong-proxy generators and
//!   scorers ([`sa_workloads`])
//! - [`perf`] — analytical A100 roofline performance model ([`sa_perf`])
//! - [`serve`] — deadline-aware request scheduler with cooperative
//!   cancellation and the degradation ladder ([`sa_serve`])
//!
//! ## Quickstart
//!
//! ```
//! use sample_attention::core::{SampleAttention, SampleAttentionConfig};
//! use sample_attention::tensor::DeterministicRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = DeterministicRng::new(0);
//! let s = 256;
//! let d = 32;
//! let q = rng.normal_matrix(s, d, 1.0);
//! let k = rng.normal_matrix(s, d, 1.0);
//! let v = rng.normal_matrix(s, d, 1.0);
//!
//! let cfg = SampleAttentionConfig::builder()
//!     .cra_threshold(0.95)
//!     .sample_ratio(0.05)
//!     .window_ratio(0.08)
//!     .build()?;
//! let attn = SampleAttention::new(cfg);
//! let out = attn.forward(&q, &k, &v)?;
//! assert_eq!(out.output.shape(), (s, d));
//! # Ok(())
//! # }
//! ```

pub use sa_baselines as baselines;
pub use sa_json as json;
pub use sa_core as core;
pub use sa_kernels as kernels;
pub use sa_model as model;
pub use sa_perf as perf;
pub use sa_serve as serve;
pub use sa_tensor as tensor;
pub use sa_trace as trace;
pub use sa_workloads as workloads;
