//! Integration checks of the analytical performance model against the
//! paper's published latency shapes.

use sample_attention::perf::calibrate::{attention_share_mae, calibrate_against_table4};
use sample_attention::perf::ttft::{AttentionKind, TtftModel};
use sample_attention::perf::SparsityTrend;

const SA95: AttentionKind = AttentionKind::SampleAttention {
    alpha: 0.95,
    sample_ratio: 0.05,
};
const SA80: AttentionKind = AttentionKind::SampleAttention {
    alpha: 0.80,
    sample_ratio: 0.05,
};

#[test]
fn figure5_shape_speedups_at_96k() {
    let m = TtftModel::paper_microbench();
    let s = 98_304;
    let flash = m.attention_latency(s, AttentionKind::Flash);
    let speedup95 = flash / m.attention_latency(s, SA95);
    let speedup80 = flash / m.attention_latency(s, SA80);
    // Paper: 2.20x and 5.12x; shape tolerance ±50 %.
    assert!((1.5..=3.5).contains(&speedup95), "{speedup95}");
    assert!((3.5..=9.0).contains(&speedup80), "{speedup80}");
    assert!(speedup80 > speedup95);
}

#[test]
fn figure5_no_advantage_at_short_lengths() {
    let m = TtftModel::paper_microbench();
    let flash = m.attention_latency(8_192, AttentionKind::Flash);
    let sample = m.attention_latency(8_192, SA95);
    assert!(flash / sample < 1.6, "speedup {}", flash / sample);
}

#[test]
fn figure6_speedup_grows_with_length() {
    let m = TtftModel::paper_microbench();
    let speedup = |s: usize| {
        m.ttft(s, AttentionKind::Flash).total_s() / m.ttft(s, SA95).total_s()
    };
    let s96k = speedup(98_304);
    let s1m = speedup(1_048_576);
    assert!(s1m > s96k, "96K {s96k} vs 1M {s1m}");
    assert!(s1m > 2.0 && s1m < 8.0, "1M TTFT reduction {s1m}");
}

#[test]
fn table4_attention_share_tracks_paper() {
    let rows = calibrate_against_table4(&TtftModel::paper_serving());
    // Monotone growth and the published range (32 % → 88 %).
    for w in rows.windows(2) {
        assert!(w[1].model_attention_share >= w[0].model_attention_share);
    }
    assert!(rows[0].model_attention_share < 0.55);
    assert!(rows.last().unwrap().model_attention_share > 0.75);
    assert!(attention_share_mae(&rows) < 15.0);
}

#[test]
fn table5_trend_reproduces_published_densities() {
    let t = SparsityTrend::paper();
    // Published: SD(0.95) at 128K = 95.84 %.
    let sd = t.sparsity_degree(0.95, 131_072);
    assert!((sd - 0.9584).abs() < 0.01, "sd {sd}");
    // Extrapolation stays monotone out to 1M.
    assert!(t.density(0.95, 1_048_576) < t.density(0.95, 131_072));
}
