//! The Appendix A.6 extension: diagonal sparse structures.
//!
//! The paper observes "additional diagonal structures in heads with lower
//! sparsity" and leaves capturing them to future work. This suite
//! exercises the implemented extension: diagonal offsets in
//! [`StructuredMask`], diagonal accumulation in stage-1 sampling, and
//! detection inside `SampleAttention`.

use sample_attention::core::{SampleAttention, SampleAttentionConfig};
use sample_attention::core::sampling::sample_attention_scores;
use sample_attention::kernels::{
    full_attention, masked_attention_dense, sparse_flash_attention,
    StructuredMask,
};
use sample_attention::tensor::{cosine_similarity, max_abs_diff, DeterministicRng, Matrix};

/// A head whose scores concentrate on a fixed relative offset `delta`:
/// each query matches the key planted `delta` positions before it.
fn diagonal_head(s: usize, d: usize, delta: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(seed);
    // Per-position random unit signatures.
    let sig: Vec<Vec<f32>> = (0..s)
        .map(|_| sample_attention::tensor::unit_vector(&mut rng, d))
        .collect();
    let gain = 4.0 * (d as f32).powf(0.25);
    let k = Matrix::from_fn(s, d, |j, c| gain * sig[j][c] + 0.05 * ((j + c) as f32).sin());
    let q = Matrix::from_fn(s, d, |i, c| {
        if i >= delta {
            gain * sig[i - delta][c]
        } else {
            0.1 * ((i * 7 + c) as f32).cos()
        }
    });
    let v = rng.normal_matrix(s, d, 1.0);
    (q, k, v)
}

#[test]
fn diagonal_mask_matches_dense_oracle() {
    let mut rng = DeterministicRng::new(1);
    let s = 48;
    let q = rng.normal_matrix(s, 8, 1.0);
    let k = rng.normal_matrix(s, 8, 1.0);
    let v = rng.normal_matrix(s, 8, 1.0);
    let mask = StructuredMask::builder(s, s)
        .window(4)
        .sinks(2)
        .columns(vec![11, 20])
        .diagonals(vec![9, 17, 30])
        .build()
        .unwrap();
    // nnz bookkeeping agrees with materialisation.
    assert_eq!(mask.nnz(), mask.to_dense().nnz());
    // kernel agrees with the dense-masked reference.
    let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
    let reference = masked_attention_dense(&q, &k, &v, &mask.to_dense()).unwrap();
    assert!(max_abs_diff(sparse.output.as_slice(), reference.output.as_slice()) < 1e-4);
    // diagonal entries actually live.
    assert!(mask.is_allowed(40, 40 - 9));
    assert!(mask.is_allowed(40, 40 - 30));
    assert!(!mask.is_allowed(40, 40 - 12));
}

#[test]
fn sampling_accumulates_diagonal_mass() {
    let delta = 25;
    let (q, k, _v) = diagonal_head(200, 16, delta, 2);
    let sampled = sample_attention_scores(&q, &k, 1.0).unwrap();
    // The planted offset dominates the diagonal reduction.
    let total: f32 = sampled.diagonal_scores.iter().sum();
    let share = sampled.diagonal_scores[delta] / total;
    assert!(share > 0.4, "diagonal share {share}");
    // ... while no single column dominates the column reduction (the
    // pattern is invisible to the stripe detector — the A.6 motivation).
    let col_total: f32 = sampled.column_scores.iter().sum();
    let max_col = sampled
        .column_scores
        .iter()
        .fold(0.0f32, |a, &b| a.max(b));
    assert!(max_col / col_total < 0.1, "max column share {}", max_col / col_total);
}

#[test]
fn diagonal_detection_recovers_the_pattern() {
    let delta = 40;
    let s = 320;
    let (q, k, v) = diagonal_head(s, 16, delta, 3);
    let exact = full_attention(&q, &k, &v, true).unwrap();

    let base = SampleAttentionConfig::builder()
        .cra_threshold(0.9)
        .max_kv_ratio(0.25) // keep the stripe stage from brute-forcing it
        .build()
        .unwrap();
    let without = SampleAttention::new(base).forward(&q, &k, &v).unwrap();

    let with_cfg = SampleAttentionConfig {
        diagonal_threshold: 0.05,
        ..base
    };
    let with = SampleAttention::new(with_cfg).forward(&q, &k, &v).unwrap();
    assert!(
        with.mask.diagonal_offsets().contains(&delta),
        "detected {:?}",
        with.mask.diagonal_offsets()
    );

    let sim_without = cosine_similarity(without.output.as_slice(), exact.output.as_slice());
    let sim_with = cosine_similarity(with.output.as_slice(), exact.output.as_slice());
    assert!(
        sim_with > sim_without,
        "with {sim_with} vs without {sim_without}"
    );
    assert!(sim_with > 0.99, "with-diagonals similarity {sim_with}");
    // And the diagonal costs almost nothing: one key per row.
    assert!(with.stats.mask_density < without.stats.mask_density + 0.05);
}

#[test]
fn detection_disabled_by_default() {
    let (q, k, _v) = diagonal_head(160, 8, 20, 4);
    let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
    let discovered = attn.discover_mask(&q, &k).unwrap();
    assert!(discovered.mask.diagonal_offsets().is_empty());
}
