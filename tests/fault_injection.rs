//! Fault-injection acceptance suite for the panic-free attention pipeline.
//!
//! Every fault class the harness can inject (`sa_tensor::fault`) must be
//! *contained*: the pipeline returns a typed [`SaError`] under
//! `HealthPolicy::Propagate`, or records a dense fallback with a fully
//! finite output under `HealthPolicy::FallbackDense`. A process panic or
//! a NaN escaping into the returned attention output is a failure of this
//! suite, whatever the fault mix.
//!
//! All corruption is seeded and deterministic, so failures replay
//! bit-identically. `scripts/verify.sh` runs this file twice — under
//! `SA_THREADS=1` and the session default — and once more with
//! `SA_FAULT=smoke`, which routes the canonical all-faults plan through
//! `sa_fault_env_plan_is_contained_end_to_end` below. A custom spec such
//! as `SA_FAULT=seed=9,nan=2,panic=sparse_flash_attention` works too.

use sample_attention::baselines::FullAttention;
use sample_attention::core::{
    select_tile_size, FallbackReason, HealthPolicy, SampleAttention, SampleAttentionConfig,
    SampleAttentionError, SparseKernel, TilePolicy,
};
use sample_attention::kernels::{StructuredMask, MAX_TILE};
use sample_attention::json;
use sample_attention::kernels::{flash_attention, FlashParams};
use sample_attention::model::{ModelConfig, SyntheticTransformer};
use sample_attention::tensor::fault::{self, FaultPlan};
use sample_attention::tensor::{DeterministicRng, Matrix, SaError};

fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(seed);
    (
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
    )
}

fn attn(policy: HealthPolicy) -> SampleAttention {
    let cfg = SampleAttentionConfig::builder()
        .health_policy(policy)
        .build()
        .expect("valid config");
    SampleAttention::new(cfg)
}

fn assert_all_finite(label: &str, m: &Matrix) {
    let bad = m.as_slice().iter().filter(|x| !x.is_finite()).count();
    assert_eq!(
        bad, 0,
        "{label}: {bad} non-finite values escaped into the output"
    );
}

/// NaN column stripes in Q: FallbackDense recovers with a finite dense
/// output and records why; Propagate surfaces the typed input sentinel.
#[test]
fn nan_stripes_in_inputs_never_escape() {
    let plan = FaultPlan::new(0xA11A).nan_stripes(2);
    let (mut q, k, v) = qkv(192, 16, 1);
    plan.corrupt_matrix(&mut q, 0);
    assert!(q.as_slice().iter().any(|x| x.is_nan()), "plan must corrupt");

    let out = attn(HealthPolicy::FallbackDense)
        .forward(&q, &k, &v)
        .unwrap();
    assert_eq!(out.stats.fallback_reason, FallbackReason::NonFiniteInputs);
    assert!(out.stats.fell_back());
    assert_eq!(out.stats.kv_ratio, 1.0);
    assert_all_finite("nan stripes / fallback", &out.output);

    match attn(HealthPolicy::Propagate).forward(&q, &k, &v) {
        Err(SampleAttentionError::Tensor(SaError::NonFinite { stage, count, .. })) => {
            assert_eq!(stage, "inputs");
            assert!(count > 0);
        }
        other => panic!("expected NonFinite inputs error, got {other:?}"),
    }
}

/// `±inf` entries in K and V are caught by the same input sentinel —
/// infinities would otherwise poison the softmax normalizer silently.
#[test]
fn inf_logits_in_inputs_never_escape() {
    let plan = FaultPlan::new(0xB0B).inf_logits(3);
    let (q, mut k, mut v) = qkv(160, 16, 2);
    plan.corrupt_matrix(&mut k, 1);
    plan.corrupt_matrix(&mut v, 2);

    let out = attn(HealthPolicy::FallbackDense)
        .forward(&q, &k, &v)
        .unwrap();
    assert_eq!(out.stats.fallback_reason, FallbackReason::NonFiniteInputs);
    assert_all_finite("inf logits / fallback", &out.output);

    let err = attn(HealthPolicy::Propagate)
        .forward(&q, &k, &v)
        .unwrap_err();
    assert!(
        matches!(
            err,
            SampleAttentionError::Tensor(SaError::NonFinite {
                stage: "inputs",
                ..
            })
        ),
        "expected NonFinite inputs error, got {err:?}"
    );
}

/// Zeroed rows are *finite* data — a silent upstream truncation rather
/// than numerical corruption. The pipeline must stay healthy (or degrade
/// gracefully) under both policies, and the output must stay finite: the
/// fully-masked-softmax convention maps dead rows to all-zero weights.
#[test]
fn zeroed_rows_stay_finite_under_both_policies() {
    let plan = FaultPlan::new(0xC4C4).zero_rows(3);
    let (mut q, mut k, v) = qkv(200, 16, 3);
    plan.corrupt_matrix(&mut q, 0);
    plan.corrupt_matrix(&mut k, 1);

    for policy in [HealthPolicy::FallbackDense, HealthPolicy::Propagate] {
        match attn(policy).forward(&q, &k, &v) {
            Ok(out) => assert_all_finite("zero rows", &out.output),
            Err(e) => panic!("zeroed rows must not error ({policy:?}): {e}"),
        }
    }
}

/// Zero-mass stage-1 scores (all sampled probability tampered to zero)
/// trip the degenerate-mask sentinel; the dense fallback is bit-identical
/// to running the flash kernel directly on the clean inputs.
#[test]
fn zero_mass_scores_degrade_to_dense() {
    let (q, k, v) = qkv(192, 16, 4);
    {
        let _guard = fault::install(FaultPlan::new(0xD0).zero_mass());
        let out = attn(HealthPolicy::FallbackDense)
            .forward(&q, &k, &v)
            .unwrap();
        assert_eq!(out.stats.fallback_reason, FallbackReason::ZeroSampledMass);
        assert_eq!(out.stats.mask_density, 1.0);
        assert_all_finite("zero mass / fallback", &out.output);

        let dense = flash_attention(&q, &k, &v, true, FlashParams::default()).unwrap();
        assert_eq!(
            out.output, dense.output,
            "fallback must equal the dense kernel"
        );

        let err = attn(HealthPolicy::Propagate)
            .forward(&q, &k, &v)
            .unwrap_err();
        assert!(
            matches!(
                err,
                SampleAttentionError::Tensor(SaError::DegenerateMask {
                    stage: "stage1_scores",
                    ..
                })
            ),
            "expected stage1 degenerate-mask error, got {err:?}"
        );
    }
    // Guard dropped: the same operator is healthy again.
    let out = attn(HealthPolicy::Propagate).forward(&q, &k, &v).unwrap();
    assert_eq!(out.stats.fallback_reason, FallbackReason::None);
}

/// Forced worker panics at each pool call site inside the operator are
/// caught at the chunk boundary and surfaced as `SaError::WorkerPanic`
/// (Propagate) or absorbed by the dense fallback (FallbackDense). The
/// fallback works even while the plan is live because it runs at the
/// distinct `"flash_attention"` site.
#[test]
fn worker_panics_are_contained_at_every_operator_site() {
    let (q, k, v) = qkv(192, 16, 5);
    for target in ["stage1_sampling", "sparse_flash_attention"] {
        let _guard = fault::install(FaultPlan::new(0xE0).worker_panic(target));

        let err = attn(HealthPolicy::Propagate)
            .forward(&q, &k, &v)
            .unwrap_err();
        match err {
            SampleAttentionError::Tensor(SaError::WorkerPanic { site, ref message }) => {
                assert_eq!(site, target);
                assert!(!message.is_empty(), "panic payload must be preserved");
            }
            other => panic!("{target}: expected WorkerPanic, got {other:?}"),
        }

        let out = attn(HealthPolicy::FallbackDense)
            .forward(&q, &k, &v)
            .unwrap();
        assert_eq!(out.stats.fallback_reason, FallbackReason::WorkerPanic);
        assert_all_finite(target, &out.output);
    }
}

/// The tile autotuner's failure surface is typed, never a panic: an
/// invalid policy (empty candidate list, candidate above `MAX_TILE`)
/// returns `InvalidConfig`, while degenerate masks (nnz == 0, problems
/// smaller than every candidate) take the clamped fallback tile.
#[test]
fn tile_autotuner_degenerate_inputs_are_typed_errors() {
    let mask = StructuredMask::dense_causal(8, 8);

    let empty_policy = TilePolicy {
        candidates: vec![],
        ..TilePolicy::default()
    };
    assert!(
        matches!(
            select_tile_size(&empty_policy, &mask),
            Err(SampleAttentionError::InvalidConfig { .. })
        ),
        "empty candidate list must be a typed config error"
    );

    let oversized_policy = TilePolicy {
        candidates: vec![MAX_TILE + 1],
        ..TilePolicy::default()
    };
    assert!(
        matches!(
            select_tile_size(&oversized_policy, &mask),
            Err(SampleAttentionError::InvalidConfig { .. })
        ),
        "candidate above MAX_TILE must be a typed config error"
    );

    // Fully-masked problem (nnz == 0): valid fallback tile, flagged.
    let dead = StructuredMask::builder(16, 16).window(0).build().unwrap();
    let choice = select_tile_size(&TilePolicy::default(), &dead).unwrap();
    assert!(choice.fallback, "nnz == 0 must take the fallback path");
    assert!(choice.tile >= 1 && choice.tile <= MAX_TILE);

    // Problem smaller than every candidate: clamped, still valid.
    let tiny = StructuredMask::dense_causal(3, 3);
    let choice = select_tile_size(&TilePolicy::default(), &tiny).unwrap();
    assert!(choice.fallback);
    assert_eq!(choice.tile, 3, "fallback clamps to the problem size");
}

/// Worker panics at the sparse-kernel pool site are contained for *both*
/// kernel implementations — the tiled rewrite reuses the row-major
/// kernel's `"sparse_flash_attention"` site so existing fault plans keep
/// their coverage.
#[test]
fn worker_panics_contained_for_both_sparse_kernels() {
    let (q, k, v) = qkv(192, 16, 7);
    for kernel in [SparseKernel::RowMajor, SparseKernel::Tiled] {
        let _guard = fault::install(FaultPlan::new(0xE1).worker_panic("sparse_flash_attention"));

        let propagate = SampleAttention::new(
            SampleAttentionConfig::builder()
                .sparse_kernel(kernel)
                .health_policy(HealthPolicy::Propagate)
                .build()
                .unwrap(),
        );
        let err = propagate.forward(&q, &k, &v).unwrap_err();
        assert!(
            matches!(
                err,
                SampleAttentionError::Tensor(SaError::WorkerPanic {
                    site: "sparse_flash_attention",
                    ..
                })
            ),
            "{kernel:?}: expected WorkerPanic, got {err:?}"
        );

        let fallback = SampleAttention::new(
            SampleAttentionConfig::builder()
                .sparse_kernel(kernel)
                .health_policy(HealthPolicy::FallbackDense)
                .build()
                .unwrap(),
        );
        let out = fallback.forward(&q, &k, &v).unwrap();
        assert_eq!(out.stats.fallback_reason, FallbackReason::WorkerPanic);
        assert_all_finite(&format!("{kernel:?} fallback"), &out.output);
    }
}

/// A panic in the model's per-head fan-out (outside the operator's own
/// fallback scope) propagates as a typed error from `prefill`, never as
/// a process abort; the same model recovers once the plan is dropped.
#[test]
fn layer_head_panics_surface_as_typed_prefill_errors() {
    let model = SyntheticTransformer::new(ModelConfig::tiny(21)).unwrap();
    let tokens = model.tokenize_filler(60);
    {
        let _guard = fault::install(FaultPlan::new(0xF0).worker_panic("layer_heads"));
        let err = model.prefill(&tokens, &FullAttention::new()).unwrap_err();
        match err {
            SaError::WorkerPanic { site, .. } => assert_eq!(site, "layer_heads"),
            other => panic!("expected layer_heads WorkerPanic, got {other:?}"),
        }
    }
    let result = model.prefill(&tokens, &FullAttention::new()).unwrap();
    assert_eq!(result.fallback_heads(), 0);
    assert_eq!(result.heads_alpha_unsatisfied(), 0);
}

/// The decode path: a worker panic in the per-head fan-out during a
/// decode step surfaces as a typed error from `DecodeSession::step`,
/// never a process abort, and the *same session* keeps working once the
/// plan is dropped — a contained step must not corrupt session state.
#[test]
fn decode_steps_surface_worker_panics_as_typed_errors() {
    let model = SyntheticTransformer::new(ModelConfig::tiny(33)).unwrap();
    let tokens = model.tokenize_filler(48);
    // Healthy prefill; the fault is installed only for the decode steps.
    let mut session = model.begin_decode(&tokens, &FullAttention::new()).unwrap();
    let healthy_len = session.tokens().len();
    {
        let _guard = fault::install(FaultPlan::new(0xF1).worker_panic("layer_heads"));
        let err = session.step().unwrap_err();
        match err {
            SaError::WorkerPanic { site, ref message } => {
                assert_eq!(site, "layer_heads");
                assert!(!message.is_empty());
            }
            other => panic!("expected layer_heads WorkerPanic from step, got {other:?}"),
        }
        let err = session.generate_in(3, 0..64).unwrap_err();
        assert!(
            matches!(err, SaError::WorkerPanic { .. }),
            "generate_in must surface the same typed error, got {err:?}"
        );
    }
    // Plan dropped: the session recovers and generates normally.
    session.step().unwrap();
    let generated = session.generate_in(2, 0..128).unwrap();
    assert_eq!(generated.len(), 2);
    assert!(session.tokens().len() > healthy_len);
}

/// Decode under an `SA_FAULT`-style worker-panic plan installed *before*
/// the session exists: prefill itself fails typed; once the plan is
/// gone, a fresh session on the same model works end to end.
#[test]
fn decode_after_failed_prefill_recovers_on_a_fresh_session() {
    let model = SyntheticTransformer::new(ModelConfig::tiny(34)).unwrap();
    let tokens = model.tokenize_filler(40);
    {
        let _guard = fault::install(FaultPlan::new(0xF2).worker_panic("layer_heads"));
        let err = model
            .begin_decode(&tokens, &FullAttention::new())
            .err()
            .expect("prefill under a live panic plan must fail");
        assert!(matches!(err, SaError::WorkerPanic { .. }), "{err:?}");
    }
    let mut session = model.begin_decode(&tokens, &FullAttention::new()).unwrap();
    let (_, confidence) = session.step().unwrap();
    assert!(confidence.is_finite());
}

/// Truncated JSON (what a killed run leaves in `results/`) produces a
/// located parse error — byte offset plus line/column — instead of an
/// unwrap panic, for both raw values and typed config payloads.
#[test]
fn truncated_json_yields_located_errors() {
    let cfg = SampleAttentionConfig::paper_default();
    let text = json::to_string_pretty(&cfg);
    for bytes in [1usize, 16, text.len() / 2, text.len() - 1] {
        let broken = FaultPlan::new(0x11)
            .truncate_json(bytes)
            .corrupt_json(&text);
        assert!(broken.len() < text.len());
        let err = json::from_str::<SampleAttentionConfig>(&broken).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("byte"), "no byte offset in: {msg}");
        assert!(msg.contains("line"), "no line number in: {msg}");
    }
}

/// End-to-end containment for the `SA_FAULT` plan: honors the
/// environment spec when set (`smoke`, or a custom comma-separated
/// spec), otherwise exercises the built-in smoke plan. Whatever the mix,
/// the outcome is a finite output or a typed error — never a panic.
#[test]
fn sa_fault_env_plan_is_contained_end_to_end() {
    let plan = FaultPlan::from_env().unwrap_or_else(|| FaultPlan::smoke(0x5EED));
    let (mut q, mut k, mut v) = qkv(224, 16, 6);
    plan.corrupt_matrix(&mut q, 0);
    plan.corrupt_matrix(&mut k, 1);
    plan.corrupt_matrix(&mut v, 2);
    let corrupts_data = plan.nan_stripes > 0 || plan.inf_logits > 0;

    let _guard = fault::install(plan.clone());
    for policy in [HealthPolicy::FallbackDense, HealthPolicy::Propagate] {
        match attn(policy).forward(&q, &k, &v) {
            Ok(out) => {
                assert_all_finite("SA_FAULT plan", &out.output);
                if corrupts_data && policy == HealthPolicy::FallbackDense {
                    assert!(
                        out.stats.fell_back(),
                        "corrupted inputs must be recorded as a fallback"
                    );
                }
            }
            // A typed, displayable error is an acceptable containment
            // outcome (e.g. the plan panics the fallback's own site).
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }

    if let Some(bytes) = plan.truncate_json {
        let text = json::to_string_pretty(&SampleAttentionConfig::paper_default());
        if bytes < text.len() {
            let err = json::from_str::<SampleAttentionConfig>(&plan.corrupt_json(&text));
            assert!(err.is_err(), "truncated JSON must not parse");
        }
    }
}
