//! Smoke test over the checked-in `results/*.json` artifacts: every file
//! must parse with the in-repo JSON module and survive a
//! parse → serialize → parse round trip unchanged. This guards both the
//! artifacts (no hand-edit can corrupt them silently) and the parser
//! (it accepts everything the figure/table binaries emit).

use sample_attention::json::{self, Json};
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
}

fn json_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(results_dir())
        .expect("results/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_checked_in_result_parses() {
    let files = json_files();
    assert!(
        files.len() >= 11,
        "expected the full figure/table set, found {} json files",
        files.len()
    );
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let value: Json = json::parse(&text)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        // Every artifact is a non-trivial object or array, never a bare
        // scalar.
        match &value {
            Json::Object(fields) => assert!(!fields.is_empty(), "{} is empty", path.display()),
            Json::Array(items) => assert!(!items.is_empty(), "{} is empty", path.display()),
            other => panic!("{} has scalar top level: {other:?}", path.display()),
        }
    }
}

#[test]
fn corrupted_results_report_byte_offset_and_line() {
    // Truncate a real artifact the way the fault plan does and check the
    // parse error pinpoints the failure: byte offset + 1-based line and
    // column, so a broken `results/*.json` names the exact spot instead
    // of panicking opaquely.
    let plan = sample_attention::tensor::fault::FaultPlan::new(0xBAD).truncate_json(200);
    for path in json_files().into_iter().take(3) {
        let text = std::fs::read_to_string(&path).unwrap();
        let broken = plan.corrupt_json(&text);
        assert!(broken.len() < text.len(), "{} too short to truncate", path.display());
        let err = json::parse(&broken).unwrap_err();
        let loc = err
            .location()
            .unwrap_or_else(|| panic!("{}: error carries no location: {err}", path.display()));
        assert!(loc.offset <= broken.len(), "{}: offset {}", path.display(), loc.offset);
        assert!(loc.line >= 1 && loc.column >= 1);
        let msg = err.to_string();
        assert!(msg.contains("byte") && msg.contains("line"), "{msg}");
    }
}

#[test]
fn results_round_trip_through_sa_json() {
    for path in json_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let value: Json = json::parse(&text).unwrap();
        let reserialized = value.render(None);
        let reparsed: Json = json::parse(&reserialized)
            .unwrap_or_else(|e| panic!("{} re-parse failed: {e}", path.display()));
        assert_eq!(
            value,
            reparsed,
            "{} not stable under round trip",
            path.display()
        );
    }
}
