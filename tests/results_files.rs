//! Smoke test over the checked-in `results/*.json` artifacts: every file
//! must parse with the in-repo JSON module and survive a
//! parse → serialize → parse round trip unchanged. This guards both the
//! artifacts (no hand-edit can corrupt them silently) and the parser
//! (it accepts everything the figure/table binaries emit).

use sample_attention::json::{self, Json};
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
}

fn json_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(results_dir())
        .expect("results/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_checked_in_result_parses() {
    let files = json_files();
    assert!(
        files.len() >= 12,
        "expected the full figure/table set, found {} json files",
        files.len()
    );
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let value: Json = json::parse(&text)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        // Every artifact is a non-trivial object or array, never a bare
        // scalar.
        match &value {
            Json::Object(fields) => assert!(!fields.is_empty(), "{} is empty", path.display()),
            Json::Array(items) => assert!(!items.is_empty(), "{} is empty", path.display()),
            other => panic!("{} has scalar top level: {other:?}", path.display()),
        }
    }
}

#[test]
fn corrupted_results_report_byte_offset_and_line() {
    // Truncate a real artifact the way the fault plan does and check the
    // parse error pinpoints the failure: byte offset + 1-based line and
    // column, so a broken `results/*.json` names the exact spot instead
    // of panicking opaquely.
    let plan = sample_attention::tensor::fault::FaultPlan::new(0xBAD).truncate_json(200);
    for path in json_files().into_iter().take(3) {
        let text = std::fs::read_to_string(&path).unwrap();
        let broken = plan.corrupt_json(&text);
        assert!(broken.len() < text.len(), "{} too short to truncate", path.display());
        let err = json::parse(&broken).unwrap_err();
        let loc = err
            .location()
            .unwrap_or_else(|| panic!("{}: error carries no location: {err}", path.display()));
        assert!(loc.offset <= broken.len(), "{}: offset {}", path.display(), loc.offset);
        assert!(loc.line >= 1 && loc.column >= 1);
        let msg = err.to_string();
        assert!(msg.contains("byte") && msg.contains("line"), "{msg}");
    }
}

/// Generates a fresh trace from a live traced forward pass, exports it
/// through both sinks (Chrome trace-event JSON and the
/// `trace_summary.json` schema), and proves each survives a
/// serialize → parse → validate round trip through `sa-json`.
#[test]
fn generated_trace_artifacts_round_trip_and_validate() {
    use sample_attention::core::{SampleAttention, SampleAttentionConfig};
    use sample_attention::tensor::DeterministicRng;
    use sample_attention::trace;

    let session = trace::scoped();
    let mut rng = DeterministicRng::new(0x7E57);
    let s = 128;
    let q = rng.normal_matrix(s, 32, 1.0);
    let k = rng.normal_matrix(s, 32, 1.0);
    let v = rng.normal_matrix(s, 32, 1.0);
    SampleAttention::new(SampleAttentionConfig::paper_default())
        .forward(&q, &k, &v)
        .expect("traced forward succeeds");
    let metrics = trace::metrics::snapshot();
    let events = trace::drain();
    drop(session);
    assert!(!events.is_empty(), "traced forward recorded no spans");

    // Chrome trace-event export round trip.
    let chrome = trace::chrome_trace(&events);
    let n = trace::validate_chrome_trace(&chrome).expect("fresh chrome trace validates");
    assert_eq!(n, events.len());
    let text = json::to_string_pretty(&chrome);
    let reparsed = json::parse(&text).expect("chrome trace reparses");
    assert_eq!(chrome, reparsed, "chrome trace not stable under round trip");
    assert_eq!(trace::validate_chrome_trace(&reparsed), Ok(events.len()));

    // trace_summary.json schema round trip.
    let summary = trace::TraceSummary {
        seq_len: s,
        threads: sample_attention::tensor::pool::current_threads(),
        stages: trace::summarize(&events),
        counters: metrics.counters,
        fallbacks: vec![],
        heads_alpha_unsatisfied: 0,
        fallback_heads: 0,
    };
    let text = json::to_string_pretty(&json::ToJson::to_json(&summary));
    let doc = json::parse(&text).expect("summary parses");
    let stages = trace::summary::validate_summary(&doc).expect("summary validates");
    assert!(stages >= 4, "expected the full stage taxonomy, got {stages} stages");
    let back: trace::TraceSummary = json::from_str(&text).expect("summary round-trips");
    assert_eq!(back, summary);
}

/// The checked-in `results/trace_summary.json` must satisfy the same
/// schema authority the `trace_report` binary checks on write.
#[test]
fn checked_in_trace_summary_validates() {
    let path = results_dir().join("trace_summary.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
    let doc = json::parse(&text).unwrap();
    let stages = sample_attention::trace::summary::validate_summary(&doc)
        .expect("checked-in trace_summary.json validates");
    assert!(stages >= 4, "expected the full stage taxonomy, got {stages}");
    let seq_len = doc.get("seq_len").and_then(Json::as_i64).unwrap();
    assert!(seq_len >= 2048, "committed summary must come from a >=2048-token prefill");
}

/// The checked-in `results/chaos_soak.json` must carry the soak's
/// verdicts: the declared schema tag, a thread-invariant ledger with one
/// record per request, and no record that certifies the CRA α target
/// from the window-only rung (the ladder's honesty invariant).
#[test]
fn checked_in_chaos_soak_ledger_validates() {
    let path = results_dir().join("chaos_soak.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
    let doc = json::parse(&text).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("sa.chaos_soak.v3")
    );

    // All three legs — the one-shot batch, the continuous-batching
    // replay, and the fault storm — must have thread-invariant ledgers
    // with one record per request and honest degradation.
    let legs = [
        ("requests", "identical_across_threads", "ledger"),
        (
            "continuous_requests",
            "continuous_identical_across_threads",
            "continuous_ledger",
        ),
        (
            "storm_requests",
            "storm_identical_across_threads",
            "storm_ledger",
        ),
    ];
    for (requests_key, identical_key, ledger_key) in legs {
        assert_eq!(
            doc.get(identical_key).and_then(Json::as_bool),
            Some(true),
            "committed soak must have a thread-invariant {ledger_key}"
        );
        let requests = doc.get(requests_key).and_then(Json::as_i64).unwrap();
        assert!(requests > 0);

        let ledger = doc.get(ledger_key).expect("soak embeds the full ledger");
        assert_eq!(
            ledger.get("schema").and_then(Json::as_str),
            Some(sample_attention::serve::LEDGER_SCHEMA)
        );
        let records = match ledger.get("records") {
            Some(Json::Array(items)) => items,
            other => panic!("{ledger_key}.records must be an array, got {other:?}"),
        };
        assert_eq!(
            records.len() as i64,
            requests,
            "{ledger_key} must account for every request exactly once"
        );
        let mut served = 0;
        for rec in records {
            let rung = rec.get("rung").and_then(Json::as_str).unwrap();
            let alpha = rec.get("alpha_satisfied").and_then(Json::as_bool).unwrap();
            assert!(
                !(rung == "window_only" && alpha),
                "record {:?} certified alpha from the window-only rung",
                rec.get("id")
            );
            if rec.get("outcome").and_then(Json::as_str) == Some("Served") {
                served += 1;
            }
        }
        assert!(served > 0, "committed soak served nothing ({ledger_key})");
        assert!(
            served < records.len(),
            "committed soak hit no adversity ({ledger_key})"
        );
    }

    // The storm leg's crash-recovery verdicts: checkpoints were
    // captured, resumes happened, and every injected integrity fault
    // (bit-flip corruption, failed restore allocation) was caught and
    // counted instead of surfacing as a wrong answer or a panic.
    for key in [
        "storm_recovered_attempts",
        "storm_recomputed_tokens",
        "storm_checkpoint_snapshots",
        "storm_checkpoint_corruptions",
        "storm_alloc_faults",
    ] {
        let v = doc.get(key).and_then(Json::as_i64).unwrap();
        assert!(v > 0, "committed soak has {key} = {v}");
    }
}

/// The checked-in `results/recovery.json` must carry the recovery
/// bench's acceptance verdicts: the `sa.recovery.v1` schema, a
/// thread-invariant executed ledger, and — on every bench point —
/// checkpoint resume strictly reducing recomputed tokens with goodput
/// no worse than retry-from-scratch.
#[test]
fn checked_in_recovery_report_validates() {
    let path = results_dir().join("recovery.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
    let doc = json::parse(&text).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("sa.recovery.v1")
    );
    assert_eq!(
        doc.get("identical_across_threads").and_then(Json::as_bool),
        Some(true),
        "committed recovery bench must have a thread-invariant ledger"
    );
    for key in ["checkpoint_snapshots", "checkpoint_restores"] {
        let v = doc.get(key).and_then(Json::as_i64).unwrap();
        assert!(v > 0, "committed bench has {key} = {v}");
    }

    let points = match doc.get("points") {
        Some(Json::Array(items)) => items,
        other => panic!("points must be an array, got {other:?}"),
    };
    assert!(!points.is_empty(), "bench has no points");
    for point in points {
        let n = point.get("requests").and_then(Json::as_i64).unwrap();
        let recovered = point
            .get("recovered_attempts")
            .and_then(Json::as_i64)
            .unwrap();
        assert!(recovered > 0, "point n={n} never resumed a checkpoint");
        let resume = point
            .get("recomputed_tokens_resume")
            .and_then(Json::as_i64)
            .unwrap();
        let scratch = point
            .get("recomputed_tokens_scratch")
            .and_then(Json::as_i64)
            .unwrap();
        assert!(
            resume < scratch,
            "point n={n}: resume recomputed {resume} tokens, scratch {scratch}"
        );
        let wr = point
            .get("wasted_ratio_resume")
            .and_then(Json::as_f64)
            .unwrap();
        let ws = point
            .get("wasted_ratio_scratch")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(wr.is_finite() && ws.is_finite() && wr < ws);
        let gr = point.get("goodput_resume").and_then(Json::as_f64).unwrap();
        let gs = point.get("goodput_scratch").and_then(Json::as_f64).unwrap();
        assert!(gr.is_finite() && gs.is_finite());
        assert!(
            gr >= gs,
            "point n={n}: recovery goodput {gr} below scratch {gs}"
        );
    }

    // The executed leg's ledger accounts for the first point's stream.
    let ledger = doc.get("ledger").expect("bench embeds the executed ledger");
    assert_eq!(
        ledger.get("schema").and_then(Json::as_str),
        Some(sample_attention::serve::LEDGER_SCHEMA)
    );
    let records = match ledger.get("records") {
        Some(Json::Array(items)) => items,
        other => panic!("ledger.records must be an array, got {other:?}"),
    };
    let first_point_n = points[0].get("requests").and_then(Json::as_i64).unwrap();
    assert_eq!(
        records.len() as i64,
        first_point_n,
        "executed ledger must account for every storm request"
    );
}

/// The checked-in `results/slo_report.json` must carry the SLO sweep's
/// verdicts: the `sa.slo.v1` schema, a non-empty sweep, finite
/// latency percentiles in ascending order, and — the tentpole's
/// acceptance bar — continuous goodput at least the one-shot goodput
/// at every (shape × rate) point.
#[test]
fn checked_in_slo_report_validates() {
    let path = results_dir().join("slo_report.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
    let doc = json::parse(&text).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(sample_attention::serve::SLO_SCHEMA)
    );
    assert_eq!(
        doc.get("continuous_never_worse").and_then(Json::as_bool),
        Some(true),
        "committed sweep must certify the goodput bar"
    );
    let points = match doc.get("points") {
        Some(Json::Array(items)) => items,
        other => panic!("points must be an array, got {other:?}"),
    };
    assert!(!points.is_empty(), "sweep has no points");
    let mut shapes = std::collections::BTreeSet::new();
    for point in points {
        let shape = point.get("shape").and_then(Json::as_str).unwrap();
        shapes.insert(shape.to_string());
        let cont = point.get("continuous").expect("continuous summary");
        let oneshot = point.get("oneshot").expect("oneshot summary");
        let cg = cont.get("goodput_per_sec").and_then(Json::as_f64).unwrap();
        let og = oneshot.get("goodput_per_sec").and_then(Json::as_f64).unwrap();
        assert!(cg.is_finite() && og.is_finite());
        assert!(
            cg >= og,
            "{shape}: continuous goodput {cg} below one-shot {og}"
        );
        for summary in [cont, oneshot] {
            for hist in ["ttft", "tpot"] {
                let stats = summary.get(hist).unwrap_or_else(|| panic!("{hist} stats"));
                let mut prev = 0i64;
                for pct in ["p50_ms", "p90_ms", "p95_ms", "p99_ms"] {
                    let v = stats.get(pct).and_then(Json::as_i64).unwrap();
                    assert!(v >= prev, "{shape}: {hist}.{pct} = {v} below p-predecessor");
                    prev = v;
                }
            }
        }
    }
    assert!(
        shapes.len() >= 3,
        "sweep must cover the constant/diurnal/flash-crowd shapes, got {shapes:?}"
    );
}

/// The checked-in `results/tile_kernel.json` A/B report must carry its
/// schema tag, at least one measured case, and a bitwise-identity
/// verdict on every case — a report certifying a divergent kernel must
/// never land.
#[test]
fn checked_in_tile_kernel_report_validates() {
    let path = results_dir().join("tile_kernel.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
    let doc = json::parse(&text).unwrap();
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("sa.tile_kernel.v1"));
    for key in ["median_serial_speedup", "median_parallel_speedup"] {
        let v = doc.get(key).and_then(Json::as_f64).unwrap();
        assert!(v.is_finite() && v > 0.0, "{key} = {v}");
    }
    let rows = match doc.get("rows") {
        Some(Json::Array(items)) => items,
        other => panic!("rows must be an array, got {other:?}"),
    };
    assert!(!rows.is_empty(), "report has no measured cases");
    let mut prev_s = 0;
    for row in rows {
        let s = row.get("seq_len").and_then(Json::as_i64).unwrap();
        assert!(s > prev_s, "seq_len not strictly ascending at {s}");
        prev_s = s;
        let tile = row.get("tile").and_then(Json::as_i64).unwrap();
        assert!((1..=64).contains(&tile), "tile {tile} outside 1..=MAX_TILE");
        assert_eq!(
            row.get("bitwise_identical").and_then(Json::as_bool),
            Some(true),
            "case at S={s} was not bitwise-identical"
        );
        for key in ["serial_speedup", "parallel_speedup", "density"] {
            let v = row.get(key).and_then(Json::as_f64).unwrap();
            assert!(v.is_finite() && v > 0.0, "S={s}: {key} = {v}");
        }
        // The tentpole's acceptance bar: single-thread sparse-stage
        // latency must improve measurably under the tiled layout.
        let serial = row.get("serial_speedup").and_then(Json::as_f64).unwrap();
        assert!(serial > 0.9, "S={s}: tiled serial leg regressed badly ({serial}x)");
    }
}

/// The checked-in `results/serve_timeline.json` must carry the telemetry
/// plane's verdicts: the `sa.serve_timeline.v1` schema, a bit-exact
/// event-log reconstruction of every sweep point (and of the committed
/// `slo_report.json`), a thread-invariant storm event log, conservation
/// against the memory ledger, and a flight-recorder postmortem from the
/// forced governor shed.
#[test]
fn checked_in_serve_timeline_validates() {
    let path = results_dir().join("serve_timeline.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
    let doc = json::parse(&text).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("sa.serve_timeline.v1")
    );
    for key in [
        "all_points_exact",
        "matches_slo_report",
        "identical_across_threads",
        "conservation_ok",
    ] {
        assert_eq!(
            doc.get(key).and_then(Json::as_bool),
            Some(true),
            "committed timeline report must certify {key}"
        );
    }

    let points = match doc.get("points") {
        Some(Json::Array(items)) => items,
        other => panic!("points must be an array, got {other:?}"),
    };
    assert!(!points.is_empty(), "report has no sweep points");
    for point in points {
        let shape = point.get("shape").and_then(Json::as_str).unwrap();
        assert_eq!(
            point.get("exact_match").and_then(Json::as_bool),
            Some(true),
            "{shape}: event-log reconstruction not bit-exact"
        );
        assert_eq!(
            point.get("conservation_ok").and_then(Json::as_bool),
            Some(true),
            "{shape}: event log failed memory conservation"
        );
        let events = point.get("events").and_then(Json::as_i64).unwrap();
        let requests = point.get("requests").and_then(Json::as_i64).unwrap();
        assert!(
            events >= requests,
            "{shape}: {events} events cannot cover {requests} requests"
        );
    }

    // The per-tenant timeline of the richest point is non-trivial.
    let timeline = doc.get("timeline").expect("report embeds the timeline");
    let series = match timeline.get("series") {
        Some(Json::Array(items)) => items,
        other => panic!("timeline.series must be an array, got {other:?}"),
    };
    assert!(!series.is_empty(), "timeline has no series");

    // The forced governor shed left a flight-recorder postmortem whose
    // ring buffer actually captured planner decisions.
    let postmortems = match doc.get("postmortems") {
        Some(Json::Array(items)) => items,
        other => panic!("postmortems must be an array, got {other:?}"),
    };
    let shed = postmortems
        .iter()
        .find(|p| p.get("trigger").and_then(Json::as_str) == Some("shed"))
        .expect("committed report must carry a shed postmortem");
    let decisions = match shed.get("decisions") {
        Some(Json::Array(items)) => items,
        other => panic!("postmortem.decisions must be an array, got {other:?}"),
    };
    assert!(!decisions.is_empty(), "shed postmortem recorded no decisions");

    let storm_events = doc.get("storm_events").and_then(Json::as_i64).unwrap();
    assert!(storm_events > 0, "storm leg recorded no events");
}

/// The checked-in `results/quality_guard.json` must carry the quality
/// guardrail plane's acceptance verdicts: zero false quarantines on the
/// clean leg, a floored tenant that never exceeded its uncertified
/// budget, canary rate invariant to scheduling outcomes, every injected
/// storm corruption caught and later re-admitted, and ledgers plus
/// quarantine transitions byte-identical across thread counts.
#[test]
fn checked_in_quality_guard_validates() {
    let path = results_dir().join("quality_guard.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
    let doc = json::parse(&text).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("sa.quality_guard.v1")
    );

    // Clean leg: canaries ran, no head was quarantined, and the floored
    // tenant stayed within its (zero-permille) uncertified-token budget.
    let clean_canaries = doc.get("clean_canaries").and_then(Json::as_i64).unwrap();
    assert!(clean_canaries > 0, "clean leg observed no canaries");
    assert_eq!(
        doc.get("clean_transitions").and_then(Json::as_i64),
        Some(0),
        "clean traffic must cause zero false quarantines"
    );
    assert_eq!(
        doc.get("clean_floored_tenant_uncertified_permille")
            .and_then(Json::as_i64),
        Some(0),
        "floored tenant exceeded its uncertified-token budget"
    );
    let clean_slo = doc.get("clean_slo").expect("report embeds the clean SLO");
    assert_eq!(
        clean_slo.get("schema").and_then(Json::as_str),
        Some(sample_attention::serve::SLO_SCHEMA)
    );

    // Canary-rate sweep: shadow probes never change scheduling outcomes.
    assert_eq!(
        doc.get("sweep_scheduling_invariant").and_then(Json::as_bool),
        Some(true),
        "canary rate must not perturb served counts or certified goodput"
    );

    // Storm leg: the detector caught the corruption on every head, and
    // probation re-admitted all of them — nothing left quarantined.
    let total_heads = doc.get("storm_total_heads").and_then(Json::as_i64).unwrap();
    assert!(total_heads > 0);
    assert_eq!(
        doc.get("storm_quarantined_heads").and_then(Json::as_i64),
        Some(total_heads),
        "storm must quarantine every poisoned head"
    );
    assert_eq!(
        doc.get("storm_residual_quarantined").and_then(Json::as_i64),
        Some(0),
        "all quarantined heads must re-admit after clean probation"
    );
    let readmits = doc.get("storm_readmits").and_then(Json::as_i64).unwrap();
    assert!(readmits >= total_heads);
    assert_eq!(
        doc.get("identical_across_threads").and_then(Json::as_bool),
        Some(true),
        "ledgers and quarantine transitions must be thread-invariant"
    );

    // The transition log records both directions of the state machine.
    let transitions = match doc.get("transitions") {
        Some(Json::Array(items)) => items,
        other => panic!("transitions must be an array, got {other:?}"),
    };
    let count = |action: &str| {
        transitions
            .iter()
            .filter(|t| t.get("action").and_then(Json::as_str) == Some(action))
            .count() as i64
    };
    assert_eq!(count("quarantine"), total_heads);
    assert_eq!(count("readmit"), readmits);

    // The embedded storm ledger accounts for every request once.
    let ledger = doc.get("storm_ledger").expect("report embeds the ledger");
    assert_eq!(
        ledger.get("schema").and_then(Json::as_str),
        Some(sample_attention::serve::LEDGER_SCHEMA)
    );
    let requests = doc.get("storm_requests").and_then(Json::as_i64).unwrap();
    let records = match ledger.get("records") {
        Some(Json::Array(items)) => items,
        other => panic!("storm_ledger.records must be an array, got {other:?}"),
    };
    assert_eq!(records.len() as i64, requests);
}

#[test]
fn results_round_trip_through_sa_json() {
    for path in json_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let value: Json = json::parse(&text).unwrap();
        let reserialized = value.render(None);
        let reparsed: Json = json::parse(&reserialized)
            .unwrap_or_else(|e| panic!("{} re-parse failed: {e}", path.display()));
        assert_eq!(
            value,
            reparsed,
            "{} not stable under round trip",
            path.display()
        );
    }
}
