//! Robustness contract of the `sa-serve` scheduler, exercised through
//! the public crate facade.
//!
//! These tests pin the four guarantees the serving layer makes:
//!
//! 1. **Deterministic ledger** — the serialized outcome ledger is
//!    byte-identical at every `SA_THREADS` setting;
//! 2. **Cooperative cancellation** — a deadline that cannot be met
//!    stops the request within one chunk and records partial progress;
//! 3. **Typed admission control** — overload and memory-budget
//!    rejections surface as typed [`SaError`] displays in the ledger,
//!    never panics or silent drops;
//! 4. **Honest degradation** — the ladder never certifies the CRA α
//!    target from the window-only rung, and the `degraded` flag always
//!    agrees with the rung-by-rung report.

use sample_attention::json::ToJson;
use sample_attention::serve::{mixed_workload, Outcome, Request, Scheduler, ServeConfig};
use sample_attention::tensor::pool;

fn run_under_threads(cfg: &ServeConfig, requests: &[Request], threads: usize) -> String {
    let scheduler = Scheduler::new(cfg.clone()).unwrap();
    let ledger = pool::with_threads(threads, || scheduler.run(requests)).unwrap();
    ledger.validate(requests).unwrap();
    sample_attention::json::to_string(&ledger.to_json())
}

#[test]
fn ledger_is_byte_identical_across_thread_counts() {
    let cfg = ServeConfig {
        seed: 0xC0DE,
        max_queue: 3,
        ..ServeConfig::default()
    };
    let requests = mixed_workload(cfg.seed, 16);
    let canonical = run_under_threads(&cfg, &requests, 1);
    for threads in [2, 4] {
        let other = run_under_threads(&cfg, &requests, threads);
        assert_eq!(
            canonical, other,
            "serialized ledger differs between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn impossible_deadline_cancels_cooperatively_with_partial_progress() {
    let cfg = ServeConfig::default();
    // Window-only costs 224²/64 × 8 % ≈ 62 virtual ms: a 1 ms deadline
    // fits no rung, so the scheduler runs the bottom rung under a
    // deadline token that trips before the first chunk completes.
    let requests = vec![Request::prefill(0, 224, 0, 1)];
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&requests).unwrap();
    ledger.validate(&requests).unwrap();

    let rec = &ledger.records[0];
    assert_eq!(rec.outcome, Outcome::DeadlineExceeded);
    assert_eq!(rec.rung, "window_only", "nothing above the floor fits");
    assert!(!rec.alpha_satisfied);
    assert!(
        rec.chunks_completed < rec.chunks_total.max(1),
        "cancellation must stop before the run completes: {}/{}",
        rec.chunks_completed,
        rec.chunks_total
    );
    assert!(
        rec.error.contains("deadline exceeded"),
        "typed error display expected, got {:?}",
        rec.error
    );
}

#[test]
fn caller_cancellation_is_a_typed_outcome() {
    let cfg = ServeConfig::default();
    let mut req = Request::prefill(0, 128, 0, 10_000);
    // Caller walks away long before the 128²/64 = 256 ms service ends.
    req.cancel_after_ms = 5;
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&[req.clone()]).unwrap();
    ledger.validate(std::slice::from_ref(&req)).unwrap();

    let rec = &ledger.records[0];
    assert_eq!(rec.outcome, Outcome::Cancelled);
    assert!(!rec.alpha_satisfied);
    assert!(
        rec.error.contains("cancelled at"),
        "typed error display expected, got {:?}",
        rec.error
    );
}

#[test]
fn overload_rejections_are_typed_and_total() {
    let cfg = ServeConfig {
        max_inflight: 1,
        max_queue: 1,
        ..ServeConfig::default()
    };
    // Three simultaneous arrivals against one slot and one queue seat:
    // the third must bounce with the typed overload error.
    let requests: Vec<Request> = (0..3)
        .map(|id| Request::prefill(id, 128, 0, 10_000))
        .collect();
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&requests).unwrap();
    ledger.validate(&requests).unwrap();

    assert_eq!(ledger.count(Outcome::Served), 2);
    assert_eq!(ledger.count(Outcome::RejectedOverloaded), 1);
    let rejected = ledger
        .records
        .iter()
        .find(|r| r.outcome == Outcome::RejectedOverloaded)
        .unwrap();
    assert!(
        rejected.error.contains("overloaded"),
        "typed error display expected, got {:?}",
        rejected.error
    );
    assert!(rejected.rung.is_empty(), "rejected requests never run");
}

#[test]
fn memory_budget_rejections_are_typed() {
    // Three paper-scale prompts (512 synthetic ≈ 1M real tokens each)
    // against one A100: two fit, the third exceeds the budget.
    let cfg = ServeConfig::default();
    let requests: Vec<Request> = (0..3)
        .map(|id| Request::prefill(id, 512, 0, 100_000))
        .collect();
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&requests).unwrap();
    ledger.validate(&requests).unwrap();

    assert_eq!(ledger.count(Outcome::RejectedBudget), 1);
    let rejected = ledger
        .records
        .iter()
        .find(|r| r.outcome == Outcome::RejectedBudget)
        .unwrap();
    assert!(
        rejected.error.contains("memory budget exceeded"),
        "typed error display expected, got {:?}",
        rejected.error
    );
}

#[test]
fn ladder_never_certifies_alpha_from_the_window_rung() {
    let cfg = ServeConfig {
        seed: 0xA1FA,
        max_queue: 3,
        ..ServeConfig::default()
    };
    let requests = mixed_workload(cfg.seed, 24);
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&requests).unwrap();
    ledger.validate(&requests).unwrap();

    assert!(ledger.count(Outcome::Served) > 0, "workload too adversarial");
    let mut saw_degraded = false;
    for rec in &ledger.records {
        assert!(
            !(rec.rung == "window_only" && rec.alpha_satisfied),
            "request {} certified alpha from the window-only rung",
            rec.id
        );
        if rec.alpha_satisfied {
            assert_eq!(rec.outcome, Outcome::Served);
        }
        assert_eq!(rec.degraded, rec.report.degraded());
        saw_degraded |= rec.degraded;
    }
    assert!(saw_degraded, "deadline tiers must force some degradation");
}
