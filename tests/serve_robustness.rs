//! Robustness contract of the `sa-serve` scheduler, exercised through
//! the public crate facade.
//!
//! These tests pin the four guarantees the serving layer makes:
//!
//! 1. **Deterministic ledger** — the serialized outcome ledger is
//!    byte-identical at every `SA_THREADS` setting;
//! 2. **Cooperative cancellation** — a deadline that cannot be met
//!    stops the request within one chunk and records partial progress;
//! 3. **Typed admission control** — overload and memory-budget
//!    rejections surface as typed [`SaError`] displays in the ledger,
//!    never panics or silent drops;
//! 4. **Honest degradation** — the ladder never certifies the CRA α
//!    target from the window-only rung, and the `degraded` flag always
//!    agrees with the rung-by-rung report;
//! 5. **Crash recovery without new failure modes** — checkpoint resume
//!    keeps the ledger bit-identical across thread counts, and a
//!    cancellation racing a restore neither resurrects the request nor
//!    leaks staged memory.

use sample_attention::baselines::FullAttention;
use sample_attention::core::DegradationRung;
use sample_attention::json::ToJson;
use sample_attention::model::SessionCheckpoint;
use sample_attention::serve::{
    fault_storm_workload, mixed_workload, open_loop_workload, sim, Outcome, Request, RequestKind,
    Scheduler, ServeConfig,
};
use sample_attention::tensor::fault::{self, FaultPlan};
use sample_attention::tensor::{pool, CancelToken, DeterministicRng, SaError};
use sample_attention::workloads::{ArrivalProcess, ArrivalShape};

fn run_under_threads(cfg: &ServeConfig, requests: &[Request], threads: usize) -> String {
    let scheduler = Scheduler::new(cfg.clone()).unwrap();
    let ledger = pool::with_threads(threads, || scheduler.run(requests)).unwrap();
    ledger.validate(requests).unwrap();
    sample_attention::json::to_string(&ledger.to_json())
}

#[test]
fn ledger_is_byte_identical_across_thread_counts() {
    let cfg = ServeConfig {
        seed: 0xC0DE,
        max_queue: 3,
        ..ServeConfig::default()
    };
    let requests = mixed_workload(cfg.seed, 16);
    let canonical = run_under_threads(&cfg, &requests, 1);
    for threads in [2, 4] {
        let other = run_under_threads(&cfg, &requests, threads);
        assert_eq!(
            canonical, other,
            "serialized ledger differs between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn impossible_deadline_cancels_cooperatively_with_partial_progress() {
    let cfg = ServeConfig::default();
    // Window-only costs 224²/64 × 8 % ≈ 62 virtual ms: a 1 ms deadline
    // fits no rung, so the scheduler runs the bottom rung under a
    // deadline token that trips before the first chunk completes.
    let requests = vec![Request::prefill(0, 224, 0, 1)];
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&requests).unwrap();
    ledger.validate(&requests).unwrap();

    let rec = &ledger.records[0];
    assert_eq!(rec.outcome, Outcome::DeadlineExceeded);
    assert_eq!(rec.rung, "window_only", "nothing above the floor fits");
    assert!(!rec.alpha_satisfied);
    assert!(
        rec.chunks_completed < rec.chunks_total.max(1),
        "cancellation must stop before the run completes: {}/{}",
        rec.chunks_completed,
        rec.chunks_total
    );
    assert!(
        rec.error.contains("deadline exceeded"),
        "typed error display expected, got {:?}",
        rec.error
    );
}

#[test]
fn caller_cancellation_is_a_typed_outcome() {
    let cfg = ServeConfig::default();
    let mut req = Request::prefill(0, 128, 0, 10_000);
    // Caller walks away long before the 128²/64 = 256 ms service ends.
    req.cancel_after_ms = 5;
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&[req.clone()]).unwrap();
    ledger.validate(std::slice::from_ref(&req)).unwrap();

    let rec = &ledger.records[0];
    assert_eq!(rec.outcome, Outcome::Cancelled);
    assert!(!rec.alpha_satisfied);
    assert!(
        rec.error.contains("cancelled at"),
        "typed error display expected, got {:?}",
        rec.error
    );
}

#[test]
fn overload_rejections_are_typed_and_total() {
    let cfg = ServeConfig {
        max_inflight: 1,
        max_queue: 1,
        ..ServeConfig::default()
    };
    // Three simultaneous arrivals against one slot and one queue seat:
    // the third must bounce with the typed overload error.
    let requests: Vec<Request> = (0..3)
        .map(|id| Request::prefill(id, 128, 0, 10_000))
        .collect();
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&requests).unwrap();
    ledger.validate(&requests).unwrap();

    assert_eq!(ledger.count(Outcome::Served), 2);
    assert_eq!(ledger.count(Outcome::RejectedOverloaded), 1);
    let rejected = ledger
        .records
        .iter()
        .find(|r| r.outcome == Outcome::RejectedOverloaded)
        .unwrap();
    assert!(
        rejected.error.contains("overloaded"),
        "typed error display expected, got {:?}",
        rejected.error
    );
    assert!(rejected.rung.is_empty(), "rejected requests never run");
}

#[test]
fn memory_budget_rejections_are_typed() {
    // Three paper-scale prompts (512 synthetic ≈ 1M real tokens each)
    // against one A100: two fit, the third exceeds the budget.
    let cfg = ServeConfig::default();
    let requests: Vec<Request> = (0..3)
        .map(|id| Request::prefill(id, 512, 0, 100_000))
        .collect();
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&requests).unwrap();
    ledger.validate(&requests).unwrap();

    assert_eq!(ledger.count(Outcome::RejectedBudget), 1);
    let rejected = ledger
        .records
        .iter()
        .find(|r| r.outcome == Outcome::RejectedBudget)
        .unwrap();
    assert!(
        rejected.error.contains("memory budget exceeded"),
        "typed error display expected, got {:?}",
        rejected.error
    );
}

#[test]
fn ladder_never_certifies_alpha_from_the_window_rung() {
    let cfg = ServeConfig {
        seed: 0xA1FA,
        max_queue: 3,
        ..ServeConfig::default()
    };
    let requests = mixed_workload(cfg.seed, 24);
    let scheduler = Scheduler::new(cfg).unwrap();
    let ledger = scheduler.run(&requests).unwrap();
    ledger.validate(&requests).unwrap();

    assert!(ledger.count(Outcome::Served) > 0, "workload too adversarial");
    let mut saw_degraded = false;
    for rec in &ledger.records {
        assert!(
            !(rec.rung == "window_only" && rec.alpha_satisfied),
            "request {} certified alpha from the window-only rung",
            rec.id
        );
        if rec.alpha_satisfied {
            assert_eq!(rec.outcome, Outcome::Served);
        }
        assert_eq!(rec.degraded, rec.report.degraded());
        saw_degraded |= rec.degraded;
    }
    assert!(saw_degraded, "deadline tiers must force some degradation");
}

/// Draws a seeded request shape for the virtual-time arithmetic
/// property tests, deliberately over-weighting the edge shapes the
/// arithmetic bugfixes target: pure prefills (prefill == base, so the
/// decode tail must be exactly zero), decode requests with a
/// zero-length tail, and single-token prompts.
fn arbitrary_shape(rng: &mut DeterministicRng, id: u64) -> Request {
    let mut req = Request::prefill(
        id,
        [1usize, 2, 16, 48, 64, 224, 512, 1024][rng.index(8)],
        rng.index(10_000) as u64,
        1 + rng.index(20_000) as u64,
    );
    if rng.chance(0.4) {
        req.kind = RequestKind::Decode;
        // Includes 0: a decode request whose tail has already drained.
        req.new_tokens = rng.index(9);
    }
    req
}

#[test]
fn service_ms_never_wraps_and_is_bounded_by_full_attention() {
    let mut rng = DeterministicRng::new(0x5EED_5157);
    for id in 0..500 {
        let req = arbitrary_shape(&mut rng, id);
        let full = sim::service_ms(&req, DegradationRung::Full);
        assert_eq!(
            full,
            req.base_service_ms(),
            "full attention must cost exactly the base estimate ({req:?})"
        );
        for rung in DegradationRung::ALL {
            let s = sim::service_ms(&req, rung);
            assert!(s >= 1, "service must be at least one virtual ms ({req:?})");
            assert!(
                s <= full,
                "a cheaper rung must never cost more than full attention: \
                 {s} > {full} at {rung:?} ({req:?})"
            );
            // The wrap this pins: a prefill-dominated request whose
            // scaled prefill meets its base estimate must yield a zero
            // decode tail, not a ~u64::MAX underflow.
            assert!(s < 1 << 40, "service time wrapped ({req:?})");
        }
    }
}

#[test]
fn backoff_is_monotone_in_attempt_up_to_the_cap() {
    let cfg = ServeConfig::default();
    let mut rng = DeterministicRng::new(0xBACC_0FF5);
    for _ in 0..200 {
        let id = rng.index(1 << 20) as u64;
        let mut prev = 0u64;
        for attempt in 0..20 {
            let b = sim::backoff_ms(&cfg, id, attempt);
            assert!(
                b < cfg.backoff_cap_ms + cfg.backoff_base_ms,
                "backoff {b} exceeds cap {} plus jitter bound {}",
                cfg.backoff_cap_ms,
                cfg.backoff_base_ms
            );
            // Strictly below the cap each doubling outgrows the jitter,
            // so the schedule is non-decreasing attempt over attempt.
            if b < cfg.backoff_cap_ms {
                assert!(
                    b >= prev,
                    "backoff shrank below the cap: attempt {attempt} gave {b} after {prev}"
                );
            }
            prev = b;
        }
    }
}

#[test]
fn backoff_saturates_at_extreme_bases_instead_of_wrapping() {
    // A pathological operator config: base and cap near the top of u64.
    // Every attempt must saturate near the cap, never wrap to a tiny
    // backoff that would defeat the exponential schedule.
    let cfg = ServeConfig {
        backoff_base_ms: u64::MAX / 2,
        backoff_cap_ms: u64::MAX,
        ..ServeConfig::default()
    };
    for attempt in 0..20 {
        let b = sim::backoff_ms(&cfg, 3, attempt);
        assert!(
            b >= u64::MAX / 2,
            "extreme backoff wrapped to {b} at attempt {attempt}"
        );
    }
}

#[test]
fn request_bytes_is_monotone_in_prompt_length_at_scale_extremes() {
    for tokens_per_synthetic in [1u64, 2048, 1 << 20] {
        let cfg = ServeConfig {
            tokens_per_synthetic,
            ..ServeConfig::default()
        };
        let mut prev = 0u64;
        for seq_len in [1usize, 16, 64, 224, 512, 1024] {
            let req = Request::prefill(0, seq_len, 0, 1_000);
            let bytes = sim::request_bytes(&cfg, &req);
            assert!(bytes > 0, "a request always occupies memory");
            assert!(
                bytes >= prev,
                "memory model not monotone at scale {tokens_per_synthetic}: \
                 seq {seq_len} needs {bytes} < {prev}"
            );
            prev = bytes;
        }
    }
}

#[test]
fn continuous_ledger_is_byte_identical_across_thread_counts() {
    let cfg = ServeConfig {
        seed: 0xC0DE,
        ..ServeConfig::default()
    };
    let process = ArrivalProcess {
        seed: 0xC0DE ^ 0x51,
        rate_per_sec: 3.0,
        shape: ArrivalShape::FlashCrowd {
            quiet_ms: 3_000,
            burst_ms: 1_000,
            multiplier: 5.0,
        },
    };
    let requests = open_loop_workload(cfg.seed, &process, 8_000, 3);
    assert!(!requests.is_empty(), "stream drew no arrivals");

    let run = |threads: usize| {
        let scheduler = Scheduler::new(cfg.clone()).unwrap();
        let ledger = pool::with_threads(threads, || scheduler.run_continuous(&requests)).unwrap();
        ledger.validate(&requests).unwrap();
        sample_attention::json::to_string(&ledger.to_json())
    };
    let canonical = run(1);
    for threads in [2, 4] {
        let other = run(threads);
        assert_eq!(
            canonical, other,
            "serialized continuous ledger differs between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn recovered_storm_ledger_is_byte_identical_across_thread_counts() {
    // Dense planned crashes with recovery on: resumed attempts restore
    // real checkpoints during execution, and the ledger must not notice
    // the pool size — recovery buys back work, never determinism.
    let cfg = ServeConfig {
        seed: 0x57F0,
        recovery_enabled: true,
        ..ServeConfig::default()
    };
    let requests = fault_storm_workload(cfg.seed, 16);
    let run = |threads: usize| {
        let scheduler = Scheduler::new(cfg.clone()).unwrap();
        let ledger = pool::with_threads(threads, || scheduler.run_continuous(&requests)).unwrap();
        ledger.validate(&requests).unwrap();
        ledger
    };
    let canonical = run(1);
    let recovered: u64 = canonical.records.iter().map(|r| r.recovered_attempts).sum();
    assert!(recovered > 0, "storm must exercise checkpoint resume");
    let canonical_json = sample_attention::json::to_string(&canonical.to_json());
    for threads in [2, 4] {
        let other = sample_attention::json::to_string(&run(threads).to_json());
        assert_eq!(
            canonical_json, other,
            "recovered ledger differs between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn storm_event_log_is_byte_identical_across_thread_counts() {
    // The full chaos-soak fault storm installed globally: planned
    // crashes, allocation failures, and KV bit flips during execution.
    // The `sa.events.v1` log is emitted by the serial virtual-time
    // planner and then reconciled against the executed ledger, so its
    // serialized bytes must not depend on the worker-pool size — run
    // pinned at 1 and 2 threads and at the session default.
    let cfg = ServeConfig {
        seed: 0x57F0,
        recovery_enabled: true,
        ..ServeConfig::default()
    };
    let requests = fault_storm_workload(cfg.seed, 16);
    let scheduler = Scheduler::new(cfg.clone()).unwrap();
    let _storm = fault::install(
        FaultPlan::new(cfg.seed)
            .serve_crash("serve_attempt", 4)
            .alloc_failures(3)
            .kv_bit_flips(1),
    );
    let run = |threads: Option<usize>| {
        let exec = || scheduler.run_continuous_with_events(&requests);
        let (ledger, log) = match threads {
            Some(n) => pool::with_threads(n, exec),
            None => exec(),
        }
        .unwrap();
        ledger.validate(&requests).unwrap();
        // Conservation + terminal agreement against the executed
        // ledger: this also exercises `EventLog::reconcile`, since the
        // storm's attempt-budget exhaustion flips planned serves to
        // `Failed` during execution.
        log.validate(&ledger).unwrap();
        sample_attention::json::to_string(&log.to_json())
    };
    let canonical = run(Some(1));
    for threads in [Some(2), None] {
        assert_eq!(
            canonical,
            run(threads),
            "storm event log differs between 1 and {threads:?} worker threads"
        );
    }
}

#[test]
fn batch_event_log_conserves_memory_and_is_terminal_total() {
    // The one-shot planner's event log must balance the memory ledger
    // event-by-event and give every request exactly one terminal
    // lifecycle event that agrees with its ledger record.
    let cfg = ServeConfig {
        seed: 0xC0DE,
        max_queue: 3,
        ..ServeConfig::default()
    };
    let requests = mixed_workload(cfg.seed, 16);
    let scheduler = Scheduler::new(cfg).unwrap();
    let (ledger, log) = scheduler.run_with_events(&requests).unwrap();
    ledger.validate(&requests).unwrap();
    log.validate(&ledger).unwrap();
    let terminals = log.terminals();
    assert_eq!(
        terminals.len(),
        requests.len(),
        "every request must reach exactly one terminal event"
    );
}

#[test]
fn cancel_racing_a_restore_resurrects_nothing_and_leaks_nothing() {
    // The adversarial interleaving crash recovery must survive: the
    // caller cancels while a checkpoint restore is staging. The restore
    // must observe the cancel before any KV is rebuilt — a typed
    // `Cancelled` at the restore site, no resurrected session, and the
    // memory ledger back at its pre-restore occupancy.
    let scheduler = Scheduler::new(ServeConfig::default()).unwrap();
    let model = scheduler.model();
    let tokens = model.tokenize_filler(48);
    let session = model
        .begin_decode(&tokens, &FullAttention::new())
        .expect("prefill");
    let snap = SessionCheckpoint::capture(&session);
    drop(session);

    let baseline = scheduler.memory().in_use();
    let token = CancelToken::new();
    token.cancel();
    let err = scheduler
        .restore_session(&snap, 0x5A17, &token)
        .expect_err("a tripped cancel must abort the restore");
    assert!(
        matches!(err, SaError::Cancelled { site: "checkpoint_restore", .. }),
        "expected a typed cancel at the restore site, got {err:?}"
    );
    assert_eq!(
        scheduler.memory().in_use(),
        baseline,
        "aborted restore leaked staged bytes"
    );
}
