//! End-to-end integration: the full stack (synthetic transformer +
//! workloads + methods) reproduces the paper's headline accuracy ordering.

use sample_attention::baselines::{
    AttentionMethod, FullAttention, HashSparse, SampleAttentionMethod, StreamingLlm,
};
use sample_attention::model::{ModelConfig, SyntheticTransformer};
use sample_attention::workloads::{
    babilong_suite, evaluate_method, longbench_suite, needle_grid, normalize_to_full,
    NeedleConfig,
};

#[test]
fn near_lossless_ordering_on_mixed_suite() {
    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(7)).expect("model");
    let vocab = model.config().vocab_size;
    let mut tasks = longbench_suite(vocab, 320, 1, 7);
    tasks.extend(babilong_suite(vocab, &[320], 8));

    let full = evaluate_method(&model, &tasks, &FullAttention::new()).expect("full");
    let sample =
        evaluate_method(&model, &tasks, &SampleAttentionMethod::paper_default()).expect("sample");
    let streaming = evaluate_method(&model, &tasks, &StreamingLlm::paper_config()).expect("str");
    let hash = evaluate_method(&model, &tasks, &HashSparse::paper_config(7)).expect("hash");

    let sample_pct = normalize_to_full(&sample, &full);
    let streaming_pct = normalize_to_full(&streaming, &full);
    let hash_pct = normalize_to_full(&hash, &full);

    // The paper's Table 2 shape: SampleAttention near-lossless (>= 99 %),
    // the static/hash baselines clearly degraded.
    assert!(sample_pct >= 99.0, "SampleAttention at {sample_pct}%");
    assert!(streaming_pct < 60.0, "StreamingLLM at {streaming_pct}%");
    assert!(hash_pct < 90.0, "Hash-Sparse at {hash_pct}%");
    // And SampleAttention actually computed less than full attention.
    assert!(sample.mean_density < 0.8, "density {}", sample.mean_density);
}

#[test]
fn needle_grid_full_vs_sample_vs_streaming() {
    let model = SyntheticTransformer::new(ModelConfig::internlm2_like(11)).expect("model");
    let cells = needle_grid(
        model.config().vocab_size,
        &NeedleConfig {
            lengths: vec![384],
            depth_intervals: 5,
            seed: 11,
        },
    );
    let score = |m: &dyn AttentionMethod| -> f32 {
        cells
            .iter()
            .map(|c| c.task.evaluate(&model, m).expect("evaluate"))
            .sum::<f32>()
            / cells.len() as f32
    };
    let full = score(&FullAttention::new());
    let sample = score(&SampleAttentionMethod::paper_default());
    let streaming = score(&StreamingLlm::paper_config());
    assert_eq!(full, 100.0, "full attention must ace the grid");
    assert!(sample >= 99.0 * full / 100.0, "sample {sample}");
    assert!(streaming < 70.0, "streaming {streaming}");
}

#[test]
fn both_backbones_supported() {
    for config in [ModelConfig::chatglm2_like(3), ModelConfig::internlm2_like(3)] {
        let model = SyntheticTransformer::new(config).expect("model");
        let tokens = model.tokenize_filler(96);
        let r = model
            .prefill(&tokens, &SampleAttentionMethod::paper_default())
            .expect("prefill");
        assert_eq!(r.hidden.rows(), 96);
        assert!(r.total_cost.flops > 0);
    }
}
