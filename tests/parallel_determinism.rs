//! Parallel-determinism equivalence suite.
//!
//! The worker pool's contract (see `sa_tensor::pool`) is that every
//! parallelised hot path is **bit-identical** to the serial execution:
//! work is partitioned only across independent rows/heads/columns and
//! any reduction folds in a thread-count-independent order. These tests
//! pin that contract by running each pipeline stage under a thread count
//! of 1, 2, and the session default (`pool::with_threads` is the
//! in-process equivalent of setting `SA_THREADS`) and asserting exact
//! `==` on the f32 outputs — no tolerances.

use sa_core::filtering::{filter_kv_indices, KvRatioSchedule};
use sa_core::sampling::sample_attention_scores;
use sa_core::{SampleAttention, SampleAttentionConfig};
use sa_kernels::{
    flash_attention, full_attention, sparse_flash_attention, FlashParams, StructuredMask,
};
use sa_tensor::pool::with_threads;
use sa_tensor::{col_sum, matmul, matmul_transb, softmax_rows_in_place, DeterministicRng, Matrix};

fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(seed);
    (
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
    )
}

/// Runs `f` serially, at 2 threads, at 3 threads, and at the session
/// default, asserting every result is bitwise equal to the serial one.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> T) {
    let serial = with_threads(1, &f);
    for threads in [2usize, 3] {
        let parallel = with_threads(threads, &f);
        assert_eq!(serial, parallel, "{label}: threads=1 vs threads={threads}");
    }
    let default = f();
    assert_eq!(serial, default, "{label}: threads=1 vs session default");
}

#[test]
fn tensor_primitives_are_thread_invariant() {
    let mut rng = DeterministicRng::new(0xA11);
    let a = rng.normal_matrix(150, 96, 1.0);
    let b = rng.normal_matrix(96, 130, 1.0);
    let c = rng.normal_matrix(140, 96, 1.0);
    assert_thread_invariant("matmul", || matmul(&a, &b).unwrap());
    assert_thread_invariant("matmul_transb", || matmul_transb(&a, &c).unwrap());
    assert_thread_invariant("col_sum", || col_sum(&a));
    assert_thread_invariant("softmax_rows_in_place", || {
        let mut m = a.clone();
        softmax_rows_in_place(&mut m);
        m
    });
}

#[test]
fn flash_attention_is_thread_invariant() {
    let (q, k, v) = qkv(257, 32, 0xF1a);
    // Small tiles so several query blocks land in each chunk and the
    // chunk grain actually splits the work.
    let params = FlashParams {
        block_rows: 16,
        block_cols: 16,
    };
    assert_thread_invariant("flash_attention causal", || {
        flash_attention(&q, &k, &v, true, params).unwrap().output
    });
    assert_thread_invariant("flash_attention non-causal", || {
        flash_attention(&q, &k, &v, false, params).unwrap().output
    });
    assert_thread_invariant("full_attention", || {
        full_attention(&q, &k, &v, true).unwrap().output
    });
}

#[test]
fn sparse_flash_attention_is_thread_invariant() {
    let s = 256;
    let (q, k, v) = qkv(s, 32, 0x5Fa);
    let mask = StructuredMask::builder(s, s)
        .window_ratio(0.1)
        .sinks(4)
        .columns((0..s / 32).map(|i| i * 29 % s).collect())
        .build()
        .unwrap();
    assert_thread_invariant("sparse_flash_attention", || {
        let out = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        // The live-pair tally feeds the cost model; it must also be
        // scheduling-independent.
        (out.output, out.cost.flops)
    });
}

#[test]
fn stage1_sampling_is_thread_invariant() {
    let (q, k, _) = qkv(300, 32, 0x5a1);
    assert_thread_invariant("sample_attention_scores", || {
        let s = sample_attention_scores(&q, &k, 0.1).unwrap();
        (s.column_scores, s.diagonal_scores, s.sampled_rows)
    });
}

/// Graceful degradation must not cost determinism: for any seeded fault
/// mix — NaN stripes, `±inf` entries, zeroed rows, zero-mass sampled
/// scores, forced worker panics — the final attention output (including
/// the per-head dense-fallback path) and the recorded fallback reason
/// are bitwise identical across `SA_THREADS=1`, 2, 3, and the session
/// default. Reproduce a single case with `SA_PROP_SEED=<seed>`.
#[test]
fn seeded_fault_mixes_are_thread_invariant() {
    use sa_core::HealthPolicy;
    use sa_tensor::check::run_cases;
    use sa_tensor::fault::{self, FaultPlan};

    run_cases("faulty_pipeline_thread_invariance", |g| {
        let s = g.usize_in(96, 192);
        let (mut q, mut k, v) = qkv(s, 16, g.seed());
        let mut plan = FaultPlan::new(g.seed() ^ 0xFA17);
        if g.chance(0.4) {
            plan = plan.nan_stripes(g.usize_in(1, 3));
        }
        if g.chance(0.4) {
            plan = plan.inf_logits(g.usize_in(1, 4));
        }
        if g.chance(0.3) {
            plan = plan.zero_rows(g.usize_in(1, 3));
        }
        if g.chance(0.3) {
            plan = plan.zero_mass();
        }
        if g.chance(0.3) {
            plan = plan.worker_panic("sparse_flash_attention");
        }
        plan.corrupt_matrix(&mut q, 0);
        plan.corrupt_matrix(&mut k, 1);
        let _guard = fault::install(plan);
        let cfg = SampleAttentionConfig::builder()
            .health_policy(HealthPolicy::FallbackDense)
            .build()
            .unwrap();
        assert_thread_invariant("faulty pipeline", || {
            let out = SampleAttention::new(cfg.clone())
                .forward(&q, &k, &v)
                .unwrap();
            assert!(
                out.output.as_slice().iter().all(|x| x.is_finite()),
                "non-finite output escaped (case seed {:#x})",
                g.seed()
            );
            (out.output, out.stats.fallback_reason)
        });
    });
}

/// Observability must be free of observer effects: with tracing enabled
/// the pipeline output is bitwise identical to the untraced run, at
/// `SA_THREADS=1` and at the session default. The traced run must still
/// record the full stage taxonomy — a trace that went silent would make
/// this test vacuous.
#[test]
fn tracing_does_not_perturb_pipeline_outputs() {
    let (q, k, v) = qkv(224, 32, 0x712a_ce);
    let run = || {
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let out = attn.forward(&q, &k, &v).unwrap();
        (out.output, out.stats.kv_ratio.to_bits())
    };
    let untraced = run();
    let untraced_serial = with_threads(1, run);
    assert_eq!(untraced, untraced_serial, "baseline thread invariance");

    let session = sa_trace::scoped();
    let traced = run();
    let traced_serial = with_threads(1, run);
    let events = sa_trace::drain();
    drop(session);

    assert_eq!(untraced, traced, "tracing on vs off at default threads");
    assert_eq!(untraced_serial, traced_serial, "tracing on vs off at SA_THREADS=1");
    for stage in ["stage1_sampling", "stage2_filtering", "mask_merge", "sparse_kernel"] {
        assert!(
            events.iter().any(|e| e.cat == "core" && e.name == stage),
            "traced run is missing core/{stage}"
        );
    }
}

/// The serving telemetry plane is emitted by the serial virtual-time
/// planners (and only reconciled against the executed ledger), so both
/// the `sa.events.v1` log and any timeline aggregation derived from it
/// must serialize byte-identically at every thread count.
#[test]
fn serving_telemetry_is_thread_invariant() {
    use sample_attention::json::{to_string, ToJson};
    use sample_attention::serve::{mixed_workload, Scheduler, ServeConfig};
    use sa_trace::Timeline;

    let cfg = ServeConfig {
        seed: 0x7E1E,
        max_queue: 3,
        ..ServeConfig::default()
    };
    let requests = mixed_workload(cfg.seed, 12);
    assert_thread_invariant("serve event log + timeline", || {
        let scheduler = Scheduler::new(cfg.clone()).unwrap();
        let (ledger, log) = scheduler.run_with_events(&requests).unwrap();
        log.validate(&ledger).unwrap();
        let mut tl = Timeline::new(500);
        for ev in &log.events {
            tl.observe(&format!("{:?}", ev.kind), ev.t_ms, ev.mem_in_use);
        }
        (to_string(&log.to_json()), to_string(&tl.flush().to_json()))
    });
}

#[test]
fn end_to_end_pipeline_is_thread_invariant() {
    let (q, k, v) = qkv(256, 32, 0xE2E);
    assert_thread_invariant("sample_attention e2e", || {
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let out = attn.forward(&q, &k, &v).unwrap();
        (
            out.output,
            out.stats.kv_ratio.to_bits(),
            out.stats.covered_mass.to_bits(),
        )
    });
    // Stage 2 is serial but consumes stage-1 output; pin the combination.
    assert_thread_invariant("stage1+stage2", || {
        let sampled = sample_attention_scores(&q, &k, 0.05).unwrap();
        let filtered =
            filter_kv_indices(&sampled.column_scores, 0.95, 1.0, &KvRatioSchedule::Exact).unwrap();
        (filtered.indices, filtered.covered_mass.to_bits())
    });
}
