//! Property-based equivalence of the attention kernels: the blocked flash
//! kernel and the structured-sparse kernel must agree with the naive
//! dense references on arbitrary shapes and masks. Driven by the in-repo
//! harness ([`sample_attention::tensor::check`]).

use sample_attention::core::{merge_mask, select_tile_size, TilePolicy};
use sample_attention::core::SampleAttentionConfig;
use sample_attention::kernels::{
    attention_probs, flash_attention, full_attention, masked_attention_dense,
    sparse_flash_attention, sparse_flash_attention_tiled, FlashParams, StructuredMask, TiledMask,
};
use sample_attention::tensor::check::run_cases;
use sample_attention::tensor::{max_abs_diff, pool, DeterministicRng, Matrix};

fn qkv(s_q: usize, s_k: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(seed);
    (
        rng.normal_matrix(s_q, d, 1.0),
        rng.normal_matrix(s_k, d, 1.0),
        rng.normal_matrix(s_k, d, 1.0),
    )
}

/// Flash attention equals full attention for any shape and tile size.
#[test]
fn flash_equals_full() {
    run_cases("flash_equals_full", |g| {
        let s = g.usize_in(2, 80);
        let d = g.even_in(2, 16);
        let (br, bc) = (g.usize_in(1, 40), g.usize_in(1, 40));
        let (q, k, v) = qkv(s, s, d, g.u64_in(0, 1000));
        let params = FlashParams {
            block_rows: br,
            block_cols: bc,
        };
        let flash = flash_attention(&q, &k, &v, true, params).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 2e-4);
    });
}

/// The structured-sparse kernel equals the dense masked reference for
/// any window/sink/stripe/bottom-area combination.
#[test]
fn sparse_equals_masked_reference() {
    run_cases("sparse_equals_masked_reference", |g| {
        let s = g.usize_in(4, 64);
        let d = g.even_in(2, 12);
        let window = g.usize_in(0, 20);
        let sinks = g.usize_in(0, 6);
        let tail = g.usize_in(0, 16);
        let cols: Vec<usize> = g
            .vec_usize(0, 64, 0, 6)
            .into_iter()
            .filter(|&c| c < s)
            .collect();
        let (q, k, v) = qkv(s, s, d, g.u64_in(0, 1000));
        let mask = StructuredMask::builder(s, s)
            .window(window)
            .sinks(sinks)
            .columns(cols)
            .dense_tail_rows(tail)
            .build()
            .unwrap();
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let reference = masked_attention_dense(&q, &k, &v, &mask.to_dense()).unwrap();
        assert!(max_abs_diff(sparse.output.as_slice(), reference.output.as_slice()) < 2e-4);
    });
}

/// With an everything-visible mask (window covering all causal keys) the
/// sparse kernel degenerates to exact full attention — within 1e-5, much
/// tighter than the tiled-vs-naive bound, because both paths then
/// normalise over identical key sets.
#[test]
fn sparse_with_full_window_equals_full() {
    run_cases("sparse_with_full_window_equals_full", |g| {
        let s = g.usize_in(2, 64);
        let d = g.even_in(2, 12);
        let (q, k, v) = qkv(s, s, d, g.u64_in(0, 1000));
        let mask = StructuredMask::dense_causal(s, s);
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(sparse.output.as_slice(), exact.output.as_slice()) < 1e-5);
    });
}

/// Attention probabilities are row-stochastic: every causal row of the
/// softmaxed score matrix sums to 1.
#[test]
fn attention_probs_rows_sum_to_one() {
    run_cases("attention_probs_rows_sum_to_one", |g| {
        let s = g.usize_in(1, 64);
        let d = g.even_in(2, 12);
        let (q, k, _) = qkv(s, s, d, g.u64_in(0, 1000));
        let p = attention_probs(&q, &k, true).unwrap();
        for i in 0..s {
            let sum: f32 = p.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
        }
    });
}

/// The merged stage-3 mask is a superset of window ∪ sinks within the
/// causal triangle: merging stripe columns can only add coverage.
#[test]
fn merged_mask_superset_of_window_and_sinks() {
    run_cases("merged_mask_superset_of_window_and_sinks", |g| {
        let s = g.usize_in(4, 64);
        let sinks = g.usize_in(0, 4);
        let kv: Vec<usize> = g
            .vec_usize(0, 64, 0, 8)
            .into_iter()
            .filter(|&c| c < s)
            .collect();
        let config = SampleAttentionConfig::builder()
            .window_ratio(g.f32_in(0.01, 0.5))
            .forced_sinks(sinks)
            .build()
            .unwrap();
        let merged = merge_mask(s, s, &kv, &config).unwrap();
        let window_only = StructuredMask::builder(s, s)
            .window(config.window_size(s))
            .sinks(config.forced_sinks)
            .dense_tail_rows(config.bottom_area_rows)
            .build()
            .unwrap();
        for i in 0..s {
            for j in 0..=i {
                if window_only.is_allowed(i, j) {
                    assert!(merged.is_allowed(i, j), "merged mask lost ({i},{j})");
                }
                if kv.contains(&j) {
                    assert!(merged.is_allowed(i, j), "stripe ({i},{j}) not merged");
                }
            }
        }
    });
}

/// Rectangular problems (prefill continuation): flash still matches.
#[test]
fn flash_rectangular() {
    run_cases("flash_rectangular", |g| {
        let s_q = g.usize_in(1, 24);
        let s_k = s_q + g.usize_in(0, 24);
        let d = g.even_in(2, 10);
        let (q, k, v) = qkv(s_q, s_k, d, g.u64_in(0, 1000));
        let flash = flash_attention(&q, &k, &v, true, FlashParams::default()).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 2e-4);
    });
}

/// Bitwise equality: the tiled kernel must reproduce the row-major
/// kernel's output *exactly*, not merely within a float tolerance.
fn assert_bitwise(label: &str, tiled: &Matrix, row_major: &Matrix) {
    assert_eq!(tiled.shape(), row_major.shape(), "{label}: shape drift");
    for (i, (a, b)) in tiled
        .as_slice()
        .iter()
        .zip(row_major.as_slice())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: element {i} differs ({a} vs {b})"
        );
    }
}

/// The differential property at the heart of the tiled rewrite: for any
/// randomized mask (window/sinks/stripes/diagonals/dense tail, square or
/// rectangular, any tile in `1..=MAX_TILE` including tiles that do not
/// divide S), the tiled kernel is bitwise-identical to the row-major
/// kernel, charges identical FLOPs, and agrees with the dense masked
/// reference within the usual tolerance.
#[test]
fn tiled_kernel_bitwise_matches_row_major_randomized() {
    run_cases("tiled_kernel_bitwise_matches_row_major_randomized", |g| {
        let s_q = g.usize_in(4, 80);
        let s_k = if g.chance(0.3) { g.usize_in(4, 80) } else { s_q };
        let d = g.even_in(2, 12);
        let window = g.usize_in(0, 24);
        let sinks = g.usize_in(0, 5);
        let tail = g.usize_in(0, 12);
        let cols: Vec<usize> = g
            .vec_usize(0, 80, 0, 6)
            .into_iter()
            .filter(|&c| c < s_k)
            .collect();
        let diags = g.vec_usize(1, 80, 0, 3);
        let tile = g.usize_in(1, 64);
        let (q, k, v) = qkv(s_q, s_k, d, g.u64_in(0, 1000));
        let mask = StructuredMask::builder(s_q, s_k)
            .window(window)
            .sinks(sinks)
            .columns(cols)
            .diagonals(diags)
            .dense_tail_rows(tail)
            .build()
            .unwrap();
        let tiling = TiledMask::build(mask.clone(), tile).unwrap();
        let row_major = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let tiled = sparse_flash_attention_tiled(&q, &k, &v, &tiling).unwrap();
        let label = format!("tile={tile} s_q={s_q} s_k={s_k}");
        assert_bitwise(&label, &tiled.output, &row_major.output);
        assert_eq!(tiled.cost.flops, row_major.cost.flops, "{label}: flops");
        let reference = masked_attention_dense(&q, &k, &v, &mask.to_dense()).unwrap();
        assert!(
            max_abs_diff(tiled.output.as_slice(), reference.output.as_slice()) < 2e-4,
            "{label}: drifted from the dense masked reference"
        );
    });
}

/// Named corner-case sparsity patterns for the thread-invariance sweep:
/// sink-only, window-only, stripes-only, fully-masked rows (nnz == 0),
/// and a rectangular mask whose top rows have no causal keys at all.
fn corner_case_masks(s: usize) -> Vec<(&'static str, StructuredMask)> {
    let b = |s_q: usize, s_k: usize| StructuredMask::builder(s_q, s_k);
    vec![
        ("sink_only", b(s, s).window(0).sinks(3).build().unwrap()),
        ("window_only", b(s, s).window(7).build().unwrap()),
        (
            "stripes",
            b(s, s)
                .window(1)
                .columns(vec![2, 11, 29, s - 1])
                .build()
                .unwrap(),
        ),
        ("fully_masked_rows", b(s, s).window(0).build().unwrap()),
        (
            "rectangular_dead_top",
            b(s, s / 2).window(5).sinks(1).build().unwrap(),
        ),
        (
            "mixed",
            b(s, s)
                .window(9)
                .sinks(2)
                .columns(vec![4, 33])
                .diagonals(vec![s - 10])
                .dense_tail_rows(6)
                .build()
                .unwrap(),
        ),
    ]
}

/// Thread invariance: for every corner-case pattern and tile size
/// (single-element tiles, tiles that do not divide S, the max tile), the
/// tiled kernel's output under `SA_THREADS` = 2, 3, and the session
/// default is bitwise-identical to the single-thread run — and all of
/// them are bitwise-identical to the row-major kernel.
#[test]
fn tiled_kernel_thread_invariant_across_patterns() {
    let s = 70; // not divisible by any tile below except 1
    let d = 8;
    for (name, mask) in corner_case_masks(s) {
        let (q, k, v) = qkv(mask.s_q(), mask.s_k(), d, 0x7117);
        let (q, k, v) = (&q, &k, &v);
        for tile in [1usize, 13, 64] {
            let tiling = TiledMask::build(mask.clone(), tile).unwrap();
            let baseline =
                pool::with_threads(1, || sparse_flash_attention_tiled(q, k, v, &tiling)).unwrap();
            let row_major = pool::with_threads(1, || sparse_flash_attention(q, k, v, &mask)).unwrap();
            assert_bitwise(
                &format!("{name} tile={tile} vs row-major"),
                &baseline.output,
                &row_major.output,
            );
            for threads in [2usize, 3] {
                let out = pool::with_threads(threads, || {
                    sparse_flash_attention_tiled(q, k, v, &tiling)
                })
                .unwrap();
                assert_bitwise(
                    &format!("{name} tile={tile} threads={threads}"),
                    &out.output,
                    &baseline.output,
                );
            }
            // Session default thread count (whatever SA_THREADS says).
            let out = sparse_flash_attention_tiled(q, k, v, &tiling).unwrap();
            assert_bitwise(
                &format!("{name} tile={tile} default threads"),
                &out.output,
                &baseline.output,
            );
        }
    }
}

/// Long-context differential: an 8K-row structured mask with the tile
/// chosen by the autotuner. The dense reference is too big to
/// materialise here; the row-major kernel — itself proven against the
/// dense oracle above — is the ground truth, and the tiled kernel must
/// match it bit for bit with identical FLOP accounting.
#[test]
fn tiled_kernel_differential_at_long_context() {
    let s = 8192;
    let d = 8;
    let (q, k, v) = qkv(s, s, d, 0x8192);
    let mask = StructuredMask::builder(s, s)
        .window(48)
        .sinks(4)
        .columns(vec![64, 1000, 4096])
        .diagonals(vec![512])
        .dense_tail_rows(32)
        .build()
        .unwrap();
    let choice = select_tile_size(&TilePolicy::default(), &mask).unwrap();
    assert!(!choice.fallback, "8K mask must not need the fallback tile");
    let tiling = TiledMask::build(mask.clone(), choice.tile).unwrap();
    let row_major = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
    let tiled = sparse_flash_attention_tiled(&q, &k, &v, &tiling).unwrap();
    assert_bitwise("long context", &tiled.output, &row_major.output);
    assert_eq!(tiled.cost.flops, row_major.cost.flops);
}

/// Mask bookkeeping: nnz equals the dense materialisation's count and
/// density stays in [0, 1].
#[test]
fn mask_nnz_consistent() {
    run_cases("mask_nnz_consistent", |g| {
        let s = g.usize_in(1, 48);
        let window = g.usize_in(0, 24);
        let sinks = g.usize_in(0, 8);
        let tail = g.usize_in(0, 10);
        let cols: Vec<usize> = g
            .vec_usize(0, 48, 0, 8)
            .into_iter()
            .filter(|&c| c < s)
            .collect();
        let mask = StructuredMask::builder(s, s)
            .window(window)
            .sinks(sinks)
            .columns(cols)
            .dense_tail_rows(tail)
            .build()
            .unwrap();
        assert_eq!(mask.nnz(), mask.to_dense().nnz());
        assert!(mask.density() >= 0.0 && mask.density() <= 1.0);
        // is_allowed agrees with the dense oracle everywhere.
        let dense = mask.to_dense();
        for i in 0..s {
            for j in 0..s {
                assert_eq!(mask.is_allowed(i, j), dense.get(i, j));
            }
        }
    });
}
