//! Property-based equivalence of the attention kernels: the blocked flash
//! kernel and the structured-sparse kernel must agree with the naive
//! dense references on arbitrary shapes and masks.

use proptest::prelude::*;
use sample_attention::kernels::{
    flash_attention, full_attention, masked_attention_dense, sparse_flash_attention, FlashParams,
    StructuredMask,
};
use sample_attention::tensor::{max_abs_diff, DeterministicRng, Matrix};

fn qkv(s_q: usize, s_k: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(seed);
    (
        rng.normal_matrix(s_q, d, 1.0),
        rng.normal_matrix(s_k, d, 1.0),
        rng.normal_matrix(s_k, d, 1.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flash attention equals full attention for any shape and tile size.
    #[test]
    fn flash_equals_full(
        s in 2usize..80,
        d in (1usize..8).prop_map(|x| x * 2),
        br in 1usize..40,
        bc in 1usize..40,
        seed in 0u64..1000,
    ) {
        let (q, k, v) = qkv(s, s, d, seed);
        let flash = flash_attention(&q, &k, &v, true, FlashParams { block_rows: br, block_cols: bc }).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        prop_assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 2e-4);
    }

    /// The structured-sparse kernel equals the dense masked reference for
    /// any window/sink/stripe/bottom-area combination.
    #[test]
    fn sparse_equals_masked_reference(
        s in 4usize..64,
        d in (1usize..6).prop_map(|x| x * 2),
        window in 0usize..20,
        sinks in 0usize..6,
        tail in 0usize..16,
        cols in proptest::collection::vec(0usize..64, 0..6),
        seed in 0u64..1000,
    ) {
        let (q, k, v) = qkv(s, s, d, seed);
        let cols: Vec<usize> = cols.into_iter().filter(|&c| c < s).collect();
        let mask = StructuredMask::builder(s, s)
            .window(window)
            .sinks(sinks)
            .columns(cols)
            .dense_tail_rows(tail)
            .build()
            .unwrap();
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let reference = masked_attention_dense(&q, &k, &v, &mask.to_dense()).unwrap();
        prop_assert!(
            max_abs_diff(sparse.output.as_slice(), reference.output.as_slice()) < 2e-4
        );
    }

    /// Rectangular problems (prefill continuation): flash still matches.
    #[test]
    fn flash_rectangular(
        s_q in 1usize..24,
        extra in 0usize..24,
        d in (1usize..5).prop_map(|x| x * 2),
        seed in 0u64..1000,
    ) {
        let s_k = s_q + extra;
        let (q, k, v) = qkv(s_q, s_k, d, seed);
        let flash = flash_attention(&q, &k, &v, true, FlashParams::default()).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        prop_assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 2e-4);
    }

    /// Mask bookkeeping: nnz equals the dense materialisation's count and
    /// density stays in [0, 1].
    #[test]
    fn mask_nnz_consistent(
        s in 1usize..48,
        window in 0usize..24,
        sinks in 0usize..8,
        tail in 0usize..10,
        cols in proptest::collection::vec(0usize..48, 0..8),
    ) {
        let cols: Vec<usize> = cols.into_iter().filter(|&c| c < s).collect();
        let mask = StructuredMask::builder(s, s)
            .window(window)
            .sinks(sinks)
            .columns(cols)
            .dense_tail_rows(tail)
            .build()
            .unwrap();
        prop_assert_eq!(mask.nnz(), mask.to_dense().nnz());
        prop_assert!(mask.density() >= 0.0 && mask.density() <= 1.0);
        // is_allowed agrees with the dense oracle everywhere.
        let dense = mask.to_dense();
        for i in 0..s {
            for j in 0..s {
                prop_assert_eq!(mask.is_allowed(i, j), dense.get(i, j));
            }
        }
    }
}
