//! Property-based equivalence of the attention kernels: the blocked flash
//! kernel and the structured-sparse kernel must agree with the naive
//! dense references on arbitrary shapes and masks. Driven by the in-repo
//! harness ([`sample_attention::tensor::check`]).

use sample_attention::core::merge_mask;
use sample_attention::core::SampleAttentionConfig;
use sample_attention::kernels::{
    attention_probs, flash_attention, full_attention, masked_attention_dense,
    sparse_flash_attention, FlashParams, StructuredMask,
};
use sample_attention::tensor::check::run_cases;
use sample_attention::tensor::{max_abs_diff, DeterministicRng, Matrix};

fn qkv(s_q: usize, s_k: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(seed);
    (
        rng.normal_matrix(s_q, d, 1.0),
        rng.normal_matrix(s_k, d, 1.0),
        rng.normal_matrix(s_k, d, 1.0),
    )
}

/// Flash attention equals full attention for any shape and tile size.
#[test]
fn flash_equals_full() {
    run_cases("flash_equals_full", |g| {
        let s = g.usize_in(2, 80);
        let d = g.even_in(2, 16);
        let (br, bc) = (g.usize_in(1, 40), g.usize_in(1, 40));
        let (q, k, v) = qkv(s, s, d, g.u64_in(0, 1000));
        let params = FlashParams {
            block_rows: br,
            block_cols: bc,
        };
        let flash = flash_attention(&q, &k, &v, true, params).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 2e-4);
    });
}

/// The structured-sparse kernel equals the dense masked reference for
/// any window/sink/stripe/bottom-area combination.
#[test]
fn sparse_equals_masked_reference() {
    run_cases("sparse_equals_masked_reference", |g| {
        let s = g.usize_in(4, 64);
        let d = g.even_in(2, 12);
        let window = g.usize_in(0, 20);
        let sinks = g.usize_in(0, 6);
        let tail = g.usize_in(0, 16);
        let cols: Vec<usize> = g
            .vec_usize(0, 64, 0, 6)
            .into_iter()
            .filter(|&c| c < s)
            .collect();
        let (q, k, v) = qkv(s, s, d, g.u64_in(0, 1000));
        let mask = StructuredMask::builder(s, s)
            .window(window)
            .sinks(sinks)
            .columns(cols)
            .dense_tail_rows(tail)
            .build()
            .unwrap();
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let reference = masked_attention_dense(&q, &k, &v, &mask.to_dense()).unwrap();
        assert!(max_abs_diff(sparse.output.as_slice(), reference.output.as_slice()) < 2e-4);
    });
}

/// With an everything-visible mask (window covering all causal keys) the
/// sparse kernel degenerates to exact full attention — within 1e-5, much
/// tighter than the tiled-vs-naive bound, because both paths then
/// normalise over identical key sets.
#[test]
fn sparse_with_full_window_equals_full() {
    run_cases("sparse_with_full_window_equals_full", |g| {
        let s = g.usize_in(2, 64);
        let d = g.even_in(2, 12);
        let (q, k, v) = qkv(s, s, d, g.u64_in(0, 1000));
        let mask = StructuredMask::dense_causal(s, s);
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(sparse.output.as_slice(), exact.output.as_slice()) < 1e-5);
    });
}

/// Attention probabilities are row-stochastic: every causal row of the
/// softmaxed score matrix sums to 1.
#[test]
fn attention_probs_rows_sum_to_one() {
    run_cases("attention_probs_rows_sum_to_one", |g| {
        let s = g.usize_in(1, 64);
        let d = g.even_in(2, 12);
        let (q, k, _) = qkv(s, s, d, g.u64_in(0, 1000));
        let p = attention_probs(&q, &k, true).unwrap();
        for i in 0..s {
            let sum: f32 = p.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
        }
    });
}

/// The merged stage-3 mask is a superset of window ∪ sinks within the
/// causal triangle: merging stripe columns can only add coverage.
#[test]
fn merged_mask_superset_of_window_and_sinks() {
    run_cases("merged_mask_superset_of_window_and_sinks", |g| {
        let s = g.usize_in(4, 64);
        let sinks = g.usize_in(0, 4);
        let kv: Vec<usize> = g
            .vec_usize(0, 64, 0, 8)
            .into_iter()
            .filter(|&c| c < s)
            .collect();
        let config = SampleAttentionConfig::builder()
            .window_ratio(g.f32_in(0.01, 0.5))
            .forced_sinks(sinks)
            .build()
            .unwrap();
        let merged = merge_mask(s, s, &kv, &config).unwrap();
        let window_only = StructuredMask::builder(s, s)
            .window(config.window_size(s))
            .sinks(config.forced_sinks)
            .dense_tail_rows(config.bottom_area_rows)
            .build()
            .unwrap();
        for i in 0..s {
            for j in 0..=i {
                if window_only.is_allowed(i, j) {
                    assert!(merged.is_allowed(i, j), "merged mask lost ({i},{j})");
                }
                if kv.contains(&j) {
                    assert!(merged.is_allowed(i, j), "stripe ({i},{j}) not merged");
                }
            }
        }
    });
}

/// Rectangular problems (prefill continuation): flash still matches.
#[test]
fn flash_rectangular() {
    run_cases("flash_rectangular", |g| {
        let s_q = g.usize_in(1, 24);
        let s_k = s_q + g.usize_in(0, 24);
        let d = g.even_in(2, 10);
        let (q, k, v) = qkv(s_q, s_k, d, g.u64_in(0, 1000));
        let flash = flash_attention(&q, &k, &v, true, FlashParams::default()).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 2e-4);
    });
}

/// Mask bookkeeping: nnz equals the dense materialisation's count and
/// density stays in [0, 1].
#[test]
fn mask_nnz_consistent() {
    run_cases("mask_nnz_consistent", |g| {
        let s = g.usize_in(1, 48);
        let window = g.usize_in(0, 24);
        let sinks = g.usize_in(0, 8);
        let tail = g.usize_in(0, 10);
        let cols: Vec<usize> = g
            .vec_usize(0, 48, 0, 8)
            .into_iter()
            .filter(|&c| c < s)
            .collect();
        let mask = StructuredMask::builder(s, s)
            .window(window)
            .sinks(sinks)
            .columns(cols)
            .dense_tail_rows(tail)
            .build()
            .unwrap();
        assert_eq!(mask.nnz(), mask.to_dense().nnz());
        assert!(mask.density() >= 0.0 && mask.density() <= 1.0);
        // is_allowed agrees with the dense oracle everywhere.
        let dense = mask.to_dense();
        for i in 0..s {
            for j in 0..s {
                assert_eq!(mask.is_allowed(i, j), dense.get(i, j));
            }
        }
    });
}
