//! Checkpoint round-trip contract, exercised through the public crate
//! facade at several `SA_THREADS` settings.
//!
//! The in-crate `sa-model` tests prove a single-threaded round trip is
//! bitwise lossless; these tests pin the claims the serving layer's
//! crash recovery actually leans on:
//!
//! 1. **Thread-invariant snapshots** — capturing at the same logical
//!    point produces the same checksum at 1, 2, and the default worker
//!    count, so a checkpoint written under one pool size restores under
//!    any other;
//! 2. **Thread-invariant resume** — a restore-and-continue produces the
//!    token stream of the uninterrupted run, bit for bit, at every
//!    thread count — including mid-eviction snapshots;
//! 3. **Typed integrity failures everywhere** — KV corruption surfaces
//!    as [`SaError::CorruptCheckpoint`] and a tripped cancel token wins
//!    over corruption (nothing staged, nothing leaked) regardless of
//!    the pool size.

use sample_attention::baselines::FullAttention;
use sample_attention::model::{
    EvictionConfig, ModelConfig, PrefillCheckpoint, SessionCheckpoint, SyntheticTransformer,
};
use sample_attention::tensor::{fault, pool, CancelToken, SaError};

fn model() -> SyntheticTransformer {
    SyntheticTransformer::new(ModelConfig::tiny(77)).expect("tiny config is valid")
}

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2];
    let default = pool::current_threads();
    if !counts.contains(&default) {
        counts.push(default);
    }
    counts
}

#[test]
fn session_resume_is_bitwise_identical_at_every_thread_count() {
    let m = model();
    let tokens = m.tokenize_filler(64);
    let vocab = m.config().vocab_size as u32;

    let mut straight = m
        .begin_decode(&tokens, &FullAttention::new())
        .expect("prefill");
    let expected = straight.generate_in(6, 0..vocab).expect("generate");

    let mut checksums = Vec::new();
    for t in thread_counts() {
        let (resumed_tokens, checksum) = pool::with_threads(t, || {
            let mut first = m
                .begin_decode(&tokens, &FullAttention::new())
                .expect("prefill");
            let mut out = first.generate_in(2, 0..vocab).expect("generate");
            let snap = SessionCheckpoint::capture(&first);
            drop(first);
            let mut resumed = snap.restore(&m, 0xA, None).expect("restore");
            out.extend(resumed.generate_in(4, 0..vocab).expect("generate"));
            (out, snap.checksum())
        });
        assert_eq!(
            expected, resumed_tokens,
            "resume at {t} threads diverged from the uninterrupted run"
        );
        checksums.push(checksum);
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "snapshot checksums differ across thread counts: {checksums:?}"
    );
}

#[test]
fn prefill_resume_is_bitwise_identical_at_every_thread_count() {
    let m = model();
    let tokens = m.tokenize_filler(96);
    let method = FullAttention::new();
    let (reference, _) = m.prefill_chunked(&tokens, 16, &method).expect("prefill");
    let expected_bits: Vec<u32> = reference
        .hidden
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();

    let mut checksums = Vec::new();
    for t in thread_counts() {
        let (bits, chunks_done, checksum) = pool::with_threads(t, || {
            let mut run = m.start_prefill(&tokens, 16).expect("start");
            for _ in 0..3 {
                run.advance_chunk(&method).expect("chunk");
            }
            let snap = PrefillCheckpoint::capture(&run);
            drop(run);
            let mut resumed = snap.restore(&m, 0xB, None).expect("restore");
            while !resumed.is_done() {
                resumed.advance_chunk(&method).expect("chunk");
            }
            let (result, _) = resumed.finish().expect("finish");
            let bits: Vec<u32> = result.hidden.as_slice().iter().map(|v| v.to_bits()).collect();
            (bits, snap.chunks_done(), snap.checksum())
        });
        assert_eq!(chunks_done, 3);
        assert_eq!(
            expected_bits, bits,
            "prefill resume at {t} threads diverged from the uninterrupted run"
        );
        checksums.push(checksum);
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "prefill checksums differ across thread counts: {checksums:?}"
    );
}

#[test]
fn evicted_session_roundtrip_survives_every_thread_count() {
    let m = model();
    let tokens = m.tokenize_filler(120);
    let vocab = m.config().vocab_size as u32;
    let evict = EvictionConfig::h2o(80);

    let mut straight = m
        .begin_decode_with(&tokens, &FullAttention::new(), evict)
        .expect("prefill");
    let expected = straight.generate_in(8, 0..vocab).expect("generate");

    for t in thread_counts() {
        let resumed_tokens = pool::with_threads(t, || {
            let mut first = m
                .begin_decode_with(&tokens, &FullAttention::new(), evict)
                .expect("prefill");
            let mut out = first.generate_in(5, 0..vocab).expect("generate");
            assert!(first.cache_len() <= 80, "eviction must have run");
            let snap = SessionCheckpoint::capture(&first);
            drop(first);
            let mut resumed = snap.restore(&m, 0xF, None).expect("restore");
            out.extend(resumed.generate_in(3, 0..vocab).expect("generate"));
            out
        });
        assert_eq!(
            expected, resumed_tokens,
            "mid-eviction resume at {t} threads diverged"
        );
    }
}

#[test]
fn corruption_and_cancellation_stay_typed_at_every_thread_count() {
    let m = model();
    let tokens = m.tokenize_filler(48);
    let session = m
        .begin_decode(&tokens, &FullAttention::new())
        .expect("prefill");
    let snap = SessionCheckpoint::capture(&session);
    drop(session);

    for t in thread_counts() {
        pool::with_threads(t, || {
            let _g = fault::install_local(fault::FaultPlan::new(3).kv_bit_flips(1));
            // A flipped KV bit trips the checksum with a typed error.
            let err = snap.restore(&m, 0xC, None).expect_err("corruption");
            assert!(
                matches!(err, SaError::CorruptCheckpoint { .. }),
                "expected CorruptCheckpoint at {t} threads, got {err:?}"
            );
            // A tripped cancel wins over the corruption plan: the
            // restore checks it before staging any KV bytes.
            let token = CancelToken::new();
            token.cancel();
            let err = snap.restore(&m, 0xD, Some(&token)).expect_err("cancel");
            assert!(
                matches!(err, SaError::Cancelled { site: "checkpoint_restore", .. }),
                "expected Cancelled at {t} threads, got {err:?}"
            );
        });
    }
}
