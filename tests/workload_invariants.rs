//! Property-based invariants of the workload generators: every generated
//! task must be internally consistent (questions reference real planted
//! facts, answers are in the declared range, prompts are well-formed).
//! Driven by the in-repo harness ([`sample_attention::tensor::check`]).

use sample_attention::model::{VocabLayout, BOS_TOKEN};
use sample_attention::tensor::check::{run_cases_n, CASES};
use sample_attention::workloads::{
    babilong_suite, longbench_suite, needle_grid, NeedleConfig, Task,
};

/// The workload suites are more expensive to generate than the kernel
/// shapes, so run a reduced case count (matching the old 12-case
/// configuration).
const WORKLOAD_CASES: usize = CASES / 2;

fn check_task(t: &Task, vocab_size: usize) {
    let layout = VocabLayout::for_vocab(vocab_size);
    assert_eq!(t.tokens[0], BOS_TOKEN, "{} must start with BOS", t.name);
    assert!(!t.questions.is_empty(), "{} has no questions", t.name);
    for q in &t.questions {
        assert!(q.position < t.tokens.len());
        assert!(
            t.answer_range.contains(&q.expected),
            "{}: answer {} outside range",
            t.name,
            q.expected
        );
        // The question position holds a marker whose fact exists: some
        // earlier position has this marker immediately followed by the
        // expected payload.
        let marker = t.tokens[q.position];
        assert!(
            (layout.marker(0)..layout.payload(0)).contains(&marker),
            "{}: question token {} is not a marker",
            t.name,
            marker
        );
        let supported = t.tokens[..q.position]
            .windows(2)
            .any(|w| w[0] == marker && w[1] == q.expected);
        assert!(supported, "{}: no supporting fact for q@{}", t.name, q.position);
    }
    // All tokens in vocabulary.
    assert!(t.tokens.iter().all(|&tok| (tok as usize) < vocab_size));
}

#[test]
fn longbench_tasks_are_consistent() {
    run_cases_n("longbench_tasks_are_consistent", WORKLOAD_CASES, |g| {
        let length = g.usize_in(128, 512);
        let seed = g.u64_in(0, 10_000);
        for t in longbench_suite(512, length, 1, seed) {
            check_task(&t, 512);
        }
    });
}

#[test]
fn babilong_tasks_are_consistent() {
    run_cases_n("babilong_tasks_are_consistent", WORKLOAD_CASES, |g| {
        let length = g.usize_in(96, 512);
        let seed = g.u64_in(0, 10_000);
        for t in babilong_suite(512, &[length], seed) {
            check_task(&t, 512);
        }
    });
}

#[test]
fn needle_cells_are_consistent() {
    run_cases_n("needle_cells_are_consistent", WORKLOAD_CASES, |g| {
        let length = g.usize_in(64, 512);
        let depths = g.usize_in(1, 9);
        let seed = g.u64_in(0, 10_000);
        let cells = needle_grid(
            512,
            &NeedleConfig {
                lengths: vec![length],
                depth_intervals: depths,
                seed,
            },
        );
        assert_eq!(cells.len(), depths);
        for c in cells {
            check_task(&c.task, 512);
            assert!((0.0..=1.0).contains(&c.depth_fraction));
        }
    });
}

#[test]
fn tasks_are_deterministic_per_seed() {
    run_cases_n("tasks_are_deterministic_per_seed", WORKLOAD_CASES, |g| {
        let seed = g.u64_in(0, 10_000);
        let a = longbench_suite(512, 160, 1, seed);
        let b = longbench_suite(512, 160, 1, seed);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(&x.tokens, &y.tokens);
            assert_eq!(&x.questions, &y.questions);
        }
    });
}
