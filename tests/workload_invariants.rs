//! Property-based invariants of the workload generators: every generated
//! task must be internally consistent (questions reference real planted
//! facts, answers are in the declared range, prompts are well-formed).

use proptest::prelude::*;
use sample_attention::model::{VocabLayout, BOS_TOKEN};
use sample_attention::workloads::{
    babilong_suite, longbench_suite, needle_grid, NeedleConfig, Task,
};

fn check_task(t: &Task, vocab_size: usize) -> Result<(), TestCaseError> {
    let layout = VocabLayout::for_vocab(vocab_size);
    prop_assert_eq!(t.tokens[0], BOS_TOKEN, "{} must start with BOS", t.name);
    prop_assert!(!t.questions.is_empty(), "{} has no questions", t.name);
    for q in &t.questions {
        prop_assert!(q.position < t.tokens.len());
        prop_assert!(
            t.answer_range.contains(&q.expected),
            "{}: answer {} outside range",
            t.name,
            q.expected
        );
        // The question position holds a marker whose fact exists: some
        // earlier position has this marker immediately followed by the
        // expected payload.
        let marker = t.tokens[q.position];
        prop_assert!(
            (layout.marker(0)..layout.payload(0)).contains(&marker),
            "{}: question token {} is not a marker",
            t.name,
            marker
        );
        let supported = t.tokens[..q.position]
            .windows(2)
            .any(|w| w[0] == marker && w[1] == q.expected);
        prop_assert!(supported, "{}: no supporting fact for q@{}", t.name, q.position);
    }
    // All tokens in vocabulary.
    prop_assert!(t.tokens.iter().all(|&tok| (tok as usize) < vocab_size));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn longbench_tasks_are_consistent(
        length in 128usize..512,
        seed in 0u64..10_000,
    ) {
        for t in longbench_suite(512, length, 1, seed) {
            check_task(&t, 512)?;
        }
    }

    #[test]
    fn babilong_tasks_are_consistent(
        length in 96usize..512,
        seed in 0u64..10_000,
    ) {
        for t in babilong_suite(512, &[length], seed) {
            check_task(&t, 512)?;
        }
    }

    #[test]
    fn needle_cells_are_consistent(
        length in 64usize..512,
        depths in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let cells = needle_grid(
            512,
            &NeedleConfig {
                lengths: vec![length],
                depth_intervals: depths,
                seed,
            },
        );
        prop_assert_eq!(cells.len(), depths);
        for c in cells {
            check_task(&c.task, 512)?;
            prop_assert!((0.0..=1.0).contains(&c.depth_fraction));
        }
    }

    #[test]
    fn tasks_are_deterministic_per_seed(seed in 0u64..10_000) {
        let a = longbench_suite(512, 160, 1, seed);
        let b = longbench_suite(512, 160, 1, seed);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.tokens, &y.tokens);
            prop_assert_eq!(&x.questions, &y.questions);
        }
    }
}
