//! Property-based invariants of the SampleAttention pipeline and the
//! paper's theory (CRA/SD definitions, Theorem 1, Lemma 1, stage-2
//! coverage guarantees). Driven by the in-repo harness
//! ([`sample_attention::tensor::check`]).

use sample_attention::core::cra::{cra_of_dense_mask, cra_of_structured_mask};
use sample_attention::core::filtering::{filter_kv_indices, KvRatioSchedule};
use sample_attention::core::sparsity::optimal_sparsity_degree;
use sample_attention::core::theory::{check_lemma1, check_theorem1};
use sample_attention::core::{SampleAttention, SampleAttentionConfig};
use sample_attention::kernels::{attention_probs, DenseMask, StructuredMask};
use sample_attention::tensor::check::run_cases;
use sample_attention::tensor::{DeterministicRng, Matrix};

fn probs(s: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = DeterministicRng::new(seed);
    let q = rng.normal_matrix(s, d, 1.0);
    let k = rng.normal_matrix(s, d, 1.0);
    attention_probs(&q, &k, true).unwrap()
}

/// The optimal mask of Definition 1 always meets its CRA constraint,
/// and SD decreases monotonically in alpha.
#[test]
fn optimal_sd_meets_alpha() {
    run_cases("optimal_sd_meets_alpha", |g| {
        let s = g.usize_in(4, 48);
        let d = g.even_in(2, 10);
        let seed = g.u64_in(0, 500);
        let alpha = g.f32_in(0.5, 0.99);
        let p = probs(s, d, seed);
        let (sd, mask) = optimal_sparsity_degree(&p, alpha);
        assert!(cra_of_dense_mask(&p, &mask).unwrap() >= alpha - 1e-4);
        assert!((0.0..=1.0).contains(&sd));
        // Monotonicity in alpha.
        let (sd_hi, _) = optimal_sparsity_degree(&p, (alpha + 0.01).min(1.0));
        assert!(sd_hi <= sd + 1e-9);
    });
}

/// Theorem 1's bound holds for arbitrary random masks.
#[test]
fn theorem1_bound_holds() {
    run_cases("theorem1_bound_holds", |g| {
        let s = g.usize_in(2, 32);
        let d = g.even_in(2, 10);
        let seed = g.u64_in(0, 500);
        let keep_prob = g.f32_in(0.0, 1.0);
        let p = probs(s, d, seed);
        let mut rng = DeterministicRng::new(seed ^ 0xabcdef);
        let v = rng.normal_matrix(s, d, 1.0);
        let mut mask = DenseMask::zeros(s, s);
        for i in 0..s {
            for j in 0..=i {
                if rng.chance(keep_prob) {
                    mask.set(i, j, true);
                }
            }
        }
        let check = check_theorem1(&p, &mask, &v);
        assert!(check.holds(), "{check:?}");
    });
}

/// Lemma 1: CRA equals one minus the max dropped row mass for any
/// structured mask.
#[test]
fn lemma1_equality() {
    run_cases("lemma1_equality", |g| {
        let s = g.usize_in(2, 40);
        let window = g.usize_in(0, 16);
        let sinks = g.usize_in(0, 4);
        let seed = g.u64_in(0, 500);
        let p = probs(s, 8, seed);
        let mask = StructuredMask::builder(s, s)
            .window(window)
            .sinks(sinks)
            .build()
            .unwrap();
        let (cra, one_minus_err) = check_lemma1(&p, &mask).unwrap();
        assert!((cra - one_minus_err).abs() < 1e-4);
        // And the structured CRA matches the dense-oracle CRA.
        let dense_cra = cra_of_dense_mask(&p, &mask.to_dense()).unwrap();
        assert!((cra - dense_cra).abs() < 1e-5);
    });
}

/// Stage-2 filtering always covers at least alpha of the mass (when
/// uncapped) and returns sorted, unique, in-range indices.
#[test]
fn filtering_covers_alpha() {
    run_cases("filtering_covers_alpha", |g| {
        let len = g.usize_in(1, 200);
        let scores: Vec<f32> = (0..len).map(|_| g.f32_in(0.0, 10.0)).collect();
        let alpha = g.f32_in(0.1, 1.0);
        let r = filter_kv_indices(&scores, alpha, 1.0, &KvRatioSchedule::Exact).unwrap();
        let total: f32 = scores.iter().sum();
        if total > 0.0 {
            assert!(r.covered_mass >= alpha - 1e-4, "covered {}", r.covered_mass);
        }
        assert!(r.indices.windows(2).all(|w| w[0] < w[1]));
        assert!(r.indices.iter().all(|&i| i < scores.len()));
    });
}

/// The end-to-end operator: valid mask, near-exact at alpha = 1 with
/// full sampling, and CRA of the discovered mask is high on the true
/// probabilities when sampling is exact.
#[test]
fn pipeline_discovers_high_cra_masks() {
    run_cases("pipeline_discovers_high_cra_masks", |g| {
        let s = g.usize_in(24, 96);
        let seed = g.u64_in(0, 200);
        let mut rng = DeterministicRng::new(seed);
        let d = 16;
        let q = rng.normal_matrix(s, d, 1.0);
        let k = rng.normal_matrix(s, d, 1.0);
        let config = SampleAttentionConfig::builder()
            .cra_threshold(0.9)
            .sample_ratio(1.0) // exact sampling: the guarantee is exact
            .window_ratio(0.05)
            .build()
            .unwrap();
        let attn = SampleAttention::new(config);
        let discovered = attn.discover_mask(&q, &k).unwrap();
        let p = attention_probs(&q, &k, true).unwrap();
        let cra = cra_of_structured_mask(&p, &discovered.mask).unwrap();
        // Column accumulation guarantees *average* coverage >= alpha; the
        // row minimum can be lower, but the window + bottom area keep it
        // from collapsing.
        assert!(cra > 0.25, "cra {cra}");
        // Aggregate (mean) coverage honours the threshold.
        assert!(discovered.stats.covered_mass >= 0.9 - 1e-4);
    });
}
