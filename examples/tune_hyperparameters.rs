//! Offline hyper-parameter tuning, as the paper does before deployment:
//! sweep α / r_row / r_w over a small profiling dataset (22 requests of
//! mixed lengths) and pick the cheapest near-lossless configuration.
//!
//! ```text
//! cargo run --release --example tune_hyperparameters
//! ```

use sample_attention::core::tuner::{HyperParamTuner, TunerGrid};
use sample_attention::model::{ModelConfig, SyntheticTransformer};
use sample_attention::workloads::dataset::profiling_requests;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(3))?;
    // The paper profiles on 22 requests from 25K-96K; CPU scale uses
    // shorter prompts with the same mixed-length structure.
    let requests = profiling_requests(&model, &[192, 256, 384, 512], 22, 3)?;
    println!("profiling on {} per-head requests...\n", requests.len());

    let grid = TunerGrid {
        cra_thresholds: vec![0.80, 0.90, 0.95, 0.98],
        sample_ratios: vec![0.05],
        window_ratios: vec![0.04, 0.08],
    };
    let tuner = HyperParamTuner::new(grid, 0.99)?;
    let report = tuner.tune(&requests)?;

    println!(
        "{:>6} {:>7} {:>6} {:>10} {:>9} {:>14}",
        "alpha", "r_row", "r_w", "fidelity", "density", "total MFLOPs"
    );
    for e in &report.entries {
        println!(
            "{:>6.2} {:>6.0}% {:>5.0}% {:>10.4} {:>9.3} {:>14.1}",
            e.config.cra_threshold,
            e.config.sample_ratio * 100.0,
            e.config.window_ratio * 100.0,
            e.fidelity,
            e.mean_density,
            e.total_flops as f64 / 1e6,
        );
    }
    let sel = &report.selection;
    println!(
        "\nselected: alpha={:.2}, r_w={:.0}%, r_row={:.0}% (met target: {})",
        sel.entry.config.cra_threshold,
        sel.entry.config.window_ratio * 100.0,
        sel.entry.config.sample_ratio * 100.0,
        sel.met_target
    );
    Ok(())
}
