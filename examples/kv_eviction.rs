//! SampleAttention + KV-cache eviction: the paper's "orthogonal, can be
//! combined" deployment (§1). Prefill runs SampleAttention; decode runs
//! full attention over a cache bounded by H2O or StreamingLLM-style
//! eviction.
//!
//! ```text
//! cargo run --release --example kv_eviction
//! ```

use sample_attention::baselines::SampleAttentionMethod;
use sample_attention::model::{EvictionConfig, ModelConfig, SyntheticTransformer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SyntheticTransformer::new(ModelConfig::tiny(21))?;
    let layout = *model.embedder().layout();
    let marker = layout.marker(5);
    let payload = layout.payload(8);
    let mut tokens = model.tokenize_filler(220);
    tokens[70] = marker;
    tokens[71] = payload;
    let last = tokens.len() - 1;
    tokens[last] = marker;

    println!("prompt: 220 tokens, needle at position 70, question at the end\n");
    for (name, eviction) in [
        ("no eviction", EvictionConfig::none()),
        ("H2O, budget 140", EvictionConfig::h2o(140)),
        ("sink+recent, budget 140", EvictionConfig::streaming(140)),
    ] {
        let mut session =
            model.begin_decode_with(&tokens, &SampleAttentionMethod::paper_default(), eviction)?;
        // Decode a few filler continuations so eviction actually runs,
        // then re-ask the question.
        for i in 0..6 {
            session.push(layout.filler(i))?;
        }
        session.push(marker)?;
        let (answer, confidence) = session.peek_in(layout.payload_range());
        println!(
            "{name:>24}: cache {:>3} entries, answer {} ({}; confidence {confidence:.2})",
            session.cache_len(),
            answer,
            if answer == payload { "correct" } else { "WRONG" },
        );
    }
    println!(
        "\nexpected: H2O keeps the heavy-hitter needle within budget;\n\
         sink+recent eviction loses the mid-context needle."
    );
    Ok(())
}
