//! Quickstart: run SampleAttention on a single attention head and compare
//! against exact full attention.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sample_attention::core::{SampleAttention, SampleAttentionConfig};
use sample_attention::kernels::full_attention;
use sample_attention::tensor::{cosine_similarity, DeterministicRng, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a head with realistic long-context structure: an attention
    // sink at position 0 and a content stripe mid-sequence.
    let s = 1024;
    let d = 64;
    let mut rng = DeterministicRng::new(7);
    let mut k = rng.normal_matrix(s, d, 0.3);
    for j in 0..d {
        let sink = k.get(0, j);
        k.set(0, j, sink + 3.0);
        let stripe = k.get(s / 2, j);
        k.set(s / 2, j, stripe + 3.0);
    }
    let q = Matrix::from_fn(s, d, |_, _| 0.5 + 0.1 * rng.normal());
    let v = rng.normal_matrix(s, d, 1.0);

    // The paper's tuned operating point: alpha=0.95, r_row=5%, r_w=8%.
    let config = SampleAttentionConfig::builder()
        .cra_threshold(0.95)
        .sample_ratio(0.05)
        .window_ratio(0.08)
        .build()?;
    let attn = SampleAttention::new(config);

    let sparse = attn.forward(&q, &k, &v)?;
    let exact = full_attention(&q, &k, &v, true)?;

    let similarity = cosine_similarity(sparse.output.as_slice(), exact.output.as_slice());
    println!("sequence length:        {s}");
    println!("mask density:           {:.1}%", sparse.stats.mask_density * 100.0);
    println!("selected stripes:       {} columns", sparse.kv_indices.len());
    println!("covered sampled mass:   {:.1}%", sparse.stats.covered_mass * 100.0);
    println!("output cosine vs exact: {similarity:.5}");
    println!(
        "FLOPs vs full attention: {:.1}%",
        100.0 * sparse.stats.total_cost().flops as f64 / exact.cost.flops as f64
    );
    println!(
        "sampling overhead share: {:.1}%",
        sparse.stats.sampling_overhead_fraction() * 100.0
    );
    assert!(similarity > 0.99, "SampleAttention should be near-lossless");
    Ok(())
}
