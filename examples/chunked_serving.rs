//! Chunked prefill + memory budgeting (Appendix A.6): process the prompt
//! in sequence chunks — exactly equivalent for a causal model, but with
//! bounded activation memory — and project how far each prefill style can
//! scale on an A100 before OOM.
//!
//! ```text
//! cargo run --release --example chunked_serving
//! ```

use sample_attention::baselines::{FullAttention, SampleAttentionMethod};
use sample_attention::model::{ModelConfig, SyntheticTransformer};
use sample_attention::perf::memory::{max_context, A100_BYTES};
use sample_attention::perf::ttft::ModelGeometry;
use sample_attention::perf::PrefillStyle;
use sample_attention::tensor::max_abs_diff;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: chunked prefill is exact.
    let model = SyntheticTransformer::new(ModelConfig::tiny(5))?;
    let tokens = model.tokenize_filler(240);
    let mono = model.prefill(&tokens, &FullAttention::new())?;
    for chunk in [32usize, 80, 240] {
        let (chunked, _caches) = model.prefill_chunked(&tokens, chunk, &FullAttention::new())?;
        let diff = max_abs_diff(chunked.hidden.as_slice(), mono.hidden.as_slice());
        println!("chunk {chunk:>4}: max |Δhidden| vs monolithic = {diff:.2e}");
    }
    let (sa_chunked, _) =
        model.prefill_chunked(&tokens, 60, &SampleAttentionMethod::paper_default())?;
    println!(
        "SampleAttention chunked prefill: mean mask density {:.3}\n",
        sa_chunked.mean_density()
    );

    // Part 2: how far each style scales on one A100 (ChatGLM2-6B, batch 1).
    let geo = ModelGeometry::chatglm2_6b();
    println!("max context before OOM on A100-80GB (ChatGLM2-6B, batch 1):");
    for (name, style, tp) in [
        ("SDPA monolithic, 1 GPU", PrefillStyle::SdpaMonolithic, 1usize),
        ("flash monolithic, 1 GPU", PrefillStyle::FlashMonolithic, 1),
        ("chunked 8K, 1 GPU", PrefillStyle::Chunked(8192), 1),
        ("chunked 8K, TP=4", PrefillStyle::Chunked(8192), 4),
    ] {
        match max_context(&geo, tp, A100_BYTES, style) {
            Some(s) => {
                let label = if s >= 1_048_576 {
                    format!("{}M", s / 1_048_576)
                } else {
                    format!("{}K", s / 1024)
                };
                println!("  {name:<26} {label:>6}");
            }
            None => println!("  {name:<26}   OOM"),
        }
    }
    println!(
        "\n(the appendix's observation: >=128K monolithic requests hit memory\n\
         issues; chunking + parallelism reach the paper's 1M-token Table 4 row)"
    );
    Ok(())
}
