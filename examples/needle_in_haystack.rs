//! Needle-in-a-Haystack: plug different sparse attention methods into the
//! synthetic transformer and watch which ones can still find the needle.
//!
//! ```text
//! cargo run --release --example needle_in_haystack
//! ```

use sample_attention::baselines::{
    AttentionMethod, BigBird, FullAttention, SampleAttentionMethod, StreamingLlm,
};
use sample_attention::model::{ModelConfig, SyntheticTransformer};
use sample_attention::workloads::{needle_grid, NeedleConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(42))?;
    let cells = needle_grid(
        model.config().vocab_size,
        &NeedleConfig {
            lengths: vec![512],
            depth_intervals: 6,
            seed: 42,
        },
    );

    let methods: Vec<Box<dyn AttentionMethod>> = vec![
        Box::new(FullAttention::new()),
        Box::new(SampleAttentionMethod::paper_default()),
        Box::new(BigBird::paper_config(42)),
        Box::new(StreamingLlm::paper_config()),
    ];

    println!("needle retrieval at S=512 (100 = found, 0 = lost):\n");
    print!("{:>28}", "depth:");
    for c in &cells {
        print!("{:>7.2}", c.depth_fraction);
    }
    println!();
    for m in &methods {
        print!("{:>28}", m.name());
        for c in &cells {
            let score = c.task.evaluate(&model, m.as_ref())?;
            print!("{score:>7.0}");
        }
        println!();
    }
    println!(
        "\nexpected: FullAttention and SampleAttention find every needle;\n\
         StreamingLLM only near depth 0 (sinks) and depth 1 (window)."
    );
    Ok(())
}
