//! Serving-scale TTFT projection: the A100 roofline model applied to
//! ChatGLM2-6B geometry, comparing FlashAttention2 against SampleAttention
//! from 8K to 1M tokens (the paper's Figures 5–6 machinery).
//!
//! ```text
//! cargo run --release --example serving_ttft
//! ```

use sample_attention::perf::ttft::{AttentionKind, TtftModel};

fn main() {
    let model = TtftModel::paper_microbench();
    let sa = AttentionKind::SampleAttention {
        alpha: 0.95,
        sample_ratio: 0.05,
    };

    println!("TTFT projection, ChatGLM2-6B on one A100 (roofline model):\n");
    println!(
        "{:>8} {:>14} {:>16} {:>10}",
        "S", "flash TTFT(ms)", "sample TTFT(ms)", "reduction"
    );
    for s in [8_192usize, 32_768, 98_304, 262_144, 1_048_576] {
        let flash = model.ttft(s, AttentionKind::Flash).total_s() * 1e3;
        let sample = model.ttft(s, sa).total_s() * 1e3;
        let label = if s >= 1_048_576 {
            "1M".to_string()
        } else {
            format!("{}K", s / 1024)
        };
        println!(
            "{label:>8} {flash:>14.0} {sample:>16.0} {:>9.2}x",
            flash / sample
        );
    }
    println!("\npaper anchors: 1.62x at 96K, 2.27x at 1M (alpha=0.95).");
}
