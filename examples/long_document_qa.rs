//! Long-document QA: evaluate every attention method on the
//! LongBench-proxy suite (single/multi-doc QA, summarization, few-shot,
//! synthetic retrieval, code completion) and print the Table-2-style
//! accuracy comparison.
//!
//! ```text
//! cargo run --release --example long_document_qa
//! ```

use sample_attention::baselines::{
    AttentionMethod, FullAttention, HashSparse, HyperAttention, SampleAttentionMethod,
    StreamingLlm,
};
use sample_attention::model::{ModelConfig, SyntheticTransformer};
use sample_attention::workloads::{evaluate_method, longbench_suite, normalize_to_full};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(9))?;
    let tasks = longbench_suite(model.config().vocab_size, 384, 2, 9);
    println!("evaluating {} tasks at ~384 tokens each...\n", tasks.len());

    let methods: Vec<Box<dyn AttentionMethod>> = vec![
        Box::new(FullAttention::new()),
        Box::new(SampleAttentionMethod::paper_default()),
        Box::new(StreamingLlm::paper_config()),
        Box::new(HyperAttention::scaled(384, 9)),
        Box::new(HashSparse::paper_config(9)),
    ];

    let mut reports = Vec::new();
    for m in &methods {
        reports.push(evaluate_method(&model, &tasks, m.as_ref())?);
    }
    let full = reports[0].clone();

    println!(
        "{:<28} {:>9} {:>10} {:>12}",
        "method", "total", "density", "% of full"
    );
    for r in &reports {
        println!(
            "{:<28} {:>9.1} {:>10.3} {:>11.1}%",
            r.method,
            r.total,
            r.mean_density,
            normalize_to_full(r, &full)
        );
    }
    println!("\nper-family scores for SampleAttention:");
    for fs in &reports[1].family_scores {
        println!("  {:<20} {:>6.1}", fs.family, fs.score);
    }
    Ok(())
}
