#!/usr/bin/env bash
# Offline tier-1 gate for the SampleAttention reproduction.
#
# Runs the hermetic build + test cycle exactly as CI would, then smokes
# one figure binary and one example end to end. Everything runs with
# --offline: the workspace has no external crate dependencies (see
# DESIGN.md, "Hermetic build policy"), so a network-less build must
# succeed from a cold checkout.
#
# Usage: scripts/verify.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier 1: cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> tier 1: cargo test --workspace -q --offline (SA_THREADS=1)"
SA_THREADS=1 cargo test --workspace -q --offline

echo "==> tier 1: cargo test --workspace -q --offline (default threads)"
cargo test --workspace -q --offline

echo "==> smoke: fig1_overview --quick (figure binary)"
smoke_out="$(mktemp -d)"
trap 'rm -rf "$smoke_out"' EXIT
cargo run -q --release --offline -p sa-bench --bin fig1_overview -- \
    --quick --out "$smoke_out"
test -s "$smoke_out/fig1_overview.json" || {
    echo "fig1_overview did not emit JSON" >&2
    exit 1
}

echo "==> smoke: quickstart example"
cargo run -q --release --offline --example quickstart

echo "verify: OK"
