#!/usr/bin/env bash
# Offline tier-1 gate for the SampleAttention reproduction.
#
# Runs the hermetic build + test cycle exactly as CI would, then smokes
# one figure binary and one example end to end. Everything runs with
# --offline: the workspace has no external crate dependencies (see
# DESIGN.md, "Hermetic build policy"), so a network-less build must
# succeed from a cold checkout.
#
# Usage: scripts/verify.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier 1: cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> tier 1: cargo test --workspace -q --offline (SA_THREADS=1)"
SA_THREADS=1 cargo test --workspace -q --offline

echo "==> tier 1: cargo test --workspace -q --offline (default threads)"
cargo test --workspace -q --offline

echo "==> fault injection: SA_FAULT=smoke (SA_THREADS=1, then default)"
SA_FAULT=smoke SA_THREADS=1 cargo test -q --offline --test fault_injection
SA_FAULT=smoke cargo test -q --offline --test fault_injection

echo "==> differential kernel suite: tiled vs row-major (SA_THREADS=1, then default)"
# The tiled block-sparse kernel must be bitwise-identical to the
# row-major kernel at every thread count; run the property suite pinned
# serial and at the session default explicitly (in addition to the
# workspace passes above) so a regression names this suite directly.
SA_THREADS=1 cargo test -q --offline --test kernel_equivalence
cargo test -q --offline --test kernel_equivalence

echo "==> lint: no unwrap()/panic-family macros in non-test pipeline sources"
# The panic-free contract (DESIGN.md 5d) bans unwrap() and the panic
# macro family (panic!/unreachable!/todo!/unimplemented!) from the
# production sources of the pipeline crates. Doc comments, doctest
# lines, and everything at/after a #[cfg(test)] module are exempt; awk
# strips those before grepping.
lint_fail=0
for f in crates/tensor/src/*.rs crates/kernels/src/*.rs crates/core/src/*.rs crates/trace/src/*.rs crates/serve/src/*.rs crates/workloads/src/arrivals.rs crates/model/src/checkpoint.rs; do
    hits="$(awk '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        /\.unwrap\(\)|panic!\(|unreachable!\(|todo!\(|unimplemented!\(/ { print FILENAME ":" FNR ": " $0 }
    ' "$f")"
    if [ -n "$hits" ]; then
        echo "$hits"
        lint_fail=1
    fi
done
if [ "$lint_fail" -ne 0 ]; then
    echo "lint: unwrap()/panic! found in non-test pipeline code" >&2
    exit 1
fi

echo "==> lint: metric names registered in docs/METRICS.md"
# Every production metric name (counter/gauge/histogram registration or
# the counter_add!/histogram_record! macros with a literal name) must be
# listed in docs/METRICS.md so new metrics land with a documented
# meaning. Doc comments and #[cfg(test)] tails are exempt, same as the
# unwrap lint above.
registry_fail=0
while IFS= read -r f; do
    names="$(awk '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        { print }
    ' "$f" | { grep -oE '\b(counter|gauge|histogram)\("[^"]+"\)|\b(counter_add|histogram_record)!\("[^"]+"' \
        || true; } | sed -E 's/^[a-z_]+!?\("([^"]+)".*/\1/' | sort -u)"
    for n in $names; do
        if ! grep -q "\`$n\`" docs/METRICS.md; then
            echo "$f: metric \"$n\" not listed in docs/METRICS.md"
            registry_fail=1
        fi
    done
done < <(find crates -path '*/src/*.rs')
if [ "$registry_fail" -ne 0 ]; then
    echo "lint: unregistered metric name — add it to docs/METRICS.md" >&2
    exit 1
fi

echo "==> lint: single timing authority (no Instant::now outside sa-trace/sa-bench)"
# All pipeline wall-clock reads go through sa_trace::clock::now_ns
# (DESIGN.md 5e); sa-serve plans on the virtual clock and must never
# read real time; sa-bench keeps its own closure-timing harness.
instant_hits="$(grep -rn 'Instant::now' \
    crates/tensor/src crates/kernels/src crates/core/src \
    crates/baselines/src crates/model/src crates/workloads/src \
    crates/perf/src crates/serve/src src/ 2>/dev/null || true)"
if [ -n "$instant_hits" ]; then
    echo "$instant_hits"
    echo "lint: Instant::now in a pipeline crate — use sa_trace::clock::now_ns" >&2
    exit 1
fi

echo "==> smoke: fig1_overview --quick (figure binary)"
smoke_out="$(mktemp -d)"
trap 'rm -rf "$smoke_out"' EXIT
cargo run -q --release --offline -p sa-bench --bin fig1_overview -- \
    --quick --out "$smoke_out"
test -s "$smoke_out/fig1_overview.json" || {
    echo "fig1_overview did not emit JSON" >&2
    exit 1
}

echo "==> smoke: trace_report --quick with SA_TRACE export"
# The binary schema-checks both artifacts itself (trace_summary.json and
# the Chrome trace) and asserts the Table-4 stage ordering; a non-empty
# trace file is all that is left to verify here.
SA_TRACE="$smoke_out/trace_chrome.json" \
    cargo run -q --release --offline -p sa-bench --bin trace_report -- \
    --quick --out "$smoke_out"
test -s "$smoke_out/trace_chrome.json" || {
    echo "trace_report did not emit a Chrome trace" >&2
    exit 1
}
test -s "$smoke_out/trace_summary.json" || {
    echo "trace_report did not emit trace_summary.json" >&2
    exit 1
}

echo "==> smoke: chaos_soak --quick (SA_THREADS=1, then default)"
# The soak binary itself asserts zero lost requests, a thread-invariant
# ledger, and the no-silent-degradation invariant; it exits non-zero on
# any violation. Run it pinned serial and at the session default.
SA_THREADS=1 cargo run -q --release --offline -p sa-bench --bin chaos_soak -- \
    --quick --out "$smoke_out"
cargo run -q --release --offline -p sa-bench --bin chaos_soak -- \
    --quick --out "$smoke_out"
test -s "$smoke_out/chaos_soak.json" || {
    echo "chaos_soak did not emit JSON" >&2
    exit 1
}

echo "==> smoke: recovery_bench --quick (SA_THREADS=1, then default)"
# The bench asserts the crash-recovery bar itself — checkpoint resume
# strictly reduces recomputed tokens with no worse goodput on every
# storm point, and the executed recovered ledger is thread-invariant;
# it exits non-zero on any violation.
SA_THREADS=1 cargo run -q --release --offline -p sa-bench --bin recovery_bench -- \
    --quick --out "$smoke_out"
cargo run -q --release --offline -p sa-bench --bin recovery_bench -- \
    --quick --out "$smoke_out"
test -s "$smoke_out/recovery.json" || {
    echo "recovery_bench did not emit JSON" >&2
    exit 1
}

echo "==> smoke: quality_guard --quick (SA_THREADS=1, then default)"
# The bench asserts the quality-guardrail bar itself — clean traffic
# trips zero quarantines, the floored tenant never exceeds its
# uncertified budget, canary rate never changes scheduling outcomes,
# the fault storm quarantines every poisoned head and probation
# re-admits all of them, and ledgers plus quarantine transitions are
# thread-invariant; it exits non-zero on any violation.
SA_THREADS=1 cargo run -q --release --offline -p sa-bench --bin quality_guard -- \
    --quick --out "$smoke_out"
cargo run -q --release --offline -p sa-bench --bin quality_guard -- \
    --quick --out "$smoke_out"
test -s "$smoke_out/quality_guard.json" || {
    echo "quality_guard did not emit JSON" >&2
    exit 1
}

echo "==> smoke: slo_sweep --quick (continuous vs one-shot goodput)"
# The sweep binary asserts the tentpole bar itself — continuous goodput
# at least one-shot goodput at every (shape x rate) point — and exits
# non-zero when continuous batching loses a point.
cargo run -q --release --offline -p sa-bench --bin slo_sweep -- \
    --quick --out "$smoke_out"
test -s "$smoke_out/slo_report.json" || {
    echo "slo_sweep did not emit JSON" >&2
    exit 1
}

echo "==> smoke: serve_timeline --quick (SA_THREADS=1, then default)"
# Runs after slo_sweep so slo_report.json is present in $smoke_out: the
# binary then asserts that the event log alone reconstructs the sweep's
# aggregate goodput bit-exactly, that events<->ledger conservation
# holds, that the storm-leg event log is byte-identical across thread
# counts, and that a forced governor shed leaves a flight-recorder
# postmortem; it exits non-zero on any violation.
SA_THREADS=1 cargo run -q --release --offline -p sa-bench --bin serve_timeline -- \
    --quick --out "$smoke_out"
cargo run -q --release --offline -p sa-bench --bin serve_timeline -- \
    --quick --out "$smoke_out"
test -s "$smoke_out/serve_timeline.json" || {
    echo "serve_timeline did not emit JSON" >&2
    exit 1
}
test -s "$smoke_out/serve_timeline.txt" || {
    echo "serve_timeline did not emit its text digest" >&2
    exit 1
}

echo "==> smoke: tile_kernel --quick (tiled vs row-major A/B)"
# The binary re-asserts bitwise identity on every case before timing it
# and exits non-zero on divergence; here we only check the report lands.
cargo run -q --release --offline -p sa-bench --bin tile_kernel -- \
    --quick --out "$smoke_out"
test -s "$smoke_out/tile_kernel.json" || {
    echo "tile_kernel did not emit JSON" >&2
    exit 1
}

echo "==> smoke: quickstart example"
cargo run -q --release --offline --example quickstart

echo "verify: OK"
