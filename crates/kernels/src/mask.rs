//! Structured sparse attention masks.
//!
//! The paper's key reformulation (Eq. 5) restricts the attention mask to a
//! hardware-efficient union of a **local window**, **attention sinks**, and
//! a set of **column stripes** `I_KV`, all intersected with the causal
//! triangle:
//!
//! ```text
//! M̂ = M_window(w) ∪ M_stripe(I_KV)
//! ```
//!
//! [`StructuredMask`] stores this in O(w + |I_KV|) space; the block-sparse
//! kernel consumes it directly. [`DenseMask`] is the O(S²) reference
//! oracle used only in tests and small-scale analysis.

use sa_tensor::TensorError;

/// A structured sparse attention mask: causal ∩ (window ∪ sinks ∪ columns).
///
/// Semantics for query row `i` (0-based) and key column `j`:
///
/// - **causal**: `j <= i + diag_offset` where
///   `diag_offset = s_k - s_q` (so with `s_q == s_k` each query attends to
///   keys up to and including itself);
/// - **window**: the last `window` causally visible keys
///   (`j > causal_end(i) - window`);
/// - **extras**: any `j` in the merged sink/stripe column set.
///
/// An entry is live iff it is causal **and** (in the window **or** an
/// extra column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuredMask {
    s_q: usize,
    s_k: usize,
    window: usize,
    /// Sorted, deduplicated union of sink columns and stripe columns.
    extras: Vec<usize>,
    /// The last `dense_tail_rows` query rows attend to every causal key
    /// (the paper's Figure 3 "bottom area": the final rows cannot be
    /// judged from strided samples and are generation-critical, so they
    /// are computed densely).
    dense_tail_rows: usize,
    /// Sorted relative *diagonal* offsets: offset `Δ` keeps, on every row,
    /// the single key exactly `Δ` positions before the causal end. The
    /// paper's Appendix A.6 identifies such "additional diagonal
    /// structures" in low-sparsity heads as a future-work pattern.
    diagonals: Vec<usize>,
}

// `dense_tail_rows` and `diagonals` default to empty when absent, so mask
// payloads written before those features existed keep parsing.
sa_json::impl_json_struct!(StructuredMask {
    s_q,
    s_k,
    window,
    extras,
    dense_tail_rows: default,
    diagonals: default
});

impl StructuredMask {
    /// Starts building a mask for an `s_q x s_k` attention problem.
    pub fn builder(s_q: usize, s_k: usize) -> StructuredMaskBuilder {
        StructuredMaskBuilder {
            s_q,
            s_k,
            window: 0,
            sinks: 0,
            columns: Vec::new(),
            dense_tail_rows: 0,
            diagonals: Vec::new(),
        }
    }

    /// A causal mask with a local window covering every visible key
    /// (i.e. dense causal attention).
    pub fn dense_causal(s_q: usize, s_k: usize) -> Self {
        StructuredMask {
            s_q,
            s_k,
            window: s_k,
            extras: Vec::new(),
            dense_tail_rows: 0,
            diagonals: Vec::new(),
        }
    }

    /// Number of query rows.
    pub fn s_q(&self) -> usize {
        self.s_q
    }

    /// Number of key columns.
    pub fn s_k(&self) -> usize {
        self.s_k
    }

    /// The local window size in tokens.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The merged, sorted sink + stripe column indices.
    pub fn extra_columns(&self) -> &[usize] {
        &self.extras
    }

    /// The sorted relative diagonal offsets.
    pub fn diagonal_offsets(&self) -> &[usize] {
        &self.diagonals
    }

    /// The diagonal key positions live on row `i` that lie *below* the
    /// window (deduplicated against the extra columns).
    pub fn diagonal_keys(&self, i: usize) -> Vec<usize> {
        let Some(end) = self.causal_end(i) else {
            return Vec::new();
        };
        let win_start = self.window_start(i);
        self.diagonals
            .iter()
            .filter_map(|&delta| end.checked_sub(delta))
            .filter(|&j| j < win_start && self.extras.binary_search(&j).is_err())
            .collect()
    }

    /// Index of the last causally visible key for query row `i`, or `None`
    /// if the row sees nothing (possible only when `s_k < s_q`).
    #[inline]
    pub fn causal_end(&self, i: usize) -> Option<usize> {
        debug_assert!(i < self.s_q);
        let end = i as isize + self.s_k as isize - self.s_q as isize;
        if end < 0 {
            None
        } else {
            Some((end as usize).min(self.s_k - 1))
        }
    }

    /// Whether row `i` lies in the dense bottom area.
    #[inline]
    pub fn is_dense_row(&self, i: usize) -> bool {
        i + self.dense_tail_rows >= self.s_q
    }

    /// Number of dense bottom-area rows.
    pub fn dense_tail_rows(&self) -> usize {
        self.dense_tail_rows
    }

    /// First key index covered by the local window on row `i` (the window
    /// spans `window_start(i) ..= causal_end(i)`; 0 for bottom-area rows,
    /// which attend to everything causal).
    #[inline]
    pub fn window_start(&self, i: usize) -> usize {
        if self.is_dense_row(i) {
            return 0;
        }
        match self.causal_end(i) {
            Some(end) => (end + 1).saturating_sub(self.window),
            None => 0,
        }
    }

    /// Whether `(i, j)` is live under this mask.
    #[inline]
    pub fn is_allowed(&self, i: usize, j: usize) -> bool {
        if i >= self.s_q || j >= self.s_k {
            return false;
        }
        let Some(end) = self.causal_end(i) else {
            return false;
        };
        if j > end {
            return false;
        }
        if j >= self.window_start(i) {
            return true;
        }
        if self.extras.binary_search(&j).is_ok() {
            return true;
        }
        let delta = end - j;
        self.diagonals.binary_search(&delta).is_ok()
    }

    /// Number of live entries on query row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        let Some(end) = self.causal_end(i) else {
            return 0;
        };
        let win_start = self.window_start(i);
        let window_count = end + 1 - win_start;
        let extras_before = self.extras.partition_point(|&c| c < win_start);
        window_count + extras_before + self.diagonal_keys(i).len()
    }

    /// Total number of live entries.
    pub fn nnz(&self) -> usize {
        (0..self.s_q).map(|i| self.row_nnz(i)).sum()
    }

    /// Number of causally visible entries (the dense baseline's work).
    pub fn causal_nnz(&self) -> usize {
        (0..self.s_q)
            .map(|i| self.causal_end(i).map_or(0, |e| e + 1))
            .sum()
    }

    /// Fraction of the causal triangle that is live, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        let causal = self.causal_nnz();
        if causal == 0 {
            0.0
        } else {
            self.nnz() as f64 / causal as f64
        }
    }

    /// Sparsity relative to the causal triangle: `1 - density()`.
    ///
    /// This matches the paper's `SD` convention of measuring dropped
    /// key-value elements against `S_q * S_k / 2`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Materialises the mask as a [`DenseMask`] (test oracle; O(S²)).
    pub fn to_dense(&self) -> DenseMask {
        let mut bits = vec![false; self.s_q * self.s_k];
        for i in 0..self.s_q {
            if let Some(end) = self.causal_end(i) {
                let win_start = self.window_start(i);
                for j in win_start..=end {
                    bits[i * self.s_k + j] = true;
                }
                for &c in &self.extras {
                    if c >= win_start {
                        break;
                    }
                    bits[i * self.s_k + c] = true;
                }
                for j in self.diagonal_keys(i) {
                    bits[i * self.s_k + j] = true;
                }
            }
        }
        DenseMask {
            s_q: self.s_q,
            s_k: self.s_k,
            bits,
        }
    }

    /// Returns a copy of this mask with additional stripe columns merged
    /// in.
    pub fn with_extra_columns(&self, columns: &[usize]) -> Self {
        let mut extras = self.extras.clone();
        extras.extend(columns.iter().copied().filter(|&c| c < self.s_k));
        extras.sort_unstable();
        extras.dedup();
        StructuredMask {
            extras,
            ..self.clone()
        }
    }
}

/// Builder for [`StructuredMask`] (window size, sinks, stripe columns).
///
/// # Example
///
/// ```
/// use sa_kernels::StructuredMask;
///
/// # fn main() -> Result<(), sa_kernels::KernelError> {
/// let mask = StructuredMask::builder(128, 128)
///     .window(16)
///     .sinks(4)
///     .columns(vec![40, 77])
///     .build()?;
/// assert!(mask.is_allowed(100, 40));   // stripe column
/// assert!(mask.is_allowed(100, 0));    // sink
/// assert!(mask.is_allowed(100, 95));   // inside window
/// assert!(!mask.is_allowed(100, 50));  // dropped
/// assert!(!mask.is_allowed(50, 100));  // non-causal
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StructuredMaskBuilder {
    s_q: usize,
    s_k: usize,
    window: usize,
    sinks: usize,
    columns: Vec<usize>,
    dense_tail_rows: usize,
    diagonals: Vec<usize>,
}

impl StructuredMaskBuilder {
    /// Sets the local window size in tokens (clamped to `s_k`).
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets the window as a ratio of `s_k`, rounded up (the paper's
    /// `⌈r_w% · S_k⌉`).
    pub fn window_ratio(mut self, ratio: f32) -> Self {
        let r = ratio.clamp(0.0, 1.0);
        self.window = (r * self.s_k as f32).ceil() as usize;
        self
    }

    /// Keeps the first `sinks` key positions always visible (attention
    /// sinks, as in StreamingLLM).
    pub fn sinks(mut self, sinks: usize) -> Self {
        self.sinks = sinks;
        self
    }

    /// Adds stripe column indices (`I_KV`); duplicates and out-of-range
    /// values are ignored at build time.
    pub fn columns(mut self, columns: Vec<usize>) -> Self {
        self.columns = columns;
        self
    }

    /// Makes the last `rows` query rows attend densely (the "bottom
    /// area" of the paper's Figure 3).
    pub fn dense_tail_rows(mut self, rows: usize) -> Self {
        self.dense_tail_rows = rows;
        self
    }

    /// Adds relative diagonal offsets (Appendix A.6's diagonal pattern);
    /// duplicates are removed at build time.
    pub fn diagonals(mut self, offsets: Vec<usize>) -> Self {
        self.diagonals = offsets;
        self
    }

    /// Builds the mask.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if any provided column is
    /// `>= s_k` (silent dropping would hide caller bugs; clamping of the
    /// window and sink counts, by contrast, is well-defined).
    pub fn build(self) -> Result<StructuredMask, TensorError> {
        if let Some(&bad) = self.columns.iter().find(|&&c| c >= self.s_k) {
            return Err(TensorError::InvalidDimension {
                op: "StructuredMaskBuilder::build",
                what: format!("stripe column {bad} out of range (s_k = {})", self.s_k),
            });
        }
        let mut extras: Vec<usize> = (0..self.sinks.min(self.s_k)).collect();
        extras.extend(self.columns.iter().copied());
        extras.sort_unstable();
        extras.dedup();
        let mut diagonals = self.diagonals;
        diagonals.sort_unstable();
        diagonals.dedup();
        Ok(StructuredMask {
            s_q: self.s_q,
            s_k: self.s_k,
            window: self.window.min(self.s_k),
            extras,
            dense_tail_rows: self.dense_tail_rows.min(self.s_q),
            diagonals,
        })
    }
}

/// A dense boolean attention mask — the `{0,1}^{S_q x S_k}` object of the
/// paper's theory section. Reference oracle for tests and small-scale
/// sparsity analysis only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseMask {
    s_q: usize,
    s_k: usize,
    bits: Vec<bool>,
}

impl DenseMask {
    /// All-false mask.
    pub fn zeros(s_q: usize, s_k: usize) -> Self {
        DenseMask {
            s_q,
            s_k,
            bits: vec![false; s_q * s_k],
        }
    }

    /// Causal lower-triangular mask (with the same diagonal-offset
    /// convention as [`StructuredMask`]).
    pub fn causal(s_q: usize, s_k: usize) -> Self {
        let mut m = DenseMask::zeros(s_q, s_k);
        let off = s_k as isize - s_q as isize;
        for i in 0..s_q {
            let end = i as isize + off;
            if end >= 0 {
                for j in 0..=(end as usize).min(s_k - 1) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Number of query rows.
    pub fn s_q(&self) -> usize {
        self.s_q
    }

    /// Number of key columns.
    pub fn s_k(&self) -> usize {
        self.s_k
    }

    /// Whether `(i, j)` is live.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.s_k + j]
    }

    /// Sets entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        self.bits[i * self.s_k + j] = v;
    }

    /// Number of live entries.
    pub fn nnz(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Element-wise AND with another mask.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn and(&self, other: &DenseMask) -> Result<DenseMask, TensorError> {
        if (self.s_q, self.s_k) != (other.s_q, other.s_k) {
            return Err(TensorError::ShapeMismatch {
                op: "DenseMask::and",
                lhs: (self.s_q, self.s_k),
                rhs: (other.s_q, other.s_k),
            });
        }
        Ok(DenseMask {
            s_q: self.s_q,
            s_k: self.s_k,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| a && b)
                .collect(),
        })
    }

    /// Element-wise OR with another mask.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn or(&self, other: &DenseMask) -> Result<DenseMask, TensorError> {
        if (self.s_q, self.s_k) != (other.s_q, other.s_k) {
            return Err(TensorError::ShapeMismatch {
                op: "DenseMask::or",
                lhs: (self.s_q, self.s_k),
                rhs: (other.s_q, other.s_k),
            });
        }
        Ok(DenseMask {
            s_q: self.s_q,
            s_k: self.s_k,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| a || b)
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mask() -> StructuredMask {
        StructuredMask::builder(8, 8)
            .window(2)
            .sinks(1)
            .columns(vec![4])
            .build()
            .unwrap()
    }

    #[test]
    fn causal_end_square() {
        let m = StructuredMask::dense_causal(4, 4);
        assert_eq!(m.causal_end(0), Some(0));
        assert_eq!(m.causal_end(3), Some(3));
    }

    #[test]
    fn causal_end_rectangular_kv_longer() {
        // 2 queries against 5 keys: queries are the *last* 2 positions.
        let m = StructuredMask::dense_causal(2, 5);
        assert_eq!(m.causal_end(0), Some(3));
        assert_eq!(m.causal_end(1), Some(4));
    }

    #[test]
    fn causal_end_rectangular_q_longer() {
        let m = StructuredMask::dense_causal(5, 2);
        assert_eq!(m.causal_end(0), None);
        assert_eq!(m.causal_end(2), None);
        assert_eq!(m.causal_end(3), Some(0));
        assert_eq!(m.causal_end(4), Some(1));
    }

    #[test]
    fn is_allowed_combines_window_sinks_columns() {
        let m = small_mask();
        // row 6: causal end 6, window covers {5, 6}; extras {0, 4}.
        assert!(m.is_allowed(6, 6));
        assert!(m.is_allowed(6, 5));
        assert!(!m.is_allowed(6, 3));
        assert!(m.is_allowed(6, 4));
        assert!(m.is_allowed(6, 0));
        assert!(!m.is_allowed(6, 7)); // non-causal
        // row 0: only key 0 is visible (in window).
        assert!(m.is_allowed(0, 0));
        assert!(!m.is_allowed(0, 1));
    }

    #[test]
    fn out_of_bounds_not_allowed() {
        let m = small_mask();
        assert!(!m.is_allowed(8, 0));
        assert!(!m.is_allowed(0, 8));
    }

    #[test]
    fn row_nnz_matches_dense() {
        let m = small_mask();
        let dense = m.to_dense();
        for i in 0..8 {
            let want = (0..8).filter(|&j| dense.get(i, j)).count();
            assert_eq!(m.row_nnz(i), want, "row {i}");
        }
        assert_eq!(m.nnz(), dense.nnz());
    }

    #[test]
    fn to_dense_agrees_with_is_allowed() {
        let m = StructuredMask::builder(10, 10)
            .window(3)
            .sinks(2)
            .columns(vec![5, 7])
            .build()
            .unwrap();
        let dense = m.to_dense();
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(dense.get(i, j), m.is_allowed(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn dense_causal_mask_is_full_triangle() {
        let m = StructuredMask::dense_causal(6, 6);
        assert_eq!(m.nnz(), 6 * 7 / 2);
        assert_eq!(m.density(), 1.0);
        assert_eq!(m.sparsity(), 0.0);
    }

    #[test]
    fn density_and_sparsity() {
        let m = StructuredMask::builder(100, 100).window(1).build().unwrap();
        // only the diagonal is live: 100 of 5050 causal entries.
        assert_eq!(m.nnz(), 100);
        assert!((m.density() - 100.0 / 5050.0).abs() < 1e-12);
        assert!((m.sparsity() + m.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_ratio_ceil() {
        let m = StructuredMask::builder(100, 100)
            .window_ratio(0.08)
            .build()
            .unwrap();
        assert_eq!(m.window(), 8);
        let m2 = StructuredMask::builder(99, 99).window_ratio(0.08).build().unwrap();
        assert_eq!(m2.window(), 8); // ceil(7.92)
    }

    #[test]
    fn builder_rejects_out_of_range_columns() {
        let err = StructuredMask::builder(4, 4).columns(vec![4]).build();
        assert!(err.is_err());
    }

    #[test]
    fn builder_clamps_window_and_sinks() {
        let m = StructuredMask::builder(4, 4).window(100).sinks(100).build().unwrap();
        assert_eq!(m.window(), 4);
        assert_eq!(m.extra_columns().len(), 4);
        assert_eq!(m.density(), 1.0);
    }

    #[test]
    fn extras_merged_sorted_dedup() {
        let m = StructuredMask::builder(10, 10)
            .sinks(2)
            .columns(vec![7, 1, 7, 3])
            .build()
            .unwrap();
        assert_eq!(m.extra_columns(), &[0, 1, 3, 7]);
    }

    #[test]
    fn with_extra_columns_merges() {
        let m = small_mask();
        let m2 = m.with_extra_columns(&[2, 4, 99]); // 99 out of range → dropped
        assert!(m2.is_allowed(6, 2));
        assert_eq!(m2.extra_columns(), &[0, 2, 4]);
    }

    #[test]
    fn zero_window_only_extras() {
        let m = StructuredMask::builder(5, 5).window(0).sinks(1).build().unwrap();
        assert!(m.is_allowed(4, 0));
        assert!(!m.is_allowed(4, 4));
        assert_eq!(m.row_nnz(0), 1);
    }

    #[test]
    fn dense_mask_ops() {
        let a = DenseMask::causal(3, 3);
        let mut b = DenseMask::zeros(3, 3);
        b.set(0, 0, true);
        b.set(2, 1, true);
        b.set(0, 2, true); // non-causal
        let and = a.and(&b).unwrap();
        assert_eq!(and.nnz(), 2);
        let or = a.or(&b).unwrap();
        assert_eq!(or.nnz(), 7);
        assert_eq!(a.s_q(), 3);
        assert_eq!(a.s_k(), 3);
        // Shape mismatches are recoverable errors, not panics.
        let wide = DenseMask::zeros(3, 4);
        assert!(a.and(&wide).is_err());
        assert!(a.or(&wide).is_err());
    }

    #[test]
    fn dense_causal_rectangular() {
        let m = DenseMask::causal(2, 4);
        assert!(m.get(0, 2));
        assert!(!m.get(0, 3));
        assert!(m.get(1, 3));
        let n = DenseMask::causal(4, 2);
        assert_eq!(n.nnz(), 1 + 2); // rows 2 and 3 only
    }

    #[test]
    fn json_round_trip() {
        let m = small_mask();
        let s = sa_json::to_string(&m);
        let back: StructuredMask = sa_json::from_str(&s).unwrap();
        assert_eq!(m, back);
        // Older payloads without the defaulted fields keep parsing.
        let legacy: StructuredMask =
            sa_json::from_str(r#"{"s_q":4,"s_k":4,"window":2,"extras":[0]}"#).unwrap();
        assert_eq!(legacy.dense_tail_rows(), 0);
    }
}
