/// Exact algorithmic work performed by a kernel invocation.
///
/// The counts are *logical*: they describe the arithmetic and memory
/// traffic a GPU implementation of the same algorithm would perform, not
/// the host CPU's incidental bookkeeping. `sa-perf` feeds these into an
/// A100 roofline model to reproduce the paper's latency figures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostReport {
    /// Floating-point operations (multiply-adds count as 2).
    pub flops: u64,
    /// Bytes read from (simulated) device memory.
    pub bytes_read: u64,
    /// Bytes written to (simulated) device memory.
    pub bytes_written: u64,
    /// Number of logical kernel launches (operator fusions reduce this).
    pub kernel_launches: u64,
}

impl CostReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// A report for a single kernel launch with the given counters.
    pub fn launch(flops: u64, bytes_read: u64, bytes_written: u64) -> Self {
        CostReport {
            flops,
            bytes_read,
            bytes_written,
            kernel_launches: 1,
        }
    }

    /// Total memory traffic (read + written).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in FLOPs per byte of traffic.
    ///
    /// Returns 0 when there is no memory traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.bytes_total();
        if b == 0 {
            0.0
        } else {
            self.flops as f64 / b as f64
        }
    }

    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: &CostReport) {
        self.flops += other.flops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.kernel_launches += other.kernel_launches;
    }
}

impl std::ops::Add for CostReport {
    type Output = CostReport;

    fn add(mut self, rhs: CostReport) -> CostReport {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for CostReport {
    fn sum<I: Iterator<Item = CostReport>>(iter: I) -> CostReport {
        iter.fold(CostReport::new(), |acc, r| acc + r)
    }
}

sa_json::impl_json_struct!(CostReport {
    flops,
    bytes_read,
    bytes_written,
    kernel_launches
});

/// Bytes occupied by `n` f32 elements (the workspace-wide element size;
/// the perf model separately rescales for fp16 GPU execution).
#[inline]
pub(crate) fn f32_bytes(n: u64) -> u64 {
    n * 4
}

/// Cost of one tiled block-sparse attention launch, with tile-granular
/// memory traffic.
///
/// The row-major kernel's estimate amortised *all* K/V reads by a fixed
/// `KV_TILE_REUSE` factor, which overstates reuse for scattered stripe
/// columns and understates it for wide windows. Here traffic follows
/// the actual tile layout: each live `(query tile, key tile)` pair
/// loads its K/V rows exactly once (`full_rows + partial_rows` from
/// [`TileTraffic`](crate::TileTraffic)), partial tiles additionally
/// read their occupancy metadata (8-byte bitmap words, 4-byte span
/// pairs), and the scattered sink/stripe rows gathered into `TilePack`
/// buffers are read once and written once at pack time. FLOPs are
/// unchanged from the row-major kernel — tiling reorders work, it does
/// not add any — so per-nnz FLOP invariants keep holding.
pub fn tiled_kernel_cost(
    s_q: usize,
    d: usize,
    dv: usize,
    live_pairs: u64,
    packed_rows: u64,
    traffic: &crate::TileTraffic,
) -> CostReport {
    let flops = live_pairs * (2 * d as u64 + 4 + 2 * dv as u64);
    let kv_row_bytes = f32_bytes((d + dv) as u64);
    let kv_bytes = (traffic.full_rows + traffic.partial_rows) * kv_row_bytes;
    let meta_bytes = traffic.bitmap_words * 8 + traffic.span_entries * 4;
    let pack_bytes = packed_rows * kv_row_bytes;
    let bytes_read = f32_bytes((s_q * d) as u64) + kv_bytes + meta_bytes + pack_bytes;
    let bytes_written = f32_bytes((s_q * dv) as u64) + pack_bytes;
    CostReport::launch(flops, bytes_read, bytes_written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_add_agree() {
        let a = CostReport::launch(100, 40, 8);
        let b = CostReport::launch(50, 10, 2);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m, a + b);
        assert_eq!(m.flops, 150);
        assert_eq!(m.kernel_launches, 2);
        assert_eq!(m.bytes_total(), 60);
    }

    #[test]
    fn sum_over_iterator() {
        let total: CostReport = (0..4).map(|i| CostReport::launch(i, i, i)).sum();
        assert_eq!(total.flops, 6);
        assert_eq!(total.kernel_launches, 4);
    }

    #[test]
    fn arithmetic_intensity() {
        let r = CostReport::launch(200, 40, 10);
        assert!((r.arithmetic_intensity() - 4.0).abs() < 1e-12);
        assert_eq!(CostReport::new().arithmetic_intensity(), 0.0);
    }

    #[test]
    fn json_round_trip() {
        let r = CostReport::launch(7, 8, 9);
        let s = sa_json::to_string(&r);
        let back: CostReport = sa_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }

    fn tiled_cost_for(s: usize, window: usize, sinks: usize) -> CostReport {
        let mask = crate::StructuredMask::builder(s, s)
            .window(window)
            .sinks(sinks)
            .build()
            .unwrap();
        let tiled = crate::TiledMask::build(mask.clone(), 16).unwrap();
        tiled_kernel_cost(s, 8, 8, mask.nnz() as u64, sinks as u64, &tiled.traffic())
    }

    /// Pin tiled cost monotonicity in nnz: widening the window (more
    /// live pairs at the same S) can only increase flops, and never
    /// decreases traffic. Bytes are tile-granular — two window widths
    /// inside the same tile footprint cost the same bytes — so bytes
    /// are non-strict per step but must grow across the sweep.
    #[test]
    fn tiled_cost_monotone_in_nnz() {
        let first = tiled_cost_for(256, 4, 2);
        let mut prev = first;
        for window in [16, 64, 256] {
            let next = tiled_cost_for(256, window, 2);
            assert!(next.flops > prev.flops, "flops not monotone at w={window}");
            assert!(
                next.bytes_total() + 256 >= prev.bytes_total(),
                "bytes shrank at w={window}"
            );
            prev = next;
        }
        assert!(prev.bytes_total() > first.bytes_total());
    }

    /// Pin tiled cost monotonicity in S for a fixed sparsity pattern.
    #[test]
    fn tiled_cost_monotone_in_s() {
        let mut prev = tiled_cost_for(64, 8, 2);
        for s in [128, 256, 512] {
            let next = tiled_cost_for(s, 8, 2);
            assert!(next.flops > prev.flops, "flops not monotone at s={s}");
            assert!(
                next.bytes_total() > prev.bytes_total(),
                "bytes not monotone at s={s}"
            );
            prev = next;
        }
    }

    /// Metadata traffic is charged: bitmap-carrying layouts cost more
    /// bytes than the same live set without metadata would.
    #[test]
    fn tiled_cost_charges_tile_metadata() {
        let mask = crate::StructuredMask::builder(128, 128)
            .window(8)
            .sinks(2)
            .build()
            .unwrap();
        let tiled = crate::TiledMask::build(mask.clone(), 16).unwrap();
        let traffic = tiled.traffic();
        assert!(traffic.bitmap_words > 0);
        let with_meta = tiled_kernel_cost(128, 8, 8, mask.nnz() as u64, 2, &traffic);
        let mut no_meta = traffic;
        no_meta.bitmap_words = 0;
        no_meta.span_entries = 0;
        let without = tiled_kernel_cost(128, 8, 8, mask.nnz() as u64, 2, &no_meta);
        assert!(with_meta.bytes_read > without.bytes_read);
        assert_eq!(with_meta.flops, without.flops);
    }
}
