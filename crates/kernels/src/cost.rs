/// Exact algorithmic work performed by a kernel invocation.
///
/// The counts are *logical*: they describe the arithmetic and memory
/// traffic a GPU implementation of the same algorithm would perform, not
/// the host CPU's incidental bookkeeping. `sa-perf` feeds these into an
/// A100 roofline model to reproduce the paper's latency figures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostReport {
    /// Floating-point operations (multiply-adds count as 2).
    pub flops: u64,
    /// Bytes read from (simulated) device memory.
    pub bytes_read: u64,
    /// Bytes written to (simulated) device memory.
    pub bytes_written: u64,
    /// Number of logical kernel launches (operator fusions reduce this).
    pub kernel_launches: u64,
}

impl CostReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// A report for a single kernel launch with the given counters.
    pub fn launch(flops: u64, bytes_read: u64, bytes_written: u64) -> Self {
        CostReport {
            flops,
            bytes_read,
            bytes_written,
            kernel_launches: 1,
        }
    }

    /// Total memory traffic (read + written).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in FLOPs per byte of traffic.
    ///
    /// Returns 0 when there is no memory traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.bytes_total();
        if b == 0 {
            0.0
        } else {
            self.flops as f64 / b as f64
        }
    }

    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: &CostReport) {
        self.flops += other.flops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.kernel_launches += other.kernel_launches;
    }
}

impl std::ops::Add for CostReport {
    type Output = CostReport;

    fn add(mut self, rhs: CostReport) -> CostReport {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for CostReport {
    fn sum<I: Iterator<Item = CostReport>>(iter: I) -> CostReport {
        iter.fold(CostReport::new(), |acc, r| acc + r)
    }
}

sa_json::impl_json_struct!(CostReport {
    flops,
    bytes_read,
    bytes_written,
    kernel_launches
});

/// Bytes occupied by `n` f32 elements (the workspace-wide element size;
/// the perf model separately rescales for fp16 GPU execution).
#[inline]
pub(crate) fn f32_bytes(n: u64) -> u64 {
    n * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_add_agree() {
        let a = CostReport::launch(100, 40, 8);
        let b = CostReport::launch(50, 10, 2);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m, a + b);
        assert_eq!(m.flops, 150);
        assert_eq!(m.kernel_launches, 2);
        assert_eq!(m.bytes_total(), 60);
    }

    #[test]
    fn sum_over_iterator() {
        let total: CostReport = (0..4).map(|i| CostReport::launch(i, i, i)).sum();
        assert_eq!(total.flops, 6);
        assert_eq!(total.kernel_launches, 4);
    }

    #[test]
    fn arithmetic_intensity() {
        let r = CostReport::launch(200, 40, 10);
        assert!((r.arithmetic_intensity() - 4.0).abs() < 1e-12);
        assert_eq!(CostReport::new().arithmetic_intensity(), 0.0);
    }

    #[test]
    fn json_round_trip() {
        let r = CostReport::launch(7, 8, 9);
        let s = sa_json::to_string(&r);
        let back: CostReport = sa_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }
}
