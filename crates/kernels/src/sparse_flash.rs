//! Block-sparse FlashAttention over a [`StructuredMask`].
//!
//! This is the kernel that turns a discovered sparse pattern into wall-
//! clock savings: for each query row it touches only (a) the extra columns
//! (sinks + stripes) below the local window and (b) the contiguous local
//! window itself, using the same online softmax as the dense flash kernel.
//! Work and memory traffic are therefore proportional to `mask.nnz()`
//! instead of the full causal triangle — exactly the paper's
//! `sparse_flash_attn(Q, K, V, M_Merged)`.

use std::sync::atomic::{AtomicU64, Ordering};

use sa_tensor::{online_softmax_update, pool, Matrix, OnlineSoftmaxState, TensorError};

use crate::cost::f32_bytes;
use crate::{score_scale, AttentionOutput, CostReport, StructuredMask};

/// Query rows per tile sharing one K/V load in the (simulated) fused
/// kernel.
pub(crate) const KV_TILE_REUSE: u64 = 128;

/// Structured-sparse causal attention.
///
/// Computes exactly `softmax(masked scores) V` where masked scores keep
/// only entries live under `mask` (causal ∩ (window ∪ sinks ∪ stripes)).
/// Rows with no live entry produce zeros.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the Q/K/V shapes disagree
/// with each other or with the mask dimensions.
///
/// # Example
///
/// ```
/// use sa_tensor::DeterministicRng;
/// use sa_kernels::{sparse_flash_attention, StructuredMask};
///
/// # fn main() -> Result<(), sa_kernels::KernelError> {
/// let mut rng = DeterministicRng::new(0);
/// let (q, k, v) = (
///     rng.normal_matrix(64, 8, 1.0),
///     rng.normal_matrix(64, 8, 1.0),
///     rng.normal_matrix(64, 8, 1.0),
/// );
/// let mask = StructuredMask::builder(64, 64)
///     .window(8)
///     .sinks(2)
///     .columns(vec![20, 33])
///     .build()?;
/// let out = sparse_flash_attention(&q, &k, &v, &mask)?;
/// assert_eq!(out.output.shape(), (64, 8));
/// # Ok(())
/// # }
/// ```
pub fn sparse_flash_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mask: &StructuredMask,
) -> Result<AttentionOutput, TensorError> {
    if q.cols() != k.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_flash_attention(q,k)",
            lhs: q.shape(),
            rhs: k.shape(),
        });
    }
    if k.rows() != v.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_flash_attention(k,v)",
            lhs: k.shape(),
            rhs: v.shape(),
        });
    }
    if mask.s_q() != q.rows() || mask.s_k() != k.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_flash_attention(mask)",
            lhs: (mask.s_q(), mask.s_k()),
            rhs: (q.rows(), k.rows()),
        });
    }

    let (s_q, d) = q.shape();
    let dv = v.cols();
    let scale = score_scale(d);
    let extras = mask.extra_columns();

    let mut output = Matrix::zeros(s_q, dv);
    let live_pairs = AtomicU64::new(0);

    // Rows are fully independent (each folds only its own live columns),
    // so row chunks run on the worker pool with bit-identical per-row
    // arithmetic. The score/column scratch buffers become per-chunk
    // locals; `live_pairs` is an integer tally, order-independent. A
    // panicking worker (or an injected fault) surfaces as
    // `SaError::WorkerPanic` instead of aborting the process.
    if s_q > 0 && dv > 0 {
        let avg_live = (mask.nnz() / s_q).max(1);
        let grain_rows = pool::row_grain(avg_live * (d + dv));
        pool::try_parallel_for_rows(
            "sparse_flash_attention",
            output.as_mut_slice(),
            dv,
            grain_rows,
            |row0, chunk| {
                let mut scores_buf: Vec<f32> = Vec::new();
                let mut cols_buf: Vec<usize> = Vec::new();
                let mut chunk_pairs: u64 = 0;

                for (local_i, out_row) in chunk.chunks_mut(dv).enumerate() {
                    let i = row0 + local_i;
                    let Some(end) = mask.causal_end(i) else {
                        continue;
                    };
                    let win_start = mask.window_start(i);
                    let q_row = q.row(i);
                    let mut state = OnlineSoftmaxState::new(dv);

                    // Extra columns strictly below the window (sinks + stripes +
                    // diagonal keys).
                    cols_buf.clear();
                    cols_buf.extend(extras.iter().copied().take_while(|&c| c < win_start));
                    cols_buf.extend(mask.diagonal_keys(i));
                    if !cols_buf.is_empty() {
                        scores_buf.clear();
                        scores_buf.extend(cols_buf.iter().map(|&c| dot(q_row, k.row(c)) * scale));
                        let cols = &cols_buf;
                        online_softmax_update(&mut state, &scores_buf, |t| v.row(cols[t]));
                    }

                    // Contiguous local window win_start ..= end.
                    if win_start <= end {
                        scores_buf.clear();
                        scores_buf.extend((win_start..=end).map(|c| dot(q_row, k.row(c)) * scale));
                        online_softmax_update(&mut state, &scores_buf, |t| v.row(win_start + t));
                    }

                    chunk_pairs += (cols_buf.len() + (end + 1 - win_start)) as u64;
                    out_row.copy_from_slice(&state.finish());
                }
                live_pairs.fetch_add(chunk_pairs, Ordering::Relaxed);
            },
        )?;
    }
    let live_pairs = live_pairs.into_inner();

    // Fused single kernel: reads Q once, gathers the live K/V rows, and
    // writes O. K/V reads are shared across the KV_TILE_REUSE query rows
    // of a tile (stripe columns are global, so a tile loads each selected
    // K/V row once) — this is the paper's "savings in KV
    // memory-transfers".
    let flops = live_pairs * (2 * d as u64 + 4 + 2 * dv as u64);
    let kv_bytes = f32_bytes(live_pairs * (d + dv) as u64).div_ceil(KV_TILE_REUSE);
    let bytes_read = f32_bytes((s_q * d) as u64) + kv_bytes;
    let bytes_written = f32_bytes((s_q * dv) as u64);
    let cost = CostReport::launch(flops, bytes_read, bytes_written);

    Ok(AttentionOutput { output, cost })
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flash_attention, full_attention, masked_attention_dense, FlashParams};
    use sa_tensor::{max_abs_diff, DeterministicRng};

    fn random_qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
        )
    }

    #[test]
    fn dense_mask_reduces_to_flash() {
        let (q, k, v) = random_qkv(80, 8, 20);
        let mask = StructuredMask::dense_causal(80, 80);
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let flash = flash_attention(&q, &k, &v, true, FlashParams::default()).unwrap();
        assert!(max_abs_diff(sparse.output.as_slice(), flash.output.as_slice()) < 1e-4);
    }

    #[test]
    fn matches_dense_reference_on_structured_mask() {
        let (q, k, v) = random_qkv(60, 8, 21);
        let mask = StructuredMask::builder(60, 60)
            .window(6)
            .sinks(3)
            .columns(vec![10, 25, 40])
            .build()
            .unwrap();
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let reference = masked_attention_dense(&q, &k, &v, &mask.to_dense()).unwrap();
        assert!(max_abs_diff(sparse.output.as_slice(), reference.output.as_slice()) < 1e-4);
    }

    #[test]
    fn stripe_inside_window_not_double_counted() {
        let (q, k, v) = random_qkv(30, 4, 22);
        // Column 28 falls inside most rows' windows near the end.
        let mask = StructuredMask::builder(30, 30)
            .window(5)
            .columns(vec![28, 2])
            .build()
            .unwrap();
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let reference = masked_attention_dense(&q, &k, &v, &mask.to_dense()).unwrap();
        assert!(max_abs_diff(sparse.output.as_slice(), reference.output.as_slice()) < 1e-4);
    }

    #[test]
    fn zero_window_pure_stripes() {
        let (q, k, v) = random_qkv(20, 4, 23);
        let mask = StructuredMask::builder(20, 20)
            .window(0)
            .sinks(1)
            .columns(vec![5])
            .build()
            .unwrap();
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let reference = masked_attention_dense(&q, &k, &v, &mask.to_dense()).unwrap();
        assert!(max_abs_diff(sparse.output.as_slice(), reference.output.as_slice()) < 1e-4);
        // Row 0 sees nothing (window 0, no extras ≤ causal end except col 0 sink).
        // Actually sink column 0 is causally visible to row 0... window_start(0) = 1
        // with window 0, so col 0 is an extra below the window → live.
        assert!(sparse.output.row(0).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn fully_empty_mask_rows_are_zero() {
        let (q, k, v) = random_qkv(6, 4, 24);
        let mask = StructuredMask::builder(6, 6).window(0).build().unwrap();
        let out = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        assert!(out.output.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn rectangular_kv_longer_than_q() {
        let mut rng = DeterministicRng::new(25);
        let q = rng.normal_matrix(8, 4, 1.0);
        let k = rng.normal_matrix(24, 4, 1.0);
        let v = rng.normal_matrix(24, 4, 1.0);
        let mask = StructuredMask::builder(8, 24)
            .window(4)
            .sinks(2)
            .columns(vec![10])
            .build()
            .unwrap();
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let reference = masked_attention_dense(&q, &k, &v, &mask.to_dense()).unwrap();
        assert!(max_abs_diff(sparse.output.as_slice(), reference.output.as_slice()) < 1e-4);
    }

    #[test]
    fn cost_proportional_to_nnz() {
        let (q, k, v) = random_qkv(128, 8, 26);
        let sparse_mask = StructuredMask::builder(128, 128).window(8).build().unwrap();
        let dense_mask = StructuredMask::dense_causal(128, 128);
        let a = sparse_flash_attention(&q, &k, &v, &sparse_mask).unwrap();
        let b = sparse_flash_attention(&q, &k, &v, &dense_mask).unwrap();
        let flops_ratio = b.cost.flops as f64 / a.cost.flops as f64;
        let nnz_ratio = dense_mask.nnz() as f64 / sparse_mask.nnz() as f64;
        assert!((flops_ratio - nnz_ratio).abs() / nnz_ratio < 1e-9);
        assert!(a.cost.bytes_total() < b.cost.bytes_total());
    }

    #[test]
    fn near_lossless_with_high_density_mask() {
        // With a generous window the sparse output should be very close to
        // exact full attention even without stripes.
        let (q, k, v) = random_qkv(100, 8, 27);
        let mask = StructuredMask::builder(100, 100)
            .window(90)
            .sinks(4)
            .build()
            .unwrap();
        let sparse = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        // Not exactly equal (some entries dropped) but close in L1.
        let diff = sa_tensor::l1_distance(sparse.output.as_slice(), exact.output.as_slice())
            / exact.output.len() as f32;
        assert!(diff < 0.05, "mean L1 diff {diff}");
    }

    #[test]
    fn shape_validation() {
        let (q, k, v) = random_qkv(8, 4, 28);
        let mask = StructuredMask::dense_causal(9, 9);
        assert!(sparse_flash_attention(&q, &k, &v, &mask).is_err());
        let k_bad = Matrix::zeros(8, 5);
        let mask8 = StructuredMask::dense_causal(8, 8);
        assert!(sparse_flash_attention(&q, &k_bad, &v, &mask8).is_err());
        let v_bad = Matrix::zeros(7, 4);
        assert!(sparse_flash_attention(&q, &k, &v_bad, &mask8).is_err());
    }
}
