//! Tiled block-sparse FlashAttention over a [`TiledMask`].
//!
//! Same contract as [`sparse_flash_attention`](crate::sparse_flash_attention),
//! different loop order: instead of walking each query row's live
//! columns end to end, the kernel walks the block-CSR tile list. Each
//! `tile × tile` block loads its K rows once and scores them against
//! every query row of the tile while they are cache-hot — full tiles
//! through a maskless fused-multiply-add fast path, window tiles
//! through per-row contiguous spans, bitmap tiles bit by bit. Scattered
//! sink/stripe K and V rows are gathered once into contiguous
//! [`TilePack`] buffers shared by all workers.
//!
//! # Bitwise identity with the row-major kernel
//!
//! Online softmax is only split-invariant in exact arithmetic; in f32
//! the result depends on how the key set is partitioned into update
//! blocks. The row-major kernel folds each row in exactly two blocks:
//! the below-window columns (extras then diagonal keys), then the
//! contiguous window. This kernel therefore never feeds tiles to the
//! softmax directly. Tiles only *stage* scores into the same two
//! per-row segments, at the same positions; each score is the same
//! `dot(q_row, k_row) * scale` expression over bitwise-equal operands
//! (packing copies rows verbatim). Once all tiles of a query tile have
//! landed, the two [`online_softmax_update`] calls are replayed
//! verbatim per row. Per-row arithmetic is self-contained, so results
//! are identical at every `SA_THREADS` — a stronger form of the
//! row-major kernel's determinism argument.

use std::sync::atomic::{AtomicU64, Ordering};

use sa_tensor::{online_softmax_update, pool, Matrix, OnlineSoftmaxState, TensorError, TilePack};

use crate::cost::tiled_kernel_cost;
use crate::tile::{TileClass, TiledMask};
use crate::{score_scale, AttentionOutput};

/// Tiled structured-sparse causal attention.
///
/// Computes exactly `softmax(masked scores) V` for the mask underlying
/// `tiled`, bit-for-bit equal to
/// [`sparse_flash_attention`](crate::sparse_flash_attention) on the
/// same mask. Rows with no live entry produce zeros.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the Q/K/V shapes disagree
/// with each other or with the mask dimensions.
///
/// # Example
///
/// ```
/// use sa_tensor::DeterministicRng;
/// use sa_kernels::{
///     sparse_flash_attention, sparse_flash_attention_tiled, StructuredMask, TiledMask,
/// };
///
/// # fn main() -> Result<(), sa_kernels::KernelError> {
/// let mut rng = DeterministicRng::new(0);
/// let (q, k, v) = (
///     rng.normal_matrix(64, 8, 1.0),
///     rng.normal_matrix(64, 8, 1.0),
///     rng.normal_matrix(64, 8, 1.0),
/// );
/// let mask = StructuredMask::builder(64, 64)
///     .window(8)
///     .sinks(2)
///     .columns(vec![20, 33])
///     .build()?;
/// let tiled = TiledMask::build(mask.clone(), 16)?;
/// let a = sparse_flash_attention_tiled(&q, &k, &v, &tiled)?;
/// let b = sparse_flash_attention(&q, &k, &v, &mask)?;
/// assert_eq!(a.output.as_slice(), b.output.as_slice());
/// # Ok(())
/// # }
/// ```
pub fn sparse_flash_attention_tiled(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    tiled: &TiledMask,
) -> Result<AttentionOutput, TensorError> {
    let mask = tiled.mask();
    if q.cols() != k.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_flash_attention_tiled(q,k)",
            lhs: q.shape(),
            rhs: k.shape(),
        });
    }
    if k.rows() != v.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_flash_attention_tiled(k,v)",
            lhs: k.shape(),
            rhs: v.shape(),
        });
    }
    if mask.s_q() != q.rows() || mask.s_k() != k.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_flash_attention_tiled(mask)",
            lhs: (mask.s_q(), mask.s_k()),
            rhs: (q.rows(), k.rows()),
        });
    }

    let (s_q, d) = q.shape();
    let s_k = k.rows();
    let dv = v.cols();
    let tile = tiled.tile();
    let scale = score_scale(d);
    let extras = mask.extra_columns();

    // Scattered sink/stripe rows, gathered once into contiguous packs
    // shared read-only by every worker. Packed rows are byte copies, so
    // dot products over them match dots over the source rows exactly.
    let mut packed_k = TilePack::new();
    let mut packed_v = TilePack::new();
    packed_k.pack_rows(k, extras)?;
    packed_v.pack_rows(v, extras)?;

    let mut output = Matrix::zeros(s_q, dv);
    let live_pairs = AtomicU64::new(0);

    if s_q > 0 && dv > 0 {
        let avg_live = (mask.nnz() / s_q).max(1);
        // Same work-proportional grain as the row-major kernel, rounded
        // up to a whole number of query tiles so chunk boundaries (which
        // depend only on the workload, never the thread count) always
        // fall on tile edges.
        let grain_rows = pool::row_grain(avg_live * (d + dv)).div_ceil(tile) * tile;
        pool::try_parallel_for_rows(
            "sparse_flash_attention",
            output.as_mut_slice(),
            dv,
            grain_rows,
            |row0, chunk| {
                let mut scratch = QTileScratch::default();
                let mut chunk_pairs: u64 = 0;
                let chunk_rows = chunk.len() / dv;
                let qt0 = row0 / tile;
                let qt1 = (row0 + chunk_rows).div_ceil(tile);
                for qt in qt0..qt1 {
                    let r0 = qt * tile;
                    let r1 = (r0 + tile).min(row0 + chunk_rows);
                    scratch.stage(mask, r0, r1);

                    // Score every live tile into the staged segments.
                    for entry in tiled.entries_for(qt) {
                        let c0 = entry.key_tile * tile;
                        let c_end = (c0 + tile).min(s_k);
                        match &entry.class {
                            TileClass::Full => {
                                // Maskless fast path: every row scores the
                                // whole tile width, no occupancy checks.
                                for ri in 0..r1 - r0 {
                                    let q_row = q.row(r0 + ri);
                                    let base = scratch.b_off[ri] + (c0 - scratch.ws[ri]);
                                    let dst = &mut scratch.seg_b[base..base + (c_end - c0)];
                                    score_run(q_row, k, c0, dst, scale);
                                }
                            }
                            TileClass::Window { spans } => {
                                for (ri, &(lo, hi)) in spans.iter().enumerate() {
                                    if lo == hi {
                                        continue;
                                    }
                                    let q_row = q.row(r0 + ri);
                                    let j0 = c0 + lo as usize;
                                    let base = scratch.b_off[ri] + (j0 - scratch.ws[ri]);
                                    let dst = &mut scratch.seg_b[base..base + (hi - lo) as usize];
                                    score_run(q_row, k, j0, dst, scale);
                                }
                            }
                            TileClass::Bitmap { bits } => {
                                for (ri, &word) in bits.iter().enumerate() {
                                    if word == 0 {
                                        continue;
                                    }
                                    let q_row = q.row(r0 + ri);
                                    let ws = scratch.ws[ri];
                                    let mut bset = word;
                                    while bset != 0 {
                                        let t = bset.trailing_zeros() as usize;
                                        bset &= bset - 1;
                                        let j = c0 + t;
                                        if j >= ws {
                                            scratch.seg_b[scratch.b_off[ri] + (j - ws)] =
                                                dot(q_row, k.row(j)) * scale;
                                        } else if let Ok(rank) = extras.binary_search(&j) {
                                            scratch.seg_a[scratch.a_off[ri] + rank] =
                                                dot(q_row, packed_k.row(rank)) * scale;
                                        } else if let Some(pos) = scratch
                                            .diag_cols_for(ri)
                                            .iter()
                                            .position(|&c| c == j)
                                        {
                                            scratch.seg_a
                                                [scratch.a_off[ri] + scratch.p[ri] + pos] =
                                                dot(q_row, k.row(j)) * scale;
                                        }
                                    }
                                }
                            }
                        }
                    }

                    // Replay the row-major kernel's exact two-block
                    // online softmax per row over the staged scores.
                    for ri in 0..r1 - r0 {
                        let r = r0 + ri;
                        let Some(end) = scratch.end[ri] else {
                            continue;
                        };
                        let ws = scratch.ws[ri];
                        let p = scratch.p[ri];
                        let seg_a = &scratch.seg_a[scratch.a_off[ri]..scratch.a_off[ri + 1]];
                        let seg_b = &scratch.seg_b[scratch.b_off[ri]..scratch.b_off[ri + 1]];
                        let mut state = OnlineSoftmaxState::new(dv);
                        if !seg_a.is_empty() {
                            let diag_cols = scratch.diag_cols_for(ri);
                            online_softmax_update(&mut state, seg_a, |t| {
                                if t < p {
                                    packed_v.row(t)
                                } else {
                                    v.row(diag_cols[t - p])
                                }
                            });
                        }
                        if ws <= end {
                            online_softmax_update(&mut state, seg_b, |t| v.row(ws + t));
                        }
                        chunk_pairs += (seg_a.len() + seg_b.len()) as u64;
                        let o0 = (r - row0) * dv;
                        chunk[o0..o0 + dv].copy_from_slice(&state.finish());
                    }
                }
                live_pairs.fetch_add(chunk_pairs, Ordering::Relaxed);
            },
        )?;
    }
    let live_pairs = live_pairs.into_inner();

    let cost = tiled_kernel_cost(
        s_q,
        d,
        dv,
        live_pairs,
        extras.len() as u64,
        &tiled.traffic(),
    );
    Ok(AttentionOutput { output, cost })
}

/// Per-query-tile staging state: for each row of the tile, the two
/// score segments the row-major kernel would build (`seg_a` = extras
/// then diagonal keys, `seg_b` = the contiguous window), stored flat
/// with per-row offsets, plus the row geometry needed to place tile
/// scores into them. Reused across the query tiles of a chunk.
#[derive(Default)]
struct QTileScratch {
    end: Vec<Option<usize>>,
    ws: Vec<usize>,
    /// Extras rank boundary: extras `0..p[ri]` lie below row `ri`'s window.
    p: Vec<usize>,
    a_off: Vec<usize>,
    b_off: Vec<usize>,
    diag_off: Vec<usize>,
    diag_cols: Vec<usize>,
    seg_a: Vec<f32>,
    seg_b: Vec<f32>,
}

impl QTileScratch {
    /// Computes row geometry and segment offsets for rows `r0..r1` and
    /// ensures the segment buffers are large enough. Every staged slot
    /// corresponds to exactly one live mask entry, so every slot is
    /// overwritten by exactly one tile before the softmax replay reads
    /// it.
    fn stage(&mut self, mask: &crate::StructuredMask, r0: usize, r1: usize) {
        let extras = mask.extra_columns();
        self.end.clear();
        self.ws.clear();
        self.p.clear();
        self.a_off.clear();
        self.b_off.clear();
        self.diag_off.clear();
        self.diag_cols.clear();
        self.a_off.push(0);
        self.b_off.push(0);
        self.diag_off.push(0);
        let (mut a_total, mut b_total) = (0usize, 0usize);
        for r in r0..r1 {
            match mask.causal_end(r) {
                None => {
                    self.end.push(None);
                    self.ws.push(0);
                    self.p.push(0);
                }
                Some(end) => {
                    let ws = mask.window_start(r);
                    let p = extras.partition_point(|&c| c < ws);
                    let diags = mask.diagonal_keys(r);
                    a_total += p + diags.len();
                    self.diag_cols.extend(diags);
                    if ws <= end {
                        b_total += end + 1 - ws;
                    }
                    self.end.push(Some(end));
                    self.ws.push(ws);
                    self.p.push(p);
                }
            }
            self.a_off.push(a_total);
            self.b_off.push(b_total);
            self.diag_off.push(self.diag_cols.len());
        }
        // Grow-only, never zeroed: every staged slot maps to exactly one
        // live mask entry, so exactly one tile writes it before the
        // replay reads it — stale values from earlier query tiles are
        // unreachable. Zero-filling here would add an O(nnz) memset per
        // forward pass for nothing.
        if self.seg_a.len() < a_total {
            self.seg_a.resize(a_total, 0.0);
        }
        if self.seg_b.len() < b_total {
            self.seg_b.resize(b_total, 0.0);
        }
    }

    /// Row `ri`'s diagonal key columns, delta-ascending.
    #[inline]
    fn diag_cols_for(&self, ri: usize) -> &[usize] {
        &self.diag_cols[self.diag_off[ri]..self.diag_off[ri + 1]]
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Scores a contiguous run of key rows `j0..j0 + dst.len()` against one
/// query row, eight columns at a time.
///
/// Each column's dot product is still the strict index-order sum
/// `((q0*k0) + q1*k1) + …` — bitwise-identical to [`dot`] — but the
/// eight accumulator chains are independent, so the CPU overlaps them
/// instead of serialising on f32 add latency. This is the tiled
/// kernel's branch-free fast path: contiguous runs (full tiles, window
/// spans) are known maskless up front, which is what makes batching
/// columns possible at all — the row-major kernel discovers its columns
/// one at a time.
#[inline]
fn score_run(q_row: &[f32], k: &Matrix, j0: usize, dst: &mut [f32], scale: f32) {
    let mut t = 0;
    while t + 8 <= dst.len() {
        let r = |i: usize| k.row(j0 + t + i);
        let (k0, k1, k2, k3) = (r(0), r(1), r(2), r(3));
        let (k4, k5, k6, k7) = (r(4), r(5), r(6), r(7));
        let mut acc = [0.0f32; 8];
        for (i, &x) in q_row.iter().enumerate() {
            acc[0] += x * k0[i];
            acc[1] += x * k1[i];
            acc[2] += x * k2[i];
            acc[3] += x * k3[i];
            acc[4] += x * k4[i];
            acc[5] += x * k5[i];
            acc[6] += x * k6[i];
            acc[7] += x * k7[i];
        }
        for (i, &s) in acc.iter().enumerate() {
            dst[t + i] = s * scale;
        }
        t += 8;
    }
    for slot in &mut dst[t..] {
        *slot = dot(q_row, k.row(j0 + t)) * scale;
        t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sparse_flash_attention, StructuredMask};
    use sa_tensor::DeterministicRng;

    fn random_qkv(s_q: usize, s_k: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (
            rng.normal_matrix(s_q, d, 1.0),
            rng.normal_matrix(s_k, d, 1.0),
            rng.normal_matrix(s_k, d, 1.0),
        )
    }

    fn assert_bitwise(mask: &StructuredMask, tile: usize, seed: u64) {
        let (q, k, v) = random_qkv(mask.s_q(), mask.s_k(), 8, seed);
        let tiled = TiledMask::build(mask.clone(), tile).unwrap();
        let a = sparse_flash_attention_tiled(&q, &k, &v, &tiled).unwrap();
        let b = sparse_flash_attention(&q, &k, &v, mask).unwrap();
        let ab: Vec<u32> = a.output.as_slice().iter().map(|x| x.to_bits()).collect();
        let bb: Vec<u32> = b.output.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(ab, bb, "tile={tile} not bitwise identical");
        assert_eq!(a.cost.flops, b.cost.flops, "live-pair tallies diverged");
    }

    #[test]
    fn bitwise_identical_on_mixed_mask() {
        let mask = StructuredMask::builder(70, 70)
            .window(9)
            .sinks(3)
            .columns(vec![17, 31, 44])
            .dense_tail_rows(5)
            .diagonals(vec![13])
            .build()
            .unwrap();
        for tile in [1, 7, 16, 64] {
            assert_bitwise(&mask, tile, 42);
        }
    }

    #[test]
    fn bitwise_identical_dense_causal() {
        assert_bitwise(&StructuredMask::dense_causal(65, 65), 16, 1);
    }

    #[test]
    fn bitwise_identical_rectangular() {
        let mask = StructuredMask::builder(24, 50)
            .window(6)
            .sinks(2)
            .columns(vec![11])
            .build()
            .unwrap();
        assert_bitwise(&mask, 8, 2);
        let tall = StructuredMask::builder(40, 12).window(4).build().unwrap();
        assert_bitwise(&tall, 8, 3);
    }

    #[test]
    fn bitwise_identical_under_thread_overrides() {
        let mask = StructuredMask::builder(96, 96)
            .window(11)
            .sinks(2)
            .columns(vec![23, 59])
            .diagonals(vec![7])
            .build()
            .unwrap();
        let (q, k, v) = random_qkv(96, 96, 8, 9);
        let tiled = TiledMask::build(mask.clone(), 16).unwrap();
        let baseline = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        for threads in [1, 2, 3, 5] {
            let out = pool::with_threads(threads, || {
                sparse_flash_attention_tiled(&q, &k, &v, &tiled)
            })
            .unwrap();
            assert_eq!(
                out.output.as_slice(),
                baseline.output.as_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_rows_stay_zero() {
        let mask = StructuredMask::builder(12, 4).window(2).build().unwrap();
        let (q, k, v) = random_qkv(12, 4, 4, 11);
        let tiled = TiledMask::build(mask.clone(), 4).unwrap();
        let out = sparse_flash_attention_tiled(&q, &k, &v, &tiled).unwrap();
        for i in 0..8 {
            assert!(out.output.row(i).iter().all(|&x| x == 0.0), "row {i}");
        }
        assert_bitwise(&mask, 4, 11);
    }

    #[test]
    fn shape_validation() {
        let (q, k, v) = random_qkv(8, 8, 4, 12);
        let tiled9 = TiledMask::build(StructuredMask::dense_causal(9, 9), 4).unwrap();
        assert!(sparse_flash_attention_tiled(&q, &k, &v, &tiled9).is_err());
        let tiled8 = TiledMask::build(StructuredMask::dense_causal(8, 8), 4).unwrap();
        let k_bad = Matrix::zeros(8, 5);
        assert!(sparse_flash_attention_tiled(&q, &k_bad, &v, &tiled8).is_err());
        let v_bad = Matrix::zeros(7, 4);
        assert!(sparse_flash_attention_tiled(&q, &k, &v_bad, &tiled8).is_err());
    }

    #[test]
    fn cost_counts_tile_metadata() {
        let mask = StructuredMask::builder(64, 64)
            .window(8)
            .sinks(2)
            .build()
            .unwrap();
        let (q, k, v) = random_qkv(64, 64, 8, 13);
        let tiled = TiledMask::build(mask.clone(), 16).unwrap();
        let t = sparse_flash_attention_tiled(&q, &k, &v, &tiled).unwrap();
        let r = sparse_flash_attention(&q, &k, &v, &mask).unwrap();
        assert_eq!(t.cost.flops, r.cost.flops);
        assert_eq!(t.cost.kernel_launches, 1);
        assert!(t.cost.bytes_read > 0 && t.cost.bytes_written > 0);
    }
}
