//! FlashAttention-style blocked kernel.
//!
//! Processes the score matrix in `Br x Bc` tiles with an online softmax, so
//! the full `S_q x S_k` matrix is never materialised. This is the paper's
//! dense baseline (FlashAttention2 in §5.4) and the template the sparse
//! kernel modifies.
//!
//! Exactness: the online softmax recurrence is algebraically identical to
//! the two-pass softmax, so outputs match [`crate::full_attention`] to
//! floating-point round-off.

use std::sync::atomic::{AtomicU64, Ordering};

use sa_tensor::{matmul_transb, pool, Matrix, OnlineSoftmaxState, TensorError};

use crate::cost::f32_bytes;
use crate::full::causal_pairs;
use crate::{score_scale, AttentionOutput, CostReport};

/// Tile sizes for the blocked kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashParams {
    /// Query-block rows (`Br`).
    pub block_rows: usize,
    /// Key-block columns (`Bc`).
    pub block_cols: usize,
}

impl Default for FlashParams {
    fn default() -> Self {
        FlashParams {
            block_rows: 64,
            block_cols: 64,
        }
    }
}

/// FlashAttention-style causal attention.
///
/// Computes `softmax(Q K^T / sqrt(d)) V` tile by tile with online softmax;
/// O(S) auxiliary memory.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent Q/K/V shapes or
/// [`TensorError::InvalidDimension`] for zero tile sizes.
///
/// # Example
///
/// ```
/// use sa_tensor::DeterministicRng;
/// use sa_kernels::{flash_attention, full_attention, FlashParams};
///
/// # fn main() -> Result<(), sa_kernels::KernelError> {
/// let mut rng = DeterministicRng::new(0);
/// let (q, k, v) = (
///     rng.normal_matrix(100, 16, 1.0),
///     rng.normal_matrix(100, 16, 1.0),
///     rng.normal_matrix(100, 16, 1.0),
/// );
/// let flash = flash_attention(&q, &k, &v, true, FlashParams::default())?;
/// let exact = full_attention(&q, &k, &v, true)?;
/// let diff = flash
///     .output
///     .as_slice()
///     .iter()
///     .zip(exact.output.as_slice())
///     .map(|(a, b)| (a - b).abs())
///     .fold(0.0f32, f32::max);
/// assert!(diff < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn flash_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    causal: bool,
    params: FlashParams,
) -> Result<AttentionOutput, TensorError> {
    if q.cols() != k.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "flash_attention(q,k)",
            lhs: q.shape(),
            rhs: k.shape(),
        });
    }
    if k.rows() != v.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "flash_attention(k,v)",
            lhs: k.shape(),
            rhs: v.shape(),
        });
    }
    if params.block_rows == 0 || params.block_cols == 0 {
        return Err(TensorError::InvalidDimension {
            op: "flash_attention",
            what: "tile sizes must be nonzero".to_string(),
        });
    }

    let (s_q, d) = q.shape();
    let s_k = k.rows();
    let dv = v.cols();
    let scale = score_scale(d);
    let off = s_k as isize - s_q as isize;

    let mut output = Matrix::zeros(s_q, dv);
    let kv_block_reads = AtomicU64::new(0);

    // Query blocks are independent, so they run as chunks on the worker
    // pool. Bit-determinism: the chunk grain is rounded to a multiple of
    // `block_rows`, so every worker sees the same query-block grid as the
    // serial loop. Within a block, key-tile boundaries are multiples of
    // `block_cols` (only the final, causally clamped tile varies with the
    // block end), and the online softmax skips `-inf` entries, so each
    // row folds exactly the same live-score segments in the same order
    // regardless of which q-block — or thread — processes it.
    // `kv_block_reads` is an integer tally, order-independent by nature.
    if s_q > 0 && dv > 0 && s_k > 0 {
        let grain_rows = pool::row_grain(s_k * (d + dv))
            .div_ceil(params.block_rows)
            * params.block_rows;
        pool::try_parallel_for_rows("flash_attention", output.as_mut_slice(), dv, grain_rows, |row0, chunk| {
            // row0 is a multiple of grain_rows, hence of block_rows: the
            // chunk starts on a global q-block boundary.
            let chunk_rows = chunk.len() / dv;
            for q0 in (row0..row0 + chunk_rows).step_by(params.block_rows) {
                let q1 = (q0 + params.block_rows).min(row0 + chunk_rows);
                let q_block = q.slice_rows(q0, q1).expect("q block in range");
                let mut states: Vec<OnlineSoftmaxState> =
                    (q0..q1).map(|_| OnlineSoftmaxState::new(dv)).collect();

                // Last key this query block can causally see.
                let block_key_end = if causal {
                    let e = (q1 - 1) as isize + off;
                    if e < 0 {
                        // Entire block is fully masked.
                        continue;
                    }
                    (e as usize).min(s_k - 1)
                } else {
                    s_k - 1
                };

                for k0 in (0..=block_key_end).step_by(params.block_cols) {
                    let k1 = (k0 + params.block_cols).min(block_key_end + 1);
                    let k_block = k.slice_rows(k0, k1).expect("k block in range");
                    kv_block_reads
                        .fetch_add(((k1 - k0) * (d + dv)) as u64, Ordering::Relaxed);

                    // Br x Bc raw scores for this tile.
                    let mut scores =
                        matmul_transb(&q_block, &k_block).expect("tile shapes agree");
                    scores.scale_in_place(scale);
                    if causal {
                        for (local_i, i) in (q0..q1).enumerate() {
                            let end = i as isize + off;
                            let row = scores.row_mut(local_i);
                            for (local_j, x) in row.iter_mut().enumerate() {
                                let j = (k0 + local_j) as isize;
                                if j > end {
                                    *x = f32::NEG_INFINITY;
                                }
                            }
                        }
                    }
                    for (local_i, state) in states.iter_mut().enumerate() {
                        sa_tensor::online_softmax_update(state, scores.row(local_i), |t| {
                            v.row(k0 + t)
                        });
                    }
                }

                for (local_i, state) in states.into_iter().enumerate() {
                    let at = (q0 - row0 + local_i) * dv;
                    chunk[at..at + dv].copy_from_slice(&state.finish());
                }
            }
        })?;
    }
    let kv_block_reads = kv_block_reads.into_inner();

    let pairs = if causal {
        causal_pairs(s_q, s_k)
    } else {
        (s_q * s_k) as u64
    };
    // Same arithmetic as full attention but fused into a single kernel:
    // no score-matrix traffic; K/V tiles are re-read once per query block.
    let flops = pairs * (2 * d as u64 + 4 + 2 * dv as u64);
    let bytes_read = f32_bytes((s_q * d) as u64) + f32_bytes(kv_block_reads);
    let bytes_written = f32_bytes((s_q * dv) as u64);
    let cost = CostReport::launch(flops, bytes_read, bytes_written);

    Ok(AttentionOutput { output, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_attention;
    use sa_tensor::{max_abs_diff, DeterministicRng};

    fn random_qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
        )
    }

    #[test]
    fn matches_full_attention_causal() {
        let (q, k, v) = random_qkv(97, 16, 7);
        let flash = flash_attention(&q, &k, &v, true, FlashParams { block_rows: 16, block_cols: 16 }).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 1e-4);
    }

    #[test]
    fn matches_full_attention_non_causal() {
        let (q, k, v) = random_qkv(50, 8, 8);
        let flash = flash_attention(&q, &k, &v, false, FlashParams { block_rows: 7, block_cols: 13 }).unwrap();
        let exact = full_attention(&q, &k, &v, false).unwrap();
        assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 1e-4);
    }

    #[test]
    fn tile_size_invariance() {
        let (q, k, v) = random_qkv(65, 8, 9);
        let a = flash_attention(&q, &k, &v, true, FlashParams { block_rows: 64, block_cols: 64 }).unwrap();
        let b = flash_attention(&q, &k, &v, true, FlashParams { block_rows: 1, block_cols: 3 }).unwrap();
        assert!(max_abs_diff(a.output.as_slice(), b.output.as_slice()) < 1e-4);
    }

    #[test]
    fn rectangular_decode_shape() {
        // Decode-like: 1 query against a long KV.
        let mut rng = DeterministicRng::new(10);
        let q = rng.normal_matrix(1, 8, 1.0);
        let k = rng.normal_matrix(40, 8, 1.0);
        let v = rng.normal_matrix(40, 8, 1.0);
        let flash = flash_attention(&q, &k, &v, true, FlashParams::default()).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 1e-4);
    }

    #[test]
    fn fully_masked_rows_zero() {
        // q longer than k: early query rows see no keys.
        let mut rng = DeterministicRng::new(11);
        let q = rng.normal_matrix(5, 4, 1.0);
        let k = rng.normal_matrix(2, 4, 1.0);
        let v = rng.normal_matrix(2, 4, 1.0);
        let flash = flash_attention(&q, &k, &v, true, FlashParams { block_rows: 2, block_cols: 2 }).unwrap();
        for i in 0..3 {
            assert!(flash.output.row(i).iter().all(|&x| x == 0.0), "row {i}");
        }
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(flash.output.as_slice(), exact.output.as_slice()) < 1e-4);
    }

    #[test]
    fn invalid_params_rejected() {
        let (q, k, v) = random_qkv(4, 4, 12);
        assert!(flash_attention(&q, &k, &v, true, FlashParams { block_rows: 0, block_cols: 4 }).is_err());
        assert!(flash_attention(&q, &k, &v, true, FlashParams { block_rows: 4, block_cols: 0 }).is_err());
    }

    #[test]
    fn flash_cost_has_no_score_traffic() {
        let (q, k, v) = random_qkv(128, 16, 13);
        let flash = flash_attention(&q, &k, &v, true, FlashParams::default()).unwrap();
        let full = full_attention(&q, &k, &v, true).unwrap();
        assert_eq!(flash.cost.flops, full.cost.flops);
        assert!(flash.cost.bytes_total() < full.cost.bytes_total());
        assert_eq!(flash.cost.kernel_launches, 1);
    }

    #[test]
    fn empty_kv() {
        let q = Matrix::zeros(3, 4);
        let k = Matrix::zeros(0, 4);
        let v = Matrix::zeros(0, 4);
        let out = flash_attention(&q, &k, &v, true, FlashParams::default()).unwrap();
        assert!(out.output.as_slice().iter().all(|&x| x == 0.0));
    }
}
