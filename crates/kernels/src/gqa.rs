//! Grouped-query attention (GQA) head mapping.
//!
//! Both backbones use GQA: several query heads share one key/value head.
//! This module provides the index arithmetic (which KV head serves which
//! query head) that `sa-model` uses when assembling per-head Q/K/V, and
//! that the perf model uses to count KV bytes correctly (GQA reduces KV
//! traffic by the group factor).

use sa_tensor::TensorError;

/// A grouped-query attention layout: `num_q_heads` query heads sharing
/// `num_kv_heads` key/value heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GqaLayout {
    num_q_heads: usize,
    num_kv_heads: usize,
}

impl GqaLayout {
    /// Creates a layout.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] unless
    /// `num_q_heads` is a positive multiple of `num_kv_heads`.
    pub fn new(num_q_heads: usize, num_kv_heads: usize) -> Result<Self, TensorError> {
        if num_q_heads == 0 || num_kv_heads == 0 || !num_q_heads.is_multiple_of(num_kv_heads) {
            return Err(TensorError::InvalidDimension {
                op: "GqaLayout::new",
                what: format!(
                    "num_q_heads ({num_q_heads}) must be a positive multiple of num_kv_heads ({num_kv_heads})"
                ),
            });
        }
        Ok(GqaLayout {
            num_q_heads,
            num_kv_heads,
        })
    }

    /// Multi-head attention layout (one KV head per query head).
    pub fn mha(num_heads: usize) -> Result<Self, TensorError> {
        Self::new(num_heads, num_heads)
    }

    /// Number of query heads.
    pub fn num_q_heads(&self) -> usize {
        self.num_q_heads
    }

    /// Number of key/value heads.
    pub fn num_kv_heads(&self) -> usize {
        self.num_kv_heads
    }

    /// Query heads per KV head (the GQA group size).
    pub fn group_size(&self) -> usize {
        self.num_q_heads / self.num_kv_heads
    }

    /// The KV head serving query head `q_head`.
    ///
    /// # Panics
    ///
    /// Panics if `q_head >= num_q_heads`.
    pub fn kv_head_for(&self, q_head: usize) -> usize {
        assert!(
            q_head < self.num_q_heads,
            "query head {q_head} out of range (< {})",
            self.num_q_heads
        );
        q_head / self.group_size()
    }

    /// Iterator over `(q_head, kv_head)` pairs.
    pub fn head_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_q_heads).map(move |q| (q, self.kv_head_for(q)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_layouts() {
        let g = GqaLayout::new(32, 8).unwrap();
        assert_eq!(g.group_size(), 4);
        assert_eq!(g.kv_head_for(0), 0);
        assert_eq!(g.kv_head_for(3), 0);
        assert_eq!(g.kv_head_for(4), 1);
        assert_eq!(g.kv_head_for(31), 7);
    }

    #[test]
    fn mha_is_identity_mapping() {
        let g = GqaLayout::mha(4).unwrap();
        for q in 0..4 {
            assert_eq!(g.kv_head_for(q), q);
        }
        assert_eq!(g.group_size(), 1);
    }

    #[test]
    fn mqa_single_kv_head() {
        let g = GqaLayout::new(8, 1).unwrap();
        assert!(g.head_pairs().all(|(_, kv)| kv == 0));
    }

    #[test]
    fn invalid_layouts_rejected() {
        assert!(GqaLayout::new(0, 1).is_err());
        assert!(GqaLayout::new(4, 0).is_err());
        assert!(GqaLayout::new(6, 4).is_err());
    }

    #[test]
    fn head_pairs_cover_all_heads() {
        let g = GqaLayout::new(8, 2).unwrap();
        let pairs: Vec<_> = g.head_pairs().collect();
        assert_eq!(pairs.len(), 8);
        assert_eq!(pairs[0], (0, 0));
        assert_eq!(pairs[7], (7, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kv_head_for_out_of_range() {
        let g = GqaLayout::new(4, 2).unwrap();
        let _ = g.kv_head_for(4);
    }
}
