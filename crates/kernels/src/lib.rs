//! # sa-kernels
//!
//! Attention kernels for the SampleAttention reproduction.
//!
//! Three kernels cover the space the paper benchmarks:
//!
//! - [`full_attention`] — the naive reference: materialises the full
//!   `S_q x S_k` score matrix `P = softmax(Q K^T / sqrt(d))` (PyTorch
//!   "SDPA" in the paper's benchmarks). Exact but O(S²) memory.
//! - [`flash_attention`] — a FlashAttention-style blocked kernel with
//!   online softmax: exact output, O(S) memory, the paper's dense
//!   baseline.
//! - [`sparse_flash_attention`] — the block-sparse kernel consuming a
//!   [`StructuredMask`] (local window + attention sinks + column stripes),
//!   the execution engine of SampleAttention and of the structured
//!   baselines.
//!
//! Every kernel reports a [`CostReport`] with exact FLOP and byte counts so
//! the `sa-perf` roofline model can translate algorithmic work into A100
//! latency.
//!
//! The crate also provides [`rope::apply_rope`] rotary position embeddings
//! and [`gqa`] grouped-query-attention head mapping, which the synthetic
//! transformer substrate (`sa-model`) uses to mirror the ChatGLM2 /
//! InternLM2 architectures.

mod cost;
mod flash;
mod full;
pub mod gqa;
mod mask;
pub mod rope;
mod sparse_flash;
mod sparse_tiled;
mod tile;

pub use cost::{tiled_kernel_cost, CostReport};
pub use flash::{flash_attention, FlashParams};
pub use full::{
    attention_probs, attention_scores_raw, causal_pairs, full_attention, masked_attention_dense,
    AttentionOutput,
};
pub use mask::{DenseMask, StructuredMask, StructuredMaskBuilder};
pub use sparse_flash::sparse_flash_attention;
pub use sparse_tiled::sparse_flash_attention_tiled;
pub use tile::{TileClass, TileEntry, TileTraffic, TiledMask, MAX_TILE};

/// Scale factor `1 / sqrt(d)` applied to raw scores, as in Eq. (1).
#[inline]
pub fn score_scale(d: usize) -> f32 {
    1.0 / (d as f32).sqrt()
}

/// Kernel-level error type (re-exported tensor errors plus mask/shape
/// validation).
pub type KernelError = sa_tensor::TensorError;
