//! Rotary position embeddings (RoPE).
//!
//! Both backbone models in the paper (ChatGLM2, InternLM2) use rotary
//! positional encoding; the synthetic transformer substrate applies the
//! same transform so positional structure (local windows, long-range
//! stripes) interacts with attention scores the way it does in the real
//! models. Supports the linear "rope scaling" used by InternLM2-style
//! length extrapolation.

use sa_tensor::{Matrix, TensorError};

/// RoPE configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RopeConfig {
    /// Base for the inverse-frequency geometric series (10000.0 in the
    /// original RoFormer and both backbones).
    pub base: f32,
    /// Linear position scaling factor (1.0 = none; >1 stretches positions,
    /// the "rope scaling" extrapolation trick).
    pub scaling: f32,
}

impl Default for RopeConfig {
    fn default() -> Self {
        RopeConfig {
            base: 10_000.0,
            scaling: 1.0,
        }
    }
}

/// Applies rotary embeddings in place to an `(S, d)` matrix whose row `i`
/// is the vector at absolute position `position_offset + i`.
///
/// Pairs dimensions `(2t, 2t+1)` and rotates each by
/// `theta_t = (pos / scaling) * base^(-2t/d)`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] if `d` is odd or the scaling
/// is not positive.
pub fn apply_rope(
    x: &mut Matrix,
    position_offset: usize,
    config: RopeConfig,
) -> Result<(), TensorError> {
    let d = x.cols();
    if !d.is_multiple_of(2) {
        return Err(TensorError::InvalidDimension {
            op: "apply_rope",
            what: format!("head dimension must be even, got {d}"),
        });
    }
    if !(config.scaling > 0.0) || !(config.base > 0.0) {
        return Err(TensorError::InvalidDimension {
            op: "apply_rope",
            what: format!(
                "base and scaling must be positive (base={}, scaling={})",
                config.base, config.scaling
            ),
        });
    }
    let half = d / 2;
    let inv_freq: Vec<f32> = (0..half)
        .map(|t| config.base.powf(-2.0 * t as f32 / d as f32))
        .collect();
    for i in 0..x.rows() {
        let pos = (position_offset + i) as f32 / config.scaling;
        let row = x.row_mut(i);
        for t in 0..half {
            let theta = pos * inv_freq[t];
            let (sin, cos) = theta.sin_cos();
            let a = row[2 * t];
            let b = row[2 * t + 1];
            row[2 * t] = a * cos - b * sin;
            row[2 * t + 1] = a * sin + b * cos;
        }
    }
    Ok(())
}

/// Applies rotary embeddings to only the first `rotary_dims` columns of
/// `x` (partial rotary, as in ChatGLM's 2D-RoPE): dimensions beyond
/// `rotary_dims` pass through untouched, so content carried there matches
/// position-independently.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] if `rotary_dims` is odd,
/// exceeds `x.cols()`, or the config is invalid.
pub fn apply_rope_partial(
    x: &mut Matrix,
    rotary_dims: usize,
    position_offset: usize,
    config: RopeConfig,
) -> Result<(), TensorError> {
    if rotary_dims > x.cols() {
        return Err(TensorError::InvalidDimension {
            op: "apply_rope_partial",
            what: format!(
                "rotary_dims {rotary_dims} exceeds matrix width {}",
                x.cols()
            ),
        });
    }
    if !rotary_dims.is_multiple_of(2) {
        return Err(TensorError::InvalidDimension {
            op: "apply_rope_partial",
            what: format!("rotary_dims must be even, got {rotary_dims}"),
        });
    }
    if rotary_dims == 0 {
        return Ok(());
    }
    if !(config.scaling > 0.0) || !(config.base > 0.0) {
        return Err(TensorError::InvalidDimension {
            op: "apply_rope_partial",
            what: format!(
                "base and scaling must be positive (base={}, scaling={})",
                config.base, config.scaling
            ),
        });
    }
    let half = rotary_dims / 2;
    let inv_freq: Vec<f32> = (0..half)
        .map(|t| config.base.powf(-2.0 * t as f32 / rotary_dims as f32))
        .collect();
    for i in 0..x.rows() {
        let pos = (position_offset + i) as f32 / config.scaling;
        let row = x.row_mut(i);
        for t in 0..half {
            let theta = pos * inv_freq[t];
            let (sin, cos) = theta.sin_cos();
            let a = row[2 * t];
            let b = row[2 * t + 1];
            row[2 * t] = a * cos - b * sin;
            row[2 * t + 1] = a * sin + b * cos;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::{matmul_transb, DeterministicRng};

    #[test]
    fn position_zero_is_identity() {
        let mut rng = DeterministicRng::new(1);
        let orig = rng.normal_matrix(1, 8, 1.0);
        let mut x = orig.clone();
        apply_rope(&mut x, 0, RopeConfig::default()).unwrap();
        for (a, b) in x.as_slice().iter().zip(orig.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let mut rng = DeterministicRng::new(2);
        let orig = rng.normal_matrix(10, 16, 1.0);
        let mut x = orig.clone();
        apply_rope(&mut x, 100, RopeConfig::default()).unwrap();
        for i in 0..10 {
            let n0: f32 = orig.row(i).iter().map(|v| v * v).sum();
            let n1: f32 = x.row(i).iter().map(|v| v * v).sum();
            assert!((n0 - n1).abs() < 1e-3, "row {i}: {n0} vs {n1}");
        }
    }

    #[test]
    fn dot_products_depend_only_on_relative_position() {
        // The defining property of RoPE: <R_m q, R_n k> depends on (m - n).
        let mut rng = DeterministicRng::new(3);
        let q = rng.normal_matrix(1, 8, 1.0);
        let k = rng.normal_matrix(1, 8, 1.0);
        let cfg = RopeConfig::default();

        let score = |m: usize, n: usize| {
            let mut qr = q.clone();
            let mut kr = k.clone();
            apply_rope(&mut qr, m, cfg).unwrap();
            apply_rope(&mut kr, n, cfg).unwrap();
            matmul_transb(&qr, &kr).unwrap().get(0, 0)
        };
        let a = score(5, 2);
        let b = score(105, 102);
        assert!((a - b).abs() < 1e-2, "{a} vs {b}");
    }

    #[test]
    fn scaling_compresses_rotation() {
        // With scaling = 2, position 10 rotates like position 5 unscaled.
        let mut rng = DeterministicRng::new(4);
        let base = rng.normal_matrix(1, 8, 1.0);
        let mut scaled = base.clone();
        apply_rope(
            &mut scaled,
            10,
            RopeConfig {
                scaling: 2.0,
                ..RopeConfig::default()
            },
        )
        .unwrap();
        let mut unscaled = base.clone();
        apply_rope(&mut unscaled, 5, RopeConfig::default()).unwrap();
        for (a, b) in scaled.as_slice().iter().zip(unscaled.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn position_offset_matches_absolute() {
        let mut rng = DeterministicRng::new(5);
        let block = rng.normal_matrix(4, 8, 1.0);
        // Apply as one block at offset 0 vs two blocks at offsets 0 and 2.
        let mut whole = block.clone();
        apply_rope(&mut whole, 0, RopeConfig::default()).unwrap();
        let mut first = block.slice_rows(0, 2).unwrap();
        let mut second = block.slice_rows(2, 4).unwrap();
        apply_rope(&mut first, 0, RopeConfig::default()).unwrap();
        apply_rope(&mut second, 2, RopeConfig::default()).unwrap();
        for j in 0..8 {
            assert!((whole.get(2, j) - second.get(0, j)).abs() < 1e-5);
            assert!((whole.get(0, j) - first.get(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn partial_rope_leaves_tail_untouched() {
        let mut rng = DeterministicRng::new(6);
        let orig = rng.normal_matrix(5, 12, 1.0);
        let mut x = orig.clone();
        apply_rope_partial(&mut x, 6, 40, RopeConfig::default()).unwrap();
        for i in 0..5 {
            // rotated head changed (position 40+ is far from identity)
            assert!(x.row(i)[..6] != orig.row(i)[..6]);
            // tail identical
            assert_eq!(&x.row(i)[6..], &orig.row(i)[6..]);
        }
    }

    #[test]
    fn partial_rope_full_width_matches_apply_rope() {
        let mut rng = DeterministicRng::new(7);
        let orig = rng.normal_matrix(3, 8, 1.0);
        let mut a = orig.clone();
        let mut b = orig;
        apply_rope(&mut a, 11, RopeConfig::default()).unwrap();
        apply_rope_partial(&mut b, 8, 11, RopeConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn partial_rope_validation() {
        let mut x = Matrix::zeros(2, 8);
        assert!(apply_rope_partial(&mut x, 10, 0, RopeConfig::default()).is_err());
        assert!(apply_rope_partial(&mut x, 3, 0, RopeConfig::default()).is_err());
        assert!(apply_rope_partial(&mut x, 0, 0, RopeConfig::default()).is_ok());
    }

    #[test]
    fn odd_dimension_rejected() {
        let mut x = Matrix::zeros(2, 7);
        assert!(apply_rope(&mut x, 0, RopeConfig::default()).is_err());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut x = Matrix::zeros(2, 8);
        assert!(apply_rope(&mut x, 0, RopeConfig { base: 10_000.0, scaling: 0.0 }).is_err());
        assert!(apply_rope(&mut x, 0, RopeConfig { base: -1.0, scaling: 1.0 }).is_err());
    }
}
