//! Naive full attention: the exact reference kernel.
//!
//! Materialises the full score matrix, so memory is O(S_q · S_k). This is
//! the "SDPA" baseline of the paper's §5.4 micro-benchmarks and the gold
//! standard every sparse method is compared against.

use sa_tensor::{matmul, matmul_transb, softmax_rows_in_place, Matrix, TensorError};

use crate::cost::f32_bytes;
use crate::{score_scale, CostReport, DenseMask};

/// Result of an attention kernel: the output matrix plus the exact
/// algorithmic cost of producing it.
#[derive(Debug, Clone)]
pub struct AttentionOutput {
    /// The `(S_q, d)` attention output `O`.
    pub output: Matrix,
    /// Exact FLOP/byte counts for the kernel invocation.
    pub cost: CostReport,
}

fn validate_qkv(q: &Matrix, k: &Matrix, v: &Matrix) -> Result<(), TensorError> {
    if q.cols() != k.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "attention(q,k)",
            lhs: q.shape(),
            rhs: k.shape(),
        });
    }
    if k.rows() != v.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "attention(k,v)",
            lhs: k.shape(),
            rhs: v.shape(),
        });
    }
    Ok(())
}

/// Raw (pre-softmax) scaled scores `Q K^T / sqrt(d)`, with non-causal
/// entries set to `-inf` when `causal` is true.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `q.cols() != k.cols()`.
pub fn attention_scores_raw(q: &Matrix, k: &Matrix, causal: bool) -> Result<Matrix, TensorError> {
    let mut scores = matmul_transb(q, k)?;
    scores.scale_in_place(score_scale(q.cols()));
    if causal {
        let s_q = q.rows();
        let s_k = k.rows();
        let off = s_k as isize - s_q as isize;
        for i in 0..s_q {
            let end = i as isize + off;
            let first_masked = if end < 0 { 0 } else { (end + 1) as usize };
            for x in &mut scores.row_mut(i)[first_masked.min(s_k)..] {
                *x = f32::NEG_INFINITY;
            }
        }
    }
    Ok(scores)
}

/// The attention probability matrix `P = softmax(Q K^T / sqrt(d))`
/// (row-wise, causal when requested).
///
/// Fully masked rows (possible when `s_k < s_q`) come out as all zeros.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `q.cols() != k.cols()`.
pub fn attention_probs(q: &Matrix, k: &Matrix, causal: bool) -> Result<Matrix, TensorError> {
    let mut p = attention_scores_raw(q, k, causal)?;
    softmax_rows_in_place(&mut p);
    Ok(p)
}

/// Full (dense) attention: `O = softmax(Q K^T / sqrt(d)) V`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent Q/K/V shapes.
///
/// # Example
///
/// ```
/// use sa_tensor::Matrix;
/// use sa_kernels::full_attention;
///
/// # fn main() -> Result<(), sa_kernels::KernelError> {
/// let q = Matrix::from_fn(4, 8, |i, j| ((i + j) % 3) as f32 * 0.2);
/// let k = q.clone();
/// let v = Matrix::from_fn(4, 8, |i, j| (i * 8 + j) as f32 * 0.01);
/// let out = full_attention(&q, &k, &v, true)?;
/// assert_eq!(out.output.shape(), (4, 8));
/// # Ok(())
/// # }
/// ```
pub fn full_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    causal: bool,
) -> Result<AttentionOutput, TensorError> {
    validate_qkv(q, k, v)?;
    let p = attention_probs(q, k, causal)?;
    let output = matmul(&p, v)?;

    let (s_q, d) = q.shape();
    let s_k = k.rows();
    let dv = v.cols();
    let pairs = if causal {
        causal_pairs(s_q, s_k)
    } else {
        (s_q * s_k) as u64
    };
    // QK^T (2d per live pair) + softmax (~4 flops/entry) + PV (2dv per pair).
    let flops = pairs * (2 * d as u64 + 4 + 2 * dv as u64);
    // Naive kernel reads Q,K,V and writes + re-reads the full score matrix.
    let bytes_read = f32_bytes((s_q * d + s_k * d + s_k * dv) as u64) + 2 * f32_bytes(pairs);
    let bytes_written = f32_bytes(pairs) + f32_bytes((s_q * dv) as u64);
    let mut cost = CostReport::launch(flops, bytes_read, bytes_written);
    cost.kernel_launches = 3; // bmm, softmax, bmm — unfused

    Ok(AttentionOutput { output, cost })
}

/// Attention masked by an arbitrary dense `{0,1}` mask — the literal
/// `P̃ = M * P` of Eq. (2). Reference implementation for tests; O(S²).
///
/// Rows whose mask keeps no entry produce a zero output row.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent shapes, including
/// a mask that does not match `(s_q, s_k)`.
pub fn masked_attention_dense(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mask: &DenseMask,
) -> Result<AttentionOutput, TensorError> {
    validate_qkv(q, k, v)?;
    if mask.s_q() != q.rows() || mask.s_k() != k.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "masked_attention_dense(mask)",
            lhs: (mask.s_q(), mask.s_k()),
            rhs: (q.rows(), k.rows()),
        });
    }
    let mut scores = attention_scores_raw(q, k, false)?;
    for i in 0..q.rows() {
        let row = scores.row_mut(i);
        for (j, x) in row.iter_mut().enumerate() {
            if !mask.get(i, j) {
                *x = f32::NEG_INFINITY;
            }
        }
    }
    softmax_rows_in_place(&mut scores);
    let output = matmul(&scores, v)?;
    let pairs = mask.nnz() as u64;
    let d = q.cols() as u64;
    let dv = v.cols() as u64;
    let flops = pairs * (2 * d + 4 + 2 * dv);
    let bytes_read = f32_bytes((q.len() + k.len() + v.len()) as u64) + 2 * f32_bytes(pairs);
    let bytes_written = f32_bytes(pairs) + f32_bytes(output.len() as u64);
    let mut cost = CostReport::launch(flops, bytes_read, bytes_written);
    cost.kernel_launches = 3;
    Ok(AttentionOutput { output, cost })
}

/// Number of live (query, key) pairs in the causal region of an
/// `s_q x s_k` attention problem (the dense baseline's work).
pub fn causal_pairs(s_q: usize, s_k: usize) -> u64 {
    let off = s_k as isize - s_q as isize;
    (0..s_q)
        .map(|i| {
            let end = i as isize + off;
            if end < 0 {
                0
            } else {
                (end as u64 + 1).min(s_k as u64)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::DeterministicRng;

    #[test]
    fn probs_rows_sum_to_one_causal() {
        let mut rng = DeterministicRng::new(1);
        let q = rng.normal_matrix(6, 8, 1.0);
        let k = rng.normal_matrix(6, 8, 1.0);
        let p = attention_probs(&q, &k, true).unwrap();
        for i in 0..6 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
            // strictly causal: no mass above the diagonal
            for j in (i + 1)..6 {
                assert_eq!(p.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn causal_first_row_attends_only_self() {
        let mut rng = DeterministicRng::new(2);
        let q = rng.normal_matrix(4, 4, 1.0);
        let k = rng.normal_matrix(4, 4, 1.0);
        let v = rng.normal_matrix(4, 4, 1.0);
        let out = full_attention(&q, &k, &v, true).unwrap();
        for j in 0..4 {
            assert!((out.output.get(0, j) - v.get(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn non_causal_uniform_when_scores_equal() {
        let q = Matrix::zeros(3, 4);
        let k = Matrix::zeros(5, 4);
        let v = Matrix::from_fn(5, 2, |i, _| i as f32);
        let out = full_attention(&q, &k, &v, false).unwrap();
        // uniform over 5 values → mean = 2.0
        for i in 0..3 {
            assert!((out.output.get(i, 0) - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn masked_with_causal_mask_equals_causal_attention() {
        let mut rng = DeterministicRng::new(3);
        let q = rng.normal_matrix(7, 8, 1.0);
        let k = rng.normal_matrix(7, 8, 1.0);
        let v = rng.normal_matrix(7, 8, 1.0);
        let a = full_attention(&q, &k, &v, true).unwrap();
        let b = masked_attention_dense(&q, &k, &v, &DenseMask::causal(7, 7)).unwrap();
        for (x, y) in a.output.as_slice().iter().zip(b.output.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn masked_empty_row_is_zero() {
        let mut rng = DeterministicRng::new(4);
        let q = rng.normal_matrix(3, 4, 1.0);
        let k = rng.normal_matrix(3, 4, 1.0);
        let v = rng.normal_matrix(3, 4, 1.0);
        let mut mask = DenseMask::zeros(3, 3);
        mask.set(1, 0, true);
        let out = masked_attention_dense(&q, &k, &v, &mask).unwrap();
        assert!(out.output.row(0).iter().all(|&x| x == 0.0));
        assert!(out.output.row(2).iter().all(|&x| x == 0.0));
        for j in 0..4 {
            assert!((out.output.get(1, j) - v.get(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_validation() {
        let q = Matrix::zeros(2, 4);
        let k = Matrix::zeros(3, 5);
        let v = Matrix::zeros(3, 4);
        assert!(full_attention(&q, &k, &v, true).is_err());
        let k2 = Matrix::zeros(3, 4);
        let v2 = Matrix::zeros(2, 4);
        assert!(full_attention(&q, &k2, &v2, true).is_err());
        let mask = DenseMask::zeros(9, 9);
        assert!(masked_attention_dense(&q, &k2, &Matrix::zeros(3, 4), &mask).is_err());
    }

    #[test]
    fn rectangular_causal_probs() {
        // 2 queries (last 2 positions) over 4 keys.
        let mut rng = DeterministicRng::new(5);
        let q = rng.normal_matrix(2, 4, 1.0);
        let k = rng.normal_matrix(4, 4, 1.0);
        let p = attention_probs(&q, &k, true).unwrap();
        assert_eq!(p.get(0, 3), 0.0); // row 0 sees keys 0..=2
        assert!((p.row(1).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn causal_pairs_counts() {
        assert_eq!(causal_pairs(4, 4), 10);
        assert_eq!(causal_pairs(2, 4), 3 + 4);
        assert_eq!(causal_pairs(4, 2), 1 + 2);
        assert_eq!(causal_pairs(0, 5), 0);
    }

    #[test]
    fn cost_scales_quadratically() {
        let mut rng = DeterministicRng::new(6);
        let d = 8;
        let mk = |s: usize, rng: &mut DeterministicRng| {
            (
                rng.normal_matrix(s, d, 1.0),
                rng.normal_matrix(s, d, 1.0),
                rng.normal_matrix(s, d, 1.0),
            )
        };
        let (q1, k1, v1) = mk(16, &mut rng);
        let (q2, k2, v2) = mk(32, &mut rng);
        let c1 = full_attention(&q1, &k1, &v1, true).unwrap().cost;
        let c2 = full_attention(&q2, &k2, &v2, true).unwrap().cost;
        let ratio = c2.flops as f64 / c1.flops as f64;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }
}
