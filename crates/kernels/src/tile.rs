//! Block-CSR tiling of a [`StructuredMask`].
//!
//! The row-major sparse kernel walks every live `(row, key)` pair
//! individually. A [`TiledMask`] regroups the same live set into
//! fixed-size `tile × tile` query×key blocks, stored CSR-style per
//! query-tile row, with a per-tile occupancy class:
//!
//! * [`TileClass::Full`] — every row's local window covers the whole
//!   tile width. The kernel streams the block with a maskless
//!   fused-multiply-add fast path: no bitmap, no branches.
//! * [`TileClass::Window`] — each row's live set inside the tile is
//!   exactly its window clip, one contiguous `(lo, hi)` span per row.
//! * [`TileClass::Bitmap`] — anything irregular (sink columns, stripe
//!   diagonals, mixed segments): one 64-bit occupancy word per row,
//!   which is why tile sizes are capped at [`MAX_TILE`].
//!
//! Tiling is pure bookkeeping: the live set is untouched, so
//! [`TiledMask::expand`] reproduces `mask.to_dense()` exactly and the
//! tiled kernel can replay the row-major kernel's arithmetic
//! bit-for-bit (see `sparse_tiled.rs`).

use crate::mask::{DenseMask, StructuredMask};
use sa_tensor::TensorError;

/// Hard cap on the tile edge so a bitmap row always fits one `u64`.
pub const MAX_TILE: usize = 64;

/// Bookkeeping cost of one tile entry, in K-row-load units, used by the
/// analytic load predictor ([`TiledMask::predict_row_loads`]).
const TILE_ENTRY_OVERHEAD: u64 = 4;

/// Occupancy class of one query×key tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileClass {
    /// Every in-bounds row's window covers the whole tile width.
    Full,
    /// Per-row contiguous window clips, `(lo, hi)` offsets within the
    /// tile (`lo == hi` marks an empty row).
    Window { spans: Vec<(u16, u16)> },
    /// Per-row occupancy bitmap; bit `t` is key `key_tile * tile + t`.
    Bitmap { bits: Vec<u64> },
}

impl TileClass {
    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            TileClass::Full => "full",
            TileClass::Window { .. } => "window",
            TileClass::Bitmap { .. } => "bitmap",
        }
    }
}

/// One live tile in a query-tile row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileEntry {
    /// Key-tile index; the tile covers keys `key_tile * tile ..`.
    pub key_tile: usize,
    /// How the tile's live set is encoded.
    pub class: TileClass,
}

/// Block-CSR view of a [`StructuredMask`]: per query-tile row, the
/// sorted list of live key tiles with their occupancy classes.
#[derive(Debug, Clone)]
pub struct TiledMask {
    mask: StructuredMask,
    tile: usize,
    q_tiles: usize,
    /// CSR offsets into `entries`, length `q_tiles + 1`.
    row_ptr: Vec<usize>,
    entries: Vec<TileEntry>,
    nnz: usize,
    full_tiles: usize,
    window_tiles: usize,
    bitmap_tiles: usize,
}

impl TiledMask {
    /// Tiles `mask` into `tile × tile` blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when `tile` is zero or
    /// exceeds [`MAX_TILE`], or when the mask has a zero dimension.
    pub fn build(mask: StructuredMask, tile: usize) -> Result<Self, TensorError> {
        if tile == 0 || tile > MAX_TILE {
            return Err(TensorError::InvalidDimension {
                op: "TiledMask::build",
                what: format!("tile size {tile} outside 1..={MAX_TILE}"),
            });
        }
        if mask.s_q() == 0 || mask.s_k() == 0 {
            return Err(TensorError::InvalidDimension {
                op: "TiledMask::build",
                what: format!("degenerate mask shape {}x{}", mask.s_q(), mask.s_k()),
            });
        }
        let (s_q, s_k) = (mask.s_q(), mask.s_k());
        let q_tiles = s_q.div_ceil(tile);
        let extras = mask.extra_columns();
        let diagonals = mask.diagonal_offsets();

        let mut row_ptr = Vec::with_capacity(q_tiles + 1);
        row_ptr.push(0usize);
        let mut entries: Vec<TileEntry> = Vec::new();
        let mut nnz = 0usize;
        let (mut full_tiles, mut window_tiles, mut bitmap_tiles) = (0usize, 0usize, 0usize);
        let mut candidates: Vec<usize> = Vec::new();

        for qt in 0..q_tiles {
            let r0 = qt * tile;
            let r1 = (r0 + tile).min(s_q);
            candidate_key_tiles(&mask, tile, r0, r1, &mut candidates);
            for &kt in candidates.iter() {
                let c0 = kt * tile;
                let c_end = (c0 + tile).min(s_k);
                let mut spans: Vec<(u16, u16)> = Vec::with_capacity(r1 - r0);
                let mut bits: Vec<u64> = Vec::with_capacity(r1 - r0);
                let mut tile_nnz = 0usize;
                let mut all_rows_full = true;
                let mut any_sub_window = false;
                for r in r0..r1 {
                    let Some(end) = mask.causal_end(r) else {
                        spans.push((0, 0));
                        bits.push(0);
                        all_rows_full = false;
                        continue;
                    };
                    let ws = mask.window_start(r);
                    // Window clip inside the tile.
                    let lo = c0.max(ws);
                    let hi = c_end.min(end + 1);
                    let (lo, hi) = if lo < hi { (lo, hi) } else { (c0, c0) };
                    let mut win_bits: u64 = 0;
                    if hi > lo {
                        let n = hi - lo;
                        let run = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
                        win_bits = run << (lo - c0);
                    }
                    // Sub-window live keys (sinks/stripes below the
                    // window) that land inside this tile.
                    let sub_hi = c_end.min(ws).min(end + 1);
                    let mut sub_bits: u64 = 0;
                    if c0 < sub_hi {
                        let a = extras.partition_point(|&c| c < c0);
                        let b = extras.partition_point(|&c| c < sub_hi);
                        for &c in &extras[a..b] {
                            sub_bits |= 1u64 << (c - c0);
                        }
                        for &delta in diagonals {
                            if let Some(j) = end.checked_sub(delta) {
                                if j >= c0 && j < sub_hi {
                                    sub_bits |= 1u64 << (j - c0);
                                }
                            }
                        }
                    }
                    if sub_bits != 0 {
                        any_sub_window = true;
                    }
                    if !(ws <= c0 && end + 1 >= c_end) {
                        all_rows_full = false;
                    }
                    let row_bits = win_bits | sub_bits;
                    tile_nnz += row_bits.count_ones() as usize;
                    spans.push(((lo - c0) as u16, (hi - c0) as u16));
                    bits.push(row_bits);
                }
                if tile_nnz == 0 {
                    continue;
                }
                nnz += tile_nnz;
                let class = if all_rows_full {
                    full_tiles += 1;
                    TileClass::Full
                } else if !any_sub_window {
                    window_tiles += 1;
                    TileClass::Window { spans }
                } else {
                    bitmap_tiles += 1;
                    TileClass::Bitmap { bits }
                };
                entries.push(TileEntry { key_tile: kt, class });
            }
            row_ptr.push(entries.len());
        }

        Ok(TiledMask {
            mask,
            tile,
            q_tiles,
            row_ptr,
            entries,
            nnz,
            full_tiles,
            window_tiles,
            bitmap_tiles,
        })
    }

    /// The tile edge length.
    #[inline]
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of query-tile rows (`ceil(s_q / tile)`).
    #[inline]
    pub fn q_tiles(&self) -> usize {
        self.q_tiles
    }

    /// The underlying structured mask.
    #[inline]
    pub fn mask(&self) -> &StructuredMask {
        &self.mask
    }

    /// Live entries, identical to `mask().nnz()`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total number of live tiles.
    pub fn tile_count(&self) -> usize {
        self.entries.len()
    }

    /// `(full, window, bitmap)` tile counts.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        (self.full_tiles, self.window_tiles, self.bitmap_tiles)
    }

    /// The live tiles of query-tile row `qt`, sorted by key tile.
    #[inline]
    pub fn entries_for(&self, qt: usize) -> &[TileEntry] {
        &self.entries[self.row_ptr[qt]..self.row_ptr[qt + 1]]
    }

    /// Rebuilds the dense live set from the tiles alone. Must equal
    /// `mask().to_dense()` exactly — the round-trip oracle for the
    /// golden tests.
    pub fn expand(&self) -> DenseMask {
        let (s_q, s_k) = (self.mask.s_q(), self.mask.s_k());
        let mut dense = DenseMask::zeros(s_q, s_k);
        for qt in 0..self.q_tiles {
            let r0 = qt * self.tile;
            let r1 = (r0 + self.tile).min(s_q);
            for entry in self.entries_for(qt) {
                let c0 = entry.key_tile * self.tile;
                let c_end = (c0 + self.tile).min(s_k);
                match &entry.class {
                    TileClass::Full => {
                        for r in r0..r1 {
                            for j in c0..c_end {
                                dense.set(r, j, true);
                            }
                        }
                    }
                    TileClass::Window { spans } => {
                        for (ri, &(lo, hi)) in spans.iter().enumerate() {
                            for j in c0 + lo as usize..c0 + hi as usize {
                                dense.set(r0 + ri, j, true);
                            }
                        }
                    }
                    TileClass::Bitmap { bits } => {
                        for (ri, &word) in bits.iter().enumerate() {
                            let mut b = word;
                            while b != 0 {
                                let t = b.trailing_zeros() as usize;
                                dense.set(r0 + ri, c0 + t, true);
                                b &= b - 1;
                            }
                        }
                    }
                }
            }
        }
        dense
    }

    /// Tile-granular memory-traffic summary for the cost model.
    pub fn traffic(&self) -> TileTraffic {
        let s_k = self.mask.s_k();
        let mut t = TileTraffic::default();
        for entry in &self.entries {
            let c0 = entry.key_tile * self.tile;
            let width = ((c0 + self.tile).min(s_k) - c0) as u64;
            match &entry.class {
                TileClass::Full => t.full_rows += width,
                TileClass::Window { spans } => {
                    t.partial_rows += width;
                    t.span_entries += spans.len() as u64;
                }
                TileClass::Bitmap { bits } => {
                    t.partial_rows += width;
                    t.bitmap_words += bits.len() as u64;
                }
            }
        }
        t
    }

    /// Cheap analytic prediction of the K/V row loads the tiled kernel
    /// would issue for `mask` at a given tile size — candidate tiles
    /// only, no per-bit classification — used by the tile-size
    /// autotuner to rank candidates without building each layout.
    pub fn predict_row_loads(mask: &StructuredMask, tile: usize) -> u64 {
        if tile == 0 || tile > MAX_TILE || mask.s_q() == 0 || mask.s_k() == 0 {
            return u64::MAX;
        }
        let s_q = mask.s_q();
        let s_k = mask.s_k();
        let q_tiles = s_q.div_ceil(tile);
        let mut candidates: Vec<usize> = Vec::new();
        let mut loads = 0u64;
        for qt in 0..q_tiles {
            let r0 = qt * tile;
            let r1 = (r0 + tile).min(s_q);
            candidate_key_tiles(mask, tile, r0, r1, &mut candidates);
            for &kt in candidates.iter() {
                let c0 = kt * tile;
                let width = ((c0 + tile).min(s_k) - c0) as u64;
                loads += width + TILE_ENTRY_OVERHEAD;
            }
        }
        loads
    }
}

/// Sorted, deduplicated key tiles that can hold live keys for query
/// rows `r0..r1`: the window band, extras columns, and stripe
/// diagonals. A superset of the live tiles — empty candidates are
/// dropped during classification.
fn candidate_key_tiles(
    mask: &StructuredMask,
    tile: usize,
    r0: usize,
    r1: usize,
    out: &mut Vec<usize>,
) {
    out.clear();
    let mut ws_min = usize::MAX;
    let mut end_max: Option<usize> = None;
    for r in r0..r1 {
        let Some(end) = mask.causal_end(r) else {
            continue;
        };
        ws_min = ws_min.min(mask.window_start(r));
        end_max = Some(end_max.map_or(end, |e: usize| e.max(end)));
        for &delta in mask.diagonal_offsets() {
            if let Some(j) = end.checked_sub(delta) {
                out.push(j / tile);
            }
        }
    }
    let Some(end_max) = end_max else {
        out.clear();
        return;
    };
    for kt in ws_min / tile..=end_max / tile {
        out.push(kt);
    }
    for &c in mask.extra_columns() {
        if c <= end_max {
            out.push(c / tile);
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Tile-granular traffic counts feeding the kernels cost model
/// (`tiled_kernel_cost`): full tiles stream K/V rows maskless, partial
/// tiles additionally read their span or bitmap metadata.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileTraffic {
    /// K-row loads issued by Full tiles (each also loads a V row).
    pub full_rows: u64,
    /// K-row loads issued by Window/Bitmap tiles.
    pub partial_rows: u64,
    /// 64-bit occupancy words read by Bitmap tiles.
    pub bitmap_words: u64,
    /// `(lo, hi)` span pairs read by Window tiles.
    pub span_entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense-causal 8x8 with tile 4: the lower-left tile is Full, the
    /// two diagonal-straddling tiles are Window clips.
    #[test]
    fn golden_dense_causal_tile_classes() {
        let mask = StructuredMask::dense_causal(8, 8);
        let tiled = TiledMask::build(mask.clone(), 4).unwrap();
        assert_eq!(tiled.q_tiles(), 2);
        // Tiles: (qt0,kt0)=causal clip (Window), (qt1,kt0)=Full,
        // (qt1,kt1)=causal clip (Window).
        let (full, window, bitmap) = tiled.class_counts();
        assert_eq!((full, window, bitmap), (1, 2, 0));
        assert_eq!(tiled.tile_count(), 3);
        assert_eq!(tiled.nnz(), mask.nnz());
        assert_eq!(tiled.entries_for(1)[0].key_tile, 0);
        assert!(matches!(tiled.entries_for(1)[0].class, TileClass::Full));
    }

    /// Sinks far below the window produce Bitmap tiles; window band
    /// tiles stay Window/Full; nnz is preserved exactly.
    #[test]
    fn golden_sink_window_mix() {
        let mask = StructuredMask::builder(16, 16)
            .window(4)
            .sinks(2)
            .build()
            .unwrap();
        let tiled = TiledMask::build(mask.clone(), 4).unwrap();
        assert_eq!(tiled.nnz(), mask.nnz());
        let (_, _, bitmap) = tiled.class_counts();
        // Rows 8.. see sinks {0,1} in key tile 0, well below their
        // window: those tiles must be bitmaps.
        assert!(bitmap >= 1, "expected bitmap tiles for detached sinks");
        // Key tile 0 for query tile 3 (rows 12..16) holds only the two
        // sink columns.
        let entry = &tiled.entries_for(3)[0];
        assert_eq!(entry.key_tile, 0);
        match &entry.class {
            TileClass::Bitmap { bits } => {
                for &w in bits {
                    assert_eq!(w, 0b11, "each row sees exactly sinks 0 and 1");
                }
            }
            other => panic!("expected bitmap, got {}", other.label()),
        }
    }

    /// Round trip: expanding the tiles reproduces the structured mask's
    /// dense materialisation exactly, for a mask exercising every
    /// feature at a tile size that does not divide S.
    #[test]
    fn round_trip_expansion_exact() {
        let mask = StructuredMask::builder(19, 23)
            .window(5)
            .sinks(2)
            .columns(vec![7, 11])
            .dense_tail_rows(3)
            .diagonals(vec![9])
            .build()
            .unwrap();
        for tile in [1, 3, 4, 7, 19, 64] {
            let tiled = TiledMask::build(mask.clone(), tile).unwrap();
            assert_eq!(
                tiled.expand(),
                mask.to_dense(),
                "round trip failed at tile={tile}"
            );
            assert_eq!(tiled.nnz(), mask.nnz(), "nnz drifted at tile={tile}");
        }
    }

    /// Rectangular problems where early rows see nothing (s_k < s_q):
    /// empty query tiles get zero entries, not phantom tiles.
    #[test]
    fn rectangular_with_empty_rows() {
        let mask = StructuredMask::builder(12, 4).window(2).build().unwrap();
        let tiled = TiledMask::build(mask.clone(), 4).unwrap();
        // Rows 0..7 have causal_end None (end = i + 4 - 12 < 0 for i<8).
        assert!(tiled.entries_for(0).is_empty());
        assert_eq!(tiled.expand(), mask.to_dense());
        assert_eq!(tiled.nnz(), mask.nnz());
    }

    #[test]
    fn invalid_tile_sizes_are_typed_errors() {
        let mask = StructuredMask::dense_causal(4, 4);
        assert!(matches!(
            TiledMask::build(mask.clone(), 0),
            Err(TensorError::InvalidDimension { .. })
        ));
        assert!(matches!(
            TiledMask::build(mask, MAX_TILE + 1),
            Err(TensorError::InvalidDimension { .. })
        ));
    }

    #[test]
    fn traffic_splits_full_and_partial() {
        let mask = StructuredMask::builder(16, 16)
            .window(4)
            .sinks(2)
            .build()
            .unwrap();
        let tiled = TiledMask::build(mask.clone(), 4).unwrap();
        let t = tiled.traffic();
        let (full, window, bitmap) = tiled.class_counts();
        assert_eq!(t.full_rows, 4 * full as u64);
        assert_eq!(t.partial_rows, 4 * (window + bitmap) as u64);
        assert!(t.bitmap_words > 0);
        assert_eq!(
            t.bitmap_words + t.span_entries > 0,
            window + bitmap > 0,
            "partial tiles must carry metadata"
        );
    }

    /// The load predictor is exact on the candidate superset: strictly
    /// monotone in S for a fixed pattern, and finite for valid tiles.
    #[test]
    fn predict_row_loads_sane() {
        let small = StructuredMask::builder(32, 32).window(8).build().unwrap();
        let big = StructuredMask::builder(128, 128).window(8).build().unwrap();
        for tile in [4, 16, 64] {
            let a = TiledMask::predict_row_loads(&small, tile);
            let b = TiledMask::predict_row_loads(&big, tile);
            assert!(a < b, "loads must grow with S (tile={tile})");
            assert!(a < u64::MAX);
        }
        assert_eq!(TiledMask::predict_row_loads(&small, 0), u64::MAX);
    }
}
