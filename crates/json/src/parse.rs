//! A strict recursive-descent JSON parser.

use crate::value::{Json, JsonError, JsonLocation};

/// Maximum nesting depth (arrays + objects) before the parser bails,
/// guarding the recursion against stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 256;

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] carrying the byte offset and 1-based
/// line/column of the first problem (see [`JsonError::location`]).
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        // Recover line/column from the offset only on the error path, so
        // the happy path never pays for position tracking.
        let upto = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let column = 1 + upto
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(upto.len(), |nl| upto.len() - nl - 1);
        JsonError::new(msg).at(JsonLocation {
            offset: self.pos,
            line,
            column,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired low
                                // surrogate escape.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let start = self.pos;
                    let len = utf8_len(c);
                    self.pos += len;
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            // Integers wider than i64 fall back to f64, like serde_json's
            // arbitrary-precision-off behaviour for u64 would overflow.
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5e3").unwrap(), Json::Float(1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Json::Int(1));
        assert_eq!(a[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap(),
            Json::Str("a\n\t\"\\Aé".to_string())
        );
        // Surrogate pair: 𝄞 (U+1D11E).
        assert_eq!(
            parse(r#""\ud834\udd1e""#).unwrap(),
            Json::Str("𝄞".to_string())
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "tru", "01", "1.", "1e", "\"\\x\"", "{\"a\" 1}", "[1] []", "nan",
            "+1", "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn large_integers_fall_back_to_float() {
        assert_eq!(parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let s = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&s).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn errors_carry_offset_line_and_column() {
        // The `tru` on line 3 (1-based), column 8, byte 19.
        let doc = "{\n  \"a\": 1,\n  \"b\": tru\n}";
        let err = parse(doc).expect_err("malformed literal");
        let loc = err.location().expect("parser errors carry a location");
        assert_eq!(loc.line, 3);
        assert_eq!(loc.column, 8);
        assert_eq!(loc.offset, 19);
        let rendered = err.to_string();
        assert!(rendered.contains("byte 19"), "{rendered}");
        assert!(rendered.contains("line 3"), "{rendered}");
        assert!(rendered.contains("column 8"), "{rendered}");
        // Single-line input: column == offset + 1.
        let err = parse("[1,]").expect_err("trailing comma");
        let loc = err.location().expect("location");
        assert_eq!((loc.line, loc.column, loc.offset), (1, 4, 3));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Int(2)));
    }
}
