//! The owned JSON value tree and the shared error type.

/// An owned JSON value.
///
/// Numbers keep an integer/float distinction so `u64` counters (FLOP
/// counts, byte totals) round-trip exactly; [`PartialEq`] compares the
/// two numeric variants by value, so a `1` that was written as `1.0`
/// still compares equal after a round trip.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order (duplicate keys keep the last).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Object field lookup (last occurrence wins, as in `serde_json`).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (integers convert losslessly up
    /// to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Array(a), Json::Array(b)) => a == b,
            (Json::Object(a), Json::Object(b)) => a == b,
            // Numbers compare by value across the Int/Float divide.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

/// Byte offset plus 1-based line/column of a parse failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonLocation {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes from the start of the line).
    pub column: usize,
}

/// Error from parsing or from a [`crate::FromJson`] conversion.
///
/// Parser-produced errors carry a [`JsonLocation`] (byte offset +
/// line/column); conversion errors accumulate a `Type.field` context
/// chain via [`JsonError::in_context`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    location: Option<JsonLocation>,
}

impl JsonError {
    /// Creates an error with the given message and no input location.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            location: None,
        }
    }

    /// Attaches the input location where the problem was detected.
    pub fn at(mut self, location: JsonLocation) -> Self {
        self.location = Some(location);
        self
    }

    /// The input location, when the error came from the parser.
    pub fn location(&self) -> Option<JsonLocation> {
        self.location
    }

    /// Prefixes the error with a location context (e.g. `Type.field`),
    /// preserving any input location.
    pub fn in_context(self, context: &str) -> Self {
        JsonError {
            message: format!("{context}: {}", self.message),
            location: self.location,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.location {
            Some(loc) => write!(
                f,
                "{} at byte {} (line {}, column {})",
                self.message, loc.offset, loc.line, loc.column
            ),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}
