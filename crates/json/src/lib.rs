//! # sa-json
//!
//! A minimal, std-only JSON module: the hermetic replacement for
//! `serde`/`serde_json` in this workspace. The build must succeed with
//! the registry unreachable (see DESIGN.md, "Hermetic build policy"), so
//! serialization is provided in-repo:
//!
//! - [`Json`] — an owned JSON value tree;
//! - [`parse`] — a strict parser ([RFC 8259] syntax) with position-
//!   annotated errors;
//! - [`to_string`] / [`to_string_pretty`] — compact and 2-space-indented
//!   writers (the pretty style matches what `serde_json` produced for the
//!   checked-in `results/*.json`);
//! - [`ToJson`] / [`FromJson`] — conversion traits implemented for the
//!   primitives, `Vec`, `Option`, tuples, and `Range`;
//! - [`impl_json_struct!`] / [`impl_json_enum!`] — macros standing in for
//!   `#[derive(Serialize, Deserialize)]` on structs with named fields and
//!   on unit-variant enums. Enums with payload variants implement the
//!   traits by hand, following serde's externally-tagged convention
//!   (`"Variant"` for unit variants, `{"Variant": payload}` otherwise) so
//!   any previously written files keep parsing.
//!
//! [RFC 8259]: https://www.rfc-editor.org/rfc/rfc8259

mod convert;
mod fmt;
mod parse;
mod value;

pub use convert::{FromJson, ToJson};
pub use parse::parse;
pub use value::{Json, JsonError, JsonLocation};

/// Serializes a value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render(None)
}

/// Serializes a value with 2-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render(Some(2))
}

/// Parses a JSON document straight into a [`FromJson`] type.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON or a shape mismatch.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&parse(s)?)
}

/// Implements [`ToJson`] and [`FromJson`] for a struct with named fields,
/// mirroring `#[derive(Serialize, Deserialize)]`.
///
/// Must be invoked in the module that defines the struct (it accesses the
/// fields directly). Suffix a field with `: default` to mirror
/// `#[serde(default)]`: the field falls back to `Default::default()` when
/// the key is missing.
///
/// ```
/// #[derive(Debug, PartialEq, Default)]
/// struct Point { x: f64, y: f64, label: String }
/// sa_json::impl_json_struct!(Point { x, y, label: default });
///
/// let p = Point { x: 1.0, y: 2.0, label: String::new() };
/// let s = sa_json::to_string(&p);
/// assert_eq!(sa_json::from_str::<Point>(&s).unwrap(), p);
/// assert_eq!(sa_json::from_str::<Point>(r#"{"x":1.0,"y":2.0}"#).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident $(: $kind:ident)?),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                if !matches!(v, $crate::Json::Object(_)) {
                    return Err($crate::JsonError::new(format!(
                        concat!(stringify!($ty), ": expected object, got {}"),
                        v.kind()
                    )));
                }
                Ok($ty {
                    $($field: $crate::impl_json_struct!(@field $ty, v, $field $(: $kind)?),)*
                })
            }
        }
    };
    (@field $ty:ident, $v:ident, $field:ident) => {
        match $v.get(stringify!($field)) {
            Some(fv) => $crate::FromJson::from_json(fv)
                .map_err(|e| e.in_context(concat!(stringify!($ty), ".", stringify!($field))))?,
            None => {
                return Err($crate::JsonError::new(concat!(
                    stringify!($ty),
                    ": missing field `",
                    stringify!($field),
                    "`"
                )))
            }
        }
    };
    (@field $ty:ident, $v:ident, $field:ident: default) => {
        match $v.get(stringify!($field)) {
            Some(fv) => $crate::FromJson::from_json(fv)
                .map_err(|e| e.in_context(concat!(stringify!($ty), ".", stringify!($field))))?,
            None => Default::default(),
        }
    };
}

/// Implements [`ToJson`] and [`FromJson`] for an enum whose variants all
/// carry no data, serialized as the bare variant-name string (serde's
/// externally-tagged convention for unit variants).
///
/// ```
/// #[derive(Debug, PartialEq)]
/// enum Mode { Fast, Exact }
/// sa_json::impl_json_enum!(Mode { Fast, Exact });
///
/// assert_eq!(sa_json::to_string(&Mode::Fast), "\"Fast\"");
/// assert_eq!(sa_json::from_str::<Mode>("\"Exact\"").unwrap(), Mode::Exact);
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($variant:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Str(
                    match self {
                        $($ty::$variant => stringify!($variant),)*
                    }
                    .to_string(),
                )
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)*
                    Some(other) => Err($crate::JsonError::new(format!(
                        concat!(stringify!($ty), ": unknown variant `{}`"),
                        other
                    ))),
                    None => Err($crate::JsonError::new(format!(
                        concat!(stringify!($ty), ": expected string, got {}"),
                        v.kind()
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Inner {
        id: usize,
        ratio: f32,
    }
    impl_json_struct!(Inner { id, ratio });

    #[derive(Debug, PartialEq, Default)]
    struct Outer {
        name: String,
        items: Vec<Inner>,
        tags: Vec<(String, f64)>,
        note: Option<String>,
        extra: usize,
    }
    impl_json_struct!(Outer {
        name,
        items,
        tags,
        note,
        extra: default
    });

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    impl_json_enum!(Color { Red, Green });

    fn sample() -> Outer {
        Outer {
            name: "run".to_string(),
            items: vec![
                Inner { id: 0, ratio: 0.5 },
                Inner {
                    id: 7,
                    ratio: 0.125,
                },
            ],
            tags: vec![("a".to_string(), 1.5), ("b".to_string(), -2.0)],
            note: None,
            extra: 3,
        }
    }

    #[test]
    fn struct_round_trip_compact_and_pretty() {
        let v = sample();
        assert_eq!(from_str::<Outer>(&to_string(&v)).unwrap(), v);
        assert_eq!(from_str::<Outer>(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn defaulted_field_optional() {
        let parsed: Outer =
            from_str(r#"{"name":"x","items":[],"tags":[],"note":"hi"}"#).unwrap();
        assert_eq!(parsed.extra, 0);
        assert_eq!(parsed.note.as_deref(), Some("hi"));
    }

    #[test]
    fn missing_required_field_errors() {
        let e = from_str::<Inner>(r#"{"id":1}"#).unwrap_err();
        assert!(e.to_string().contains("ratio"), "{e}");
    }

    #[test]
    fn enum_round_trip_and_unknown_variant() {
        assert_eq!(from_str::<Color>(&to_string(&Color::Green)).unwrap(), Color::Green);
        assert!(from_str::<Color>("\"Blue\"").is_err());
        assert!(from_str::<Color>("3").is_err());
    }

    #[test]
    fn type_mismatch_reports_context() {
        let e = from_str::<Inner>(r#"{"id":"oops","ratio":1.0}"#).unwrap_err();
        assert!(e.to_string().contains("Inner.id"), "{e}");
    }
}
