//! [`ToJson`] / [`FromJson`] conversions for the std types the workspace
//! serializes: numbers, booleans, strings, `Vec`, `Option`, tuples, and
//! `Range` (serde's `{"start", "end"}` shape).

use crate::value::{Json, JsonError};

/// Conversion into a [`Json`] value (the `Serialize` stand-in).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] value (the `Deserialize` stand-in).
pub trait FromJson: Sized {
    /// Reconstructs the value.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first shape mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::new(format!("expected bool, got {}", v.kind())))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new(format!("expected string, got {}", v.kind())))
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(i) => Json::Int(i),
                    // u64 values beyond i64::MAX (never produced by the
                    // workspace's counters, but representable).
                    Err(_) => Json::Float(*self as f64),
                }
            }
        }

        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v.as_i64().ok_or_else(|| {
                    JsonError::new(format!(
                        concat!("expected ", stringify!($ty), ", got {}"),
                        v.kind()
                    ))
                })?;
                <$ty>::try_from(i).map_err(|_| {
                    JsonError::new(format!(
                        concat!("number {} out of range for ", stringify!($ty)),
                        i
                    ))
                })
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, got {}", v.kind())))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        // Widening to f64 is exact, so the shortest-f64 text re-parses to
        // the identical f32.
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::new(format!("expected array, got {}", v.kind())))?
            .iter()
            .enumerate()
            .map(|(i, item)| {
                T::from_json(item).map_err(|e| e.in_context(&format!("index {i}")))
            })
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for std::ops::Range<T> {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("start".to_string(), self.start.to_json()),
            ("end".to_string(), self.end.to_json()),
        ])
    }
}

impl<T: FromJson> FromJson for std::ops::Range<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| JsonError::new(format!("Range: missing field `{name}`")))
                .and_then(T::from_json)
        };
        Ok(field("start")?..field("end")?)
    }
}

macro_rules! impl_json_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }

        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| JsonError::new(format!("expected array, got {}", v.kind())))?;
                let arity = [$($idx),+].len();
                if items.len() != arity {
                    return Err(JsonError::new(format!(
                        "expected {arity}-tuple, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_json(&items[$idx])
                    .map_err(|e| e.in_context(&format!("tuple index {}", $idx)))?,)+))
            }
        }
    )*};
}

impl_json_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use crate::{from_str, to_string};

    #[test]
    fn primitive_round_trips() {
        assert_eq!(from_str::<u64>(&to_string(&u64::from(u32::MAX))).unwrap(), u64::from(u32::MAX));
        assert_eq!(from_str::<i64>(&to_string(&-42i64)).unwrap(), -42);
        assert_eq!(from_str::<f32>(&to_string(&0.1f32)).unwrap(), 0.1f32);
        assert_eq!(from_str::<f64>(&to_string(&0.1f64)).unwrap(), 0.1f64);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"x\"").unwrap(), "x");
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<usize>("-1").is_err());
        assert!(from_str::<u32>("1.5").is_err());
    }

    #[test]
    fn integral_float_accepted_as_integer() {
        // serde_json is stricter here, but the workspace's own writer may
        // emit u64 counters it read back as floats; accept exact values.
        assert_eq!(from_str::<u32>("3.0").unwrap(), 3);
    }

    #[test]
    fn vec_option_tuple_round_trips() {
        let v: Vec<(String, f64, usize)> = vec![("a".into(), 1.5, 2), ("b".into(), -0.25, 9)];
        assert_eq!(from_str::<Vec<(String, f64, usize)>>(&to_string(&v)).unwrap(), v);
        let o: Option<Vec<u8>> = Some(vec![1, 2, 3]);
        assert_eq!(from_str::<Option<Vec<u8>>>(&to_string(&o)).unwrap(), o);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn range_uses_serde_shape() {
        let r = 3u32..17;
        assert_eq!(to_string(&r), r#"{"start":3,"end":17}"#);
        assert_eq!(from_str::<std::ops::Range<u32>>(&to_string(&r)).unwrap(), r);
    }

    #[test]
    fn tuple_arity_mismatch_rejected() {
        assert!(from_str::<(u8, u8)>("[1,2,3]").is_err());
        assert!(from_str::<(u8, u8)>("[1]").is_err());
    }
}
