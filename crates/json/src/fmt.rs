//! Compact and pretty JSON writers.

use crate::value::Json;

impl Json {
    /// Renders the value: compact when `indent` is `None`, otherwise with
    /// the given number of spaces per level (`Some(2)` matches the
    /// `serde_json` pretty style of the checked-in `results/*.json`).
    pub fn render(&self, indent: Option<usize>) -> String {
        let mut out = String::new();
        write_value(self, indent, 0, &mut out);
        out
    }
}

fn write_value(v: &Json, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => write_float(*f, out),
        Json::Str(s) => write_string(s, out),
        Json::Array(items) => write_seq(items.iter(), indent, level, out, ('[', ']'), |v, out| {
            write_value(v, indent, level + 1, out)
        }),
        Json::Object(fields) => {
            write_seq(fields.iter(), indent, level, out, ('{', '}'), |(k, v), out| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, indent, level + 1, out);
            })
        }
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    brackets: (char, char),
    mut write_item: impl FnMut(T, &mut String),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (level + 1)));
        }
        write_item(item, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * level));
        }
    }
    out.push(brackets.1);
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; emit null like serde_json's
        // lossy modes rather than producing an unparseable document.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep a float marker so the value re-parses as a float (Rust's
    // shortest Display drops the ".0" on integral floats).
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn doc() -> Json {
        parse(r#"{"a":[1,2.5,null],"b":{"c":"x\ny","d":[]},"e":true}"#).unwrap()
    }

    #[test]
    fn compact_round_trips() {
        let v = doc();
        assert_eq!(parse(&v.render(None)).unwrap(), v);
        assert_eq!(
            v.render(None),
            r#"{"a":[1,2.5,null],"b":{"c":"x\ny","d":[]},"e":true}"#
        );
    }

    #[test]
    fn pretty_round_trips_and_indents() {
        let v = doc();
        let s = v.render(Some(2));
        assert_eq!(parse(&s).unwrap(), v);
        assert!(s.contains("{\n  \"a\": [\n    1,"), "{s}");
        // Empty containers stay on one line.
        assert!(s.contains("\"d\": []"), "{s}");
    }

    #[test]
    fn integral_floats_keep_a_marker() {
        let mut out = String::new();
        write_float(3.0, &mut out);
        assert_eq!(out, "3.0");
        assert_eq!(parse("3.0").unwrap(), Json::Float(3.0));
    }

    #[test]
    fn float_precision_round_trips() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, 5e-324, -2.5e17] {
            let mut out = String::new();
            write_float(f, &mut out);
            assert_eq!(out.parse::<f64>().unwrap(), f, "{out}");
        }
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::Float(f64::NAN).render(None), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(None), "null");
    }

    #[test]
    fn control_characters_escaped() {
        let v = Json::Str("a\u{0001}b".to_string());
        assert_eq!(v.render(None), r#""a\u0001b""#);
        assert_eq!(parse(&v.render(None)).unwrap(), v);
    }
}
