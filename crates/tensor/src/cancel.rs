//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, clonable handle that a caller (or a
//! deadline measured on the `sa_trace` clock) can trip at any time.
//! Long-running operations *cooperate*: they check the token at natural
//! chunk boundaries — the worker pool before every chunk claim
//! ([`crate::pool::try_parallel_for`] and friends), chunked prefill
//! before every sequence chunk — and return a typed
//! [`SaError::Cancelled`] / [`SaError::DeadlineExceeded`] carrying
//! partial-progress stats instead of completing. Nothing is ever torn
//! down mid-chunk, so a cancelled operation leaves no half-written
//! in-place state behind a successful `Ok`.
//!
//! ## Scoped installation
//!
//! The pool primitives are called from deep inside the kernels, far from
//! any function signature that could carry a token. [`install`] binds a
//! token to the *current thread* for the lifetime of the returned guard;
//! [`current`] reads it back. The pool reads the installed token once at
//! entry (on the calling thread) and shares it with its scoped workers,
//! so the thread-local never needs to propagate across threads.
//!
//! ## Determinism
//!
//! A token that is already tripped when an operation starts produces a
//! deterministic outcome (`completed == 0`) at every thread count. A
//! token tripped mid-flight stops the operation within one chunk of the
//! trip; exactly *which* chunk count it reports depends on scheduling,
//! so deterministic harnesses (the serve scheduler's ledger) only record
//! the outcome *category*, which is scheduling-independent.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::SaError;

/// Why a token reports itself as tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// The caller invoked [`CancelToken::cancel`].
    Caller,
    /// The deadline on the `sa_trace` clock passed.
    Deadline,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Absolute deadline on the `sa_trace::clock::now_ns` timeline;
    /// `u64::MAX` means "no deadline".
    deadline_ns: AtomicU64,
}

/// A clonable cancellation handle; all clones share one state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that never trips on its own (no deadline).
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// A token with an absolute deadline on the
    /// [`sa_trace::clock::now_ns`] timeline.
    pub fn with_deadline_ns(deadline_ns: u64) -> Self {
        let t = CancelToken::new();
        t.inner.deadline_ns.store(deadline_ns, Ordering::SeqCst);
        t
    }

    /// A token whose deadline is `ms` milliseconds from now (trace
    /// clock). Saturates instead of overflowing.
    pub fn with_deadline_in_ms(ms: u64) -> Self {
        let now = sa_trace::clock::now_ns();
        Self::with_deadline_ns(now.saturating_add(ms.saturating_mul(1_000_000)))
    }

    /// Trips the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// The absolute deadline, if one was set.
    pub fn deadline_ns(&self) -> Option<u64> {
        match self.inner.deadline_ns.load(Ordering::SeqCst) {
            u64::MAX => None,
            d => Some(d),
        }
    }

    /// Why the token is tripped, or `None` while it is live. A caller
    /// cancellation takes precedence over a simultaneous deadline expiry
    /// so the outcome is stable once observed.
    pub fn tripped(&self) -> Option<CancelKind> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(CancelKind::Caller);
        }
        let deadline = self.inner.deadline_ns.load(Ordering::Relaxed);
        if deadline != u64::MAX && sa_trace::clock::now_ns() >= deadline {
            return Some(CancelKind::Deadline);
        }
        None
    }

    /// True once the token is tripped (by either path).
    pub fn is_cancelled(&self) -> bool {
        self.tripped().is_some()
    }

    /// The cooperative checkpoint: `Ok(())` while live, or the typed
    /// error carrying `site` and the caller's partial-progress counters.
    ///
    /// # Errors
    ///
    /// [`SaError::Cancelled`] after [`CancelToken::cancel`],
    /// [`SaError::DeadlineExceeded`] after the deadline passes.
    pub fn check(
        &self,
        site: &'static str,
        completed: usize,
        total: usize,
    ) -> Result<(), SaError> {
        match self.tripped() {
            None => Ok(()),
            Some(CancelKind::Caller) => Err(SaError::Cancelled {
                site,
                completed,
                total,
            }),
            Some(CancelKind::Deadline) => Err(SaError::DeadlineExceeded {
                site,
                completed,
                total,
            }),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Guard returned by [`install`]; restores the previously installed
/// token (if any) on drop, including on unwind.
pub struct CancelScope {
    prev: Option<CancelToken>,
    restored: bool,
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        if !self.restored {
            self.restored = true;
            let prev = self.prev.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Installs `token` as the current thread's cancellation token until the
/// returned guard drops. Nests: an inner install shadows the outer one
/// and the outer token is restored when the inner guard drops.
pub fn install(token: &CancelToken) -> CancelScope {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token.clone()));
    CancelScope {
        prev,
        restored: false,
    }
}

/// The token installed on the current thread, if any.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.tripped(), None);
        assert_eq!(t.deadline_ns(), None);
        assert!(t.check("site", 0, 10).is_ok());
    }

    #[test]
    fn cancel_trips_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert_eq!(clone.tripped(), Some(CancelKind::Caller));
        match clone.check("prefill", 3, 7) {
            Err(SaError::Cancelled {
                site,
                completed,
                total,
            }) => {
                assert_eq!(site, "prefill");
                assert_eq!((completed, total), (3, 7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_trips_on_trace_clock() {
        // A deadline in the past (trace clock) is already tripped.
        let now = sa_trace::clock::now_ns();
        let t = CancelToken::with_deadline_ns(now.saturating_sub(1));
        assert_eq!(t.tripped(), Some(CancelKind::Deadline));
        assert!(matches!(
            t.check("pool", 0, 4),
            Err(SaError::DeadlineExceeded {
                site: "pool",
                completed: 0,
                total: 4
            })
        ));
        // A far-future deadline is live.
        let t = CancelToken::with_deadline_in_ms(u64::MAX / 4_000_000);
        assert!(!t.is_cancelled());
        assert!(t.deadline_ns().is_some());
    }

    #[test]
    fn caller_cancel_wins_over_deadline() {
        let now = sa_trace::clock::now_ns();
        let t = CancelToken::with_deadline_ns(now.saturating_sub(1));
        t.cancel();
        assert_eq!(t.tripped(), Some(CancelKind::Caller));
    }

    #[test]
    fn install_scopes_and_nests() {
        assert!(current().is_none());
        let outer = CancelToken::new();
        {
            let _g = install(&outer);
            let seen = current().expect("outer installed");
            assert!(Arc::ptr_eq(&seen.inner, &outer.inner));
            let inner = CancelToken::new();
            {
                let _g2 = install(&inner);
                let seen = current().expect("inner installed");
                assert!(Arc::ptr_eq(&seen.inner, &inner.inner));
            }
            let seen = current().expect("outer restored");
            assert!(Arc::ptr_eq(&seen.inner, &outer.inner));
        }
        assert!(current().is_none());
    }

    #[test]
    fn install_restores_on_unwind() {
        let t = CancelToken::new();
        let caught = std::panic::catch_unwind(|| {
            let _g = install(&t);
            panic!("unwind through the scope");
        });
        assert!(caught.is_err());
        assert!(current().is_none(), "scope must restore on unwind");
    }

    #[test]
    fn token_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CancelToken>();
    }
}
