//! A property-testing mini-harness: the hermetic replacement for
//! `proptest` (see DESIGN.md, "Hermetic build policy").
//!
//! A property is a closure over a [`Gen`] that draws whatever random
//! inputs it needs and asserts with the ordinary `assert!` family.
//! [`run_cases`] runs it over `CASES` (32) deterministically derived
//! seeds; when a case fails, the harness prints the case's seed and a
//! one-line reproduction recipe before propagating the panic:
//!
//! ```text
//! property 'softmax_rows_sum_to_one' failed at case 17/32
//!   rerun just this case with: SA_PROP_SEED=0x8c5f... cargo test ...
//! ```
//!
//! Environment knobs:
//!
//! - `SA_PROP_SEED=<u64, 0x-hex ok>` — run each property once, on exactly
//!   that seed (the failure-reproduction path);
//! - `SA_PROP_CASES=<n>` — override the case count (e.g. a nightly soak
//!   at 10_000 cases).
//!
//! There is no shrinking: cases are independent and seeds reproduce a
//! failure exactly, which has proven enough at this input scale — sizes
//! are small by construction, not by shrinkage.
//!
//! ```
//! use sa_tensor::check::run_cases;
//!
//! run_cases("addition_commutes", |g| {
//!     let a = g.f32_in(-100.0, 100.0);
//!     let b = g.f32_in(-100.0, 100.0);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::xoshiro::splitmix64;
use crate::DeterministicRng;

/// Default number of seeded cases per property.
pub const CASES: usize = 32;

/// The per-case random input source handed to a property.
///
/// Wraps a [`DeterministicRng`] with the small vocabulary of draws the
/// test suites need. Ranges follow the `lo..hi` half-open convention.
#[derive(Debug)]
pub struct Gen {
    rng: DeterministicRng,
    seed: u64,
}

impl Gen {
    /// A generator for the given case seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: DeterministicRng::new(seed),
            seed,
        }
    }

    /// The seed this case was derived from (printed on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Direct access to the underlying distribution helpers.
    pub fn rng(&mut self) -> &mut DeterministicRng {
        &mut self.rng
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in requires lo < hi, got {lo}..{hi}");
        lo + self.rng.index(hi - lo)
    }

    /// Uniform even `usize` in `[lo, hi)` (for head dimensions, which
    /// RoPE requires to be even).
    pub fn even_in(&mut self, lo: usize, hi: usize) -> usize {
        let v = self.usize_in(lo, hi);
        if v % 2 == 0 {
            v
        } else if v + 1 < hi {
            v + 1
        } else {
            v - 1
        }
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "u64_in requires lo < hi, got {lo}..{hi}");
        lo + self.rng.next_u64() % (hi - lo)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.uniform_range(lo, hi)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.rng.chance(p)
    }

    /// A vector of uniform `f32` draws with a length drawn from
    /// `[min_len, max_len)`.
    pub fn vec_f32(&mut self, lo: f32, hi: f32, min_len: usize, max_len: usize) -> Vec<f32> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.f32_in(lo, hi)).collect()
    }

    /// A vector of uniform `usize` draws with a length drawn from
    /// `[min_len, max_len)`.
    pub fn vec_usize(&mut self, lo: usize, hi: usize, min_len: usize, max_len: usize) -> Vec<usize> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.usize_in(lo, hi)).collect()
    }
}

/// Derives the seed of case `i` of the named property: an FNV-1a hash of
/// the name, mixed with the case index through `splitmix64` so cases are
/// decorrelated across both properties and indices.
pub fn case_seed(name: &str, case: usize) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut state = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(v) => Some(v),
        // Failing the test run loudly is the point: a malformed repro
        // seed must never silently fall back to the full case sweep.
        Err(_) => std::panic::panic_any(format!(
            "{name} must be a u64 (decimal or 0x-hex), got {raw:?}"
        )),
    }
}

/// Runs `property` over [`CASES`] deterministically seeded cases (or
/// `SA_PROP_CASES`; or exactly once on `SA_PROP_SEED`). On failure,
/// prints the case seed and reproduction recipe, then re-panics.
pub fn run_cases<F: Fn(&mut Gen)>(name: &str, property: F) {
    let cases = env_u64("SA_PROP_CASES").map_or(CASES, |n| n as usize);
    run_cases_n(name, cases, property)
}

/// [`run_cases`] with an explicit case count (still overridden by the
/// `SA_PROP_SEED` single-case environment knob).
pub fn run_cases_n<F: Fn(&mut Gen)>(name: &str, cases: usize, property: F) {
    if let Some(seed) = env_u64("SA_PROP_SEED") {
        let mut g = Gen::new(seed);
        property(&mut g);
        return;
    }
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut g = Gen::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut g);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "property '{name}' failed at case {}/{cases} (seed {seed:#018x})\n  \
                 rerun just this case with: SA_PROP_SEED={seed:#x} cargo test {name}",
                case + 1
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("p", 0), case_seed("p", 0));
        assert_ne!(case_seed("p", 0), case_seed("p", 1));
        assert_ne!(case_seed("p", 0), case_seed("q", 0));
    }

    #[test]
    fn gen_ranges_respected() {
        let mut g = Gen::new(1);
        for _ in 0..1000 {
            let u = g.usize_in(3, 9);
            assert!((3..9).contains(&u));
            let f = g.f32_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&f));
            let e = g.even_in(1, 10);
            assert!(e % 2 == 0 && (1..10).contains(&e), "{e}");
        }
        let v = g.vec_f32(0.0, 1.0, 2, 5);
        assert!((2..5).contains(&v.len()));
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0usize);
        run_cases_n("count_cases", 7, |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 7);
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let result = std::panic::catch_unwind(|| {
            run_cases_n("always_fails", 3, |g| {
                // Make the failure depend on the drawn input so the
                // harness exercises a real draw.
                let x = g.f32_in(0.0, 1.0);
                assert!(x < 0.0, "drew {x}");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_case_count_meets_floor() {
        assert!(CASES >= 32);
    }
}
