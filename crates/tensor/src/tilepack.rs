//! Contiguous gather scratch for scattered K/V rows ("tile packing").
//!
//! The tiled block-sparse kernel reads two kinds of key/value rows: the
//! contiguous local-window band (already adjacent in the row-major
//! [`Matrix`]) and the scattered sink/stripe columns, whose rows are
//! strewn across the whole tensor. A [`TilePack`] gathers the scattered
//! rows once into one contiguous, cache-sized buffer so the per-tile
//! inner loops stream packed memory instead of chasing indices.
//!
//! The buffer is reusable: repacking with the same or a smaller shape
//! reuses the existing allocation, so a kernel can hold one `TilePack`
//! per operand across many calls. Packed rows are bitwise copies of the
//! source rows — packing never changes a dot product's result.

use crate::{Matrix, TensorError};

/// A reusable, contiguous gather buffer of matrix rows.
///
/// # Example
///
/// ```
/// use sa_tensor::{Matrix, TilePack};
///
/// # fn main() -> Result<(), sa_tensor::TensorError> {
/// let m = Matrix::from_fn(8, 4, |i, _| i as f32);
/// let mut pack = TilePack::new();
/// pack.pack_rows(&m, &[6, 0, 3])?;
/// assert_eq!(pack.rows(), 3);
/// assert_eq!(pack.row(0), m.row(6));
/// assert_eq!(pack.row(2), m.row(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TilePack {
    data: Vec<f32>,
    rows: usize,
    width: usize,
}

impl TilePack {
    /// An empty pack holding no rows.
    pub fn new() -> Self {
        TilePack::default()
    }

    /// Gathers `indices` rows of `src` into the pack, in order, reusing
    /// the existing allocation when possible.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any index is
    /// `>= src.rows()`; the pack is left empty in that case.
    pub fn pack_rows(&mut self, src: &Matrix, indices: &[usize]) -> Result<(), TensorError> {
        self.data.clear();
        self.rows = 0;
        self.width = src.cols();
        if let Some(&bad) = indices.iter().find(|&&i| i >= src.rows()) {
            return Err(TensorError::IndexOutOfBounds {
                op: "TilePack::pack_rows",
                index: bad,
                bound: src.rows(),
            });
        }
        self.data.reserve(indices.len() * self.width);
        for &i in indices {
            self.data.extend_from_slice(src.row(i));
        }
        self.rows = indices.len();
        Ok(())
    }

    /// Packs the contiguous row range `[start, end)` of `src` (a plain
    /// block copy; provided so window tiles can use the same scratch
    /// type as scattered stripes).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `start > end` or
    /// `end > src.rows()`; the pack is left empty in that case.
    pub fn pack_row_range(
        &mut self,
        src: &Matrix,
        start: usize,
        end: usize,
    ) -> Result<(), TensorError> {
        self.data.clear();
        self.rows = 0;
        self.width = src.cols();
        if start > end || end > src.rows() {
            return Err(TensorError::InvalidDimension {
                op: "TilePack::pack_row_range",
                what: format!("range {start}..{end} invalid for {} rows", src.rows()),
            });
        }
        self.data
            .extend_from_slice(&src.as_slice()[start * self.width..end * self.width]);
        self.rows = end - start;
        Ok(())
    }

    /// Number of packed rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Width (columns) of each packed row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// `true` when no rows are packed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrowed view of packed row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "packed row {i} out of bounds (< {})", self.rows);
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// The packed rows as one contiguous slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Drops all rows but keeps the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_rows_in_order_bitwise() {
        let m = Matrix::from_fn(6, 3, |i, j| (i * 10 + j) as f32);
        let mut p = TilePack::new();
        p.pack_rows(&m, &[5, 1, 1]).unwrap();
        assert_eq!(p.rows(), 3);
        assert_eq!(p.width(), 3);
        assert_eq!(p.row(0), m.row(5));
        assert_eq!(p.row(1), m.row(1));
        assert_eq!(p.row(2), m.row(1));
        assert_eq!(p.as_slice().len(), 9);
    }

    #[test]
    fn out_of_bounds_index_is_typed_error() {
        let m = Matrix::zeros(4, 2);
        let mut p = TilePack::new();
        let err = p.pack_rows(&m, &[0, 4]).unwrap_err();
        assert!(matches!(err, TensorError::IndexOutOfBounds { index: 4, .. }));
        assert!(p.is_empty());
    }

    #[test]
    fn pack_range_copies_block() {
        let m = Matrix::from_fn(5, 2, |i, _| i as f32);
        let mut p = TilePack::new();
        p.pack_row_range(&m, 1, 4).unwrap();
        assert_eq!(p.rows(), 3);
        assert_eq!(p.row(0), m.row(1));
        assert_eq!(p.row(2), m.row(3));
        assert!(p.pack_row_range(&m, 3, 2).is_err());
        assert!(p.pack_row_range(&m, 0, 6).is_err());
    }

    #[test]
    fn reuse_keeps_allocation_and_resets_shape() {
        let m = Matrix::from_fn(8, 4, |i, j| (i + j) as f32);
        let mut p = TilePack::new();
        p.pack_rows(&m, &[0, 1, 2, 3, 4]).unwrap();
        let cap = p.data.capacity();
        p.pack_rows(&m, &[7]).unwrap();
        assert_eq!(p.rows(), 1);
        assert_eq!(p.row(0), m.row(7));
        assert!(p.data.capacity() >= cap.min(4));
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.as_slice().len(), 0);
    }

    #[test]
    fn empty_pack_and_empty_indices() {
        let m = Matrix::zeros(3, 2);
        let mut p = TilePack::new();
        assert!(p.is_empty());
        p.pack_rows(&m, &[]).unwrap();
        assert_eq!(p.rows(), 0);
        assert_eq!(p.width(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_access_out_of_bounds_panics() {
        let p = TilePack::new();
        let _ = p.row(0);
    }
}
