use crate::TensorError;

/// A dense, row-major matrix of `f32`.
///
/// `Matrix` is the single tensor type in this workspace. It is deliberately
/// minimal: two dimensions, contiguous storage, and cheap row views. The
/// attention kernels treat a `(S, d)` matrix as a stack of `S` token
/// embeddings of head dimension `d`.
///
/// # Example
///
/// ```
/// use sa_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// Zero-sized dimensions are allowed and produce an empty matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidDimension {
                op: "Matrix::from_vec",
                what: format!(
                    "data length {} does not match {rows}x{cols} = {}",
                    data.len(),
                    rows * cols
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if the rows have unequal
    /// lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, TensorError> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(TensorError::InvalidDimension {
                    op: "Matrix::from_rows",
                    what: format!("row {i} has length {}, expected {cols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// The identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row index {i} out of bounds (< {})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row index {i} out of bounds (< {})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major data slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col_to_vec(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "col index {j} out of bounds (< {})", self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Returns a new matrix that is the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Returns a new matrix containing the selected rows, in order.
    ///
    /// Used by the stage-1 query sampler to extract the strided query rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any index is `>= rows`.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Matrix, TensorError> {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.rows {
                return Err(TensorError::IndexOutOfBounds {
                    op: "Matrix::gather_rows",
                    index: src,
                    bound: self.rows,
                });
            }
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(out)
    }

    /// Returns a new matrix containing rows `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `start > end` or
    /// `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Matrix, TensorError> {
        if start > end || end > self.rows {
            return Err(TensorError::InvalidDimension {
                op: "Matrix::slice_rows",
                what: format!("range {start}..{end} invalid for {} rows", self.rows),
            });
        }
        let data = self.data[start * self.cols..end * self.cols].to_vec();
        Ok(Matrix {
            rows: end - start,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise in-place addition of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<(), TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "Matrix::add_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm (`sqrt` of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.rows(), 0);
        let d = Matrix::default();
        assert!(d.is_empty());
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 5]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidDimension { .. }));
    }

    #[test]
    fn from_rows_requires_equal_lengths() {
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok.get(1, 1), 4.0);
        let err = Matrix::from_rows(&[vec![1.0], vec![2.0, 3.0]]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidDimension { .. }));
        let empty = Matrix::from_rows(&[]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn row_views() {
        let mut m = Matrix::from_fn(2, 2, |i, j| (i + j) as f32);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.row(2);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let g = m.gather_rows(&[3, 0, 3]).unwrap();
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[3.0, 3.0]);
        assert!(m.gather_rows(&[4]).is_err());
    }

    #[test]
    fn slice_rows_bounds() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let s = m.slice_rows(1, 3).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[1.0, 1.0]);
        assert!(m.slice_rows(3, 2).is_err());
        assert!(m.slice_rows(0, 5).is_err());
        assert_eq!(m.slice_rows(2, 2).unwrap().rows(), 0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.get(0, 0), 3.0);
        a.scale_in_place(0.5);
        assert_eq!(a.get(1, 1), 1.5);
        let c = Matrix::zeros(1, 2);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn col_to_vec_extracts_column() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        assert_eq!(m.col_to_vec(1), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn into_vec_returns_data() {
        let m = Matrix::from_fn(1, 3, |_, j| j as f32);
        assert_eq!(m.into_vec(), vec![0.0, 1.0, 2.0]);
    }
}
