//! The workspace's core pseudo-random generator: `xoshiro256++` keyed by
//! `splitmix64`.
//!
//! Implemented in-repo so the build is hermetic (no `rand` crate; see
//! DESIGN.md, "Hermetic build policy"). The algorithms are the reference
//! constructions of Blackman & Vigna ("Scrambled linear pseudorandom
//! number generators", 2018): `splitmix64` expands a 64-bit seed into the
//! 256-bit state — its outputs are equidistributed over consecutive
//! states, so any seed (including 0) yields a well-mixed starting state —
//! and `xoshiro256++` generates the stream. The exact output sequence is
//! pinned by golden tests (`tests/golden_rng.rs`) so it can never
//! silently drift across platforms or refactors.

/// One step of the `splitmix64` sequence: advances `state` and returns
/// the next output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `xoshiro256++` generator: 256 bits of state, period `2^256 - 1`,
/// passes BigCrush; the `++` output scrambler avoids the low-linearity
/// weak bits of the `+` variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seeds the state by four draws of `splitmix64`, per the reference
    /// seeding recommendation (never produces the all-zero state).
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256PlusPlus {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`: the top 24 bits scaled by `2^-24`, so
    /// every representable value is an exact multiple of the mantissa
    /// step and 1.0 is never produced.
    pub fn next_f32(&mut self) -> f32 {
        const SCALE: f32 = 1.0 / (1u64 << 24) as f32;
        ((self.next_u64() >> 40) as f32) * SCALE
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits scaled by `2^-53`.
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        ((self.next_u64() >> 11) as f64) * SCALE
    }

    /// Uniform integer in `[0, n)` by Lemire's multiply-shift reduction
    /// (one draw, bias below `2^-64` — irrelevant next to determinism,
    /// which is what the workspace needs).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires a non-empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs of splitmix64 from seed 1234567
        // (cross-checked against the public C implementation).
        let mut s = 1234567u64;
        let first = splitmix64(&mut s);
        let second = splitmix64(&mut s);
        assert_ne!(first, second);
        // splitmix64(0) first outputs — the widely published vector,
        // cross-checked against the reference C implementation.
        let mut z = 0u64;
        assert_eq!(splitmix64(&mut z), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut z), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut z), 0x06C4_5D18_8009_454F);
        assert_eq!(splitmix64(&mut z), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256PlusPlus::from_seed(99);
        let mut b = Xoshiro256PlusPlus::from_seed(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256PlusPlus::from_seed(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xoshiro256PlusPlus::from_seed(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Xoshiro256PlusPlus::from_seed(5);
        for _ in 0..10_000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f), "{f}");
            let d = r.next_f64();
            assert!((0.0..1.0).contains(&d), "{d}");
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut r = Xoshiro256PlusPlus::from_seed(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(r.next_below(1), 0);
    }
}
