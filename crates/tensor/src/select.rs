//! Selection primitives: arg-sort, top-k, prefix sums and `searchsorted`.
//!
//! These mirror the tensor ops in the paper's Algorithm 1
//! (`sort`, `top-k`, `searchsorted`, `gather`).

/// Indices that sort `xs` in descending order (stable for ties).
///
/// NaNs, if present, sort last.
pub fn argsort_desc(xs: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[b].partial_cmp(&xs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Indices of the `k` largest elements, in descending value order.
///
/// Uses a partial selection (`select_nth_unstable`) so the cost is
/// `O(n + k log k)` rather than a full sort. `k` larger than `xs.len()`
/// is clamped.
pub fn top_k_indices(xs: &[f32], k: usize) -> Vec<usize> {
    let k = k.min(xs.len());
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    if k < xs.len() {
        idx.select_nth_unstable_by(k - 1, |&a, &b| {
            xs[b].partial_cmp(&xs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
    }
    idx.sort_by(|&a, &b| {
        xs[b].partial_cmp(&xs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Smallest number of top elements of `xs` whose sum reaches
/// `threshold * sum(xs)`.
///
/// This is the "how many stripes do we need for CRA ≥ α" primitive: sort
/// descending, prefix-sum, count until coverage. Returns `xs.len()` when
/// the threshold cannot be met (e.g. `threshold > 1`) and 0 for an empty
/// slice or non-positive total.
pub fn top_k_threshold_count(xs: &[f32], threshold: f32) -> usize {
    let total: f32 = xs.iter().sum();
    if xs.is_empty() || total <= 0.0 {
        return 0;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let target = threshold * total;
    let mut acc = 0.0;
    for (i, v) in sorted.iter().enumerate() {
        acc += v;
        if acc >= target {
            return i + 1;
        }
    }
    xs.len()
}

/// Inclusive prefix sum: `out[i] = xs[0] + ... + xs[i]`.
///
/// The running accumulator is f64 (output stays f32): stage-2 filtering
/// searches this prefix for the α-coverage point, and at paper-scale
/// lengths (S ≥ 128k) an f32 running sum drifts enough to move the
/// `searchsorted` result.
pub fn prefix_sum(xs: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0.0f64;
    for &x in xs {
        acc += f64::from(x);
        out.push(acc as f32);
    }
    out
}

/// First index `i` in non-decreasing `sorted` with `sorted[i] >= value`.
///
/// Equivalent to `numpy.searchsorted(..., side='left')`. Returns
/// `sorted.len()` if every element is smaller.
pub fn searchsorted_left(sorted: &[f32], value: f32) -> usize {
    sorted.partition_point(|&x| x < value)
}

/// First index `i` in non-decreasing `sorted` with `sorted[i] > value`.
///
/// Equivalent to `numpy.searchsorted(..., side='right')`.
pub fn searchsorted_right(sorted: &[f32], value: f32) -> usize {
    sorted.partition_point(|&x| x <= value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_desc_basic() {
        let xs = [0.1, 3.0, -1.0, 3.0, 2.0];
        let idx = argsort_desc(&xs);
        assert_eq!(idx[0], 1); // stable: first 3.0 first
        assert_eq!(idx[1], 3);
        assert_eq!(idx[2], 4);
        assert_eq!(*idx.last().unwrap(), 2);
    }

    #[test]
    fn argsort_empty_and_single() {
        assert!(argsort_desc(&[]).is_empty());
        assert_eq!(argsort_desc(&[5.0]), vec![0]);
    }

    #[test]
    fn top_k_matches_argsort_prefix() {
        let xs: Vec<f32> = (0..50).map(|i| ((i * 37) % 50) as f32).collect();
        for k in [0, 1, 5, 49, 50, 100] {
            let got = top_k_indices(&xs, k);
            let want: Vec<usize> = argsort_desc(&xs).into_iter().take(k).collect();
            let gv: Vec<f32> = got.iter().map(|&i| xs[i]).collect();
            let wv: Vec<f32> = want.iter().map(|&i| xs[i]).collect();
            assert_eq!(gv, wv, "k={k}");
        }
    }

    #[test]
    fn top_k_descending_order() {
        let xs = [1.0, 5.0, 3.0, 2.0, 4.0];
        let idx = top_k_indices(&xs, 3);
        assert_eq!(idx, vec![1, 4, 2]);
    }

    #[test]
    fn threshold_count_covers_mass() {
        // mass: [0.5, 0.3, 0.1, 0.1]
        let xs = [0.1, 0.5, 0.1, 0.3];
        assert_eq!(top_k_threshold_count(&xs, 0.5), 1);
        assert_eq!(top_k_threshold_count(&xs, 0.79), 2);
        assert_eq!(top_k_threshold_count(&xs, 0.81), 3);
        assert_eq!(top_k_threshold_count(&xs, 1.0), 4);
        assert_eq!(top_k_threshold_count(&xs, 0.0), 1);
    }

    #[test]
    fn threshold_count_edge_cases() {
        assert_eq!(top_k_threshold_count(&[], 0.9), 0);
        assert_eq!(top_k_threshold_count(&[0.0, 0.0], 0.9), 0);
        // threshold > 1 cannot be met
        assert_eq!(top_k_threshold_count(&[1.0, 1.0], 1.5), 2);
    }

    #[test]
    fn prefix_sum_basic() {
        assert_eq!(prefix_sum(&[1.0, 2.0, 3.0]), vec![1.0, 3.0, 6.0]);
        assert!(prefix_sum(&[]).is_empty());
    }

    #[test]
    fn searchsorted_sides() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(searchsorted_left(&xs, 2.0), 1);
        assert_eq!(searchsorted_right(&xs, 2.0), 3);
        assert_eq!(searchsorted_left(&xs, 0.0), 0);
        assert_eq!(searchsorted_left(&xs, 9.0), 4);
        assert_eq!(searchsorted_right(&xs, 3.0), 4);
    }

    #[test]
    fn searchsorted_empty() {
        assert_eq!(searchsorted_left(&[], 1.0), 0);
        assert_eq!(searchsorted_right(&[], 1.0), 0);
    }
}
