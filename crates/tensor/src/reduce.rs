use crate::{pool, Matrix};

/// Sum of each row; returns a vector of length `rows`.
pub fn row_sum(m: &Matrix) -> Vec<f32> {
    (0..m.rows()).map(|i| m.row(i).iter().sum()).collect()
}

/// Maximum of each row (`-inf` for zero-column matrices).
pub fn row_max(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .map(|i| m.row(i).iter().copied().fold(f32::NEG_INFINITY, f32::max))
        .collect()
}

/// Minimum of each row (`+inf` for zero-column matrices).
pub fn row_min(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .map(|i| m.row(i).iter().copied().fold(f32::INFINITY, f32::min))
        .collect()
}

/// L1 norm (sum of absolute values) of each row.
pub fn row_l1_norms(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .map(|i| m.row(i).iter().map(|v| v.abs()).sum())
        .collect()
}

/// Sum of each column; returns a vector of length `cols`.
///
/// This is the *column-wise reduction* at the heart of SampleAttention's
/// stage-2 filtering: accumulated attention mass per key position.
/// Accumulation is in f64 (output stays f32): at paper-scale row counts
/// (S ≥ 128k) f32 running sums drift enough to move the stage-2
/// `searchsorted` α-threshold. Columns are independent, so the column
/// chunks run on the worker pool with bit-identical results.
pub fn col_sum(m: &Matrix) -> Vec<f32> {
    let cols = m.cols();
    let mut out = vec![0.0f32; cols];
    if cols == 0 {
        return out;
    }
    pool::parallel_for_rows(&mut out, 1, pool::row_grain(m.rows()), |col0, chunk| {
        let mut acc = vec![0.0f64; chunk.len()];
        for i in 0..m.rows() {
            let row = &m.row(i)[col0..col0 + chunk.len()];
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += f64::from(v);
            }
        }
        for (o, &a) in chunk.iter_mut().zip(&acc) {
            *o = a as f32;
        }
    });
    out
}

/// Mean of each column; returns zeros for an empty (0-row) matrix.
pub fn col_mean(m: &Matrix) -> Vec<f32> {
    let mut s = col_sum(m);
    if m.rows() > 0 {
        let inv = 1.0 / m.rows() as f32;
        for v in &mut s {
            *v *= inv;
        }
    }
    s
}

/// Multiplies each row `i` of `m` by `scales[i]` in place.
///
/// # Panics
///
/// Panics if `scales.len() != m.rows()`.
pub fn scale_rows_in_place(m: &mut Matrix, scales: &[f32]) {
    assert_eq!(scales.len(), m.rows(), "scale_rows_in_place length mismatch");
    for (i, &s) in scales.iter().enumerate() {
        for v in m.row_mut(i) {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, -2.0, 3.0], vec![0.5, 0.5, -1.0]]).unwrap()
    }

    #[test]
    fn row_reductions() {
        let m = sample();
        assert_eq!(row_sum(&m), vec![2.0, 0.0]);
        assert_eq!(row_max(&m), vec![3.0, 0.5]);
        assert_eq!(row_min(&m), vec![-2.0, -1.0]);
        assert_eq!(row_l1_norms(&m), vec![6.0, 2.0]);
    }

    #[test]
    fn col_reductions() {
        let m = sample();
        assert_eq!(col_sum(&m), vec![1.5, -1.5, 2.0]);
        assert_eq!(col_mean(&m), vec![0.75, -0.75, 1.0]);
    }

    #[test]
    fn empty_matrix_reductions() {
        let m = Matrix::zeros(0, 3);
        assert!(row_sum(&m).is_empty());
        assert_eq!(col_sum(&m), vec![0.0; 3]);
        assert_eq!(col_mean(&m), vec![0.0; 3]);
        let z = Matrix::zeros(2, 0);
        assert_eq!(row_max(&z), vec![f32::NEG_INFINITY; 2]);
        assert_eq!(row_min(&z), vec![f32::INFINITY; 2]);
    }

    #[test]
    fn scale_rows() {
        let mut m = sample();
        scale_rows_in_place(&mut m, &[2.0, -1.0]);
        assert_eq!(m.row(0), &[2.0, -4.0, 6.0]);
        assert_eq!(m.row(1), &[-0.5, -0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scale_rows_wrong_len() {
        let mut m = sample();
        scale_rows_in_place(&mut m, &[1.0]);
    }
}
