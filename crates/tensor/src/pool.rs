//! Hermetic scoped-thread worker pool.
//!
//! Zero-dependency data parallelism for the numeric hot paths: each
//! parallel call spawns up to `threads - 1` scoped `std::thread` workers
//! (the caller participates as the last worker), partitions the index
//! space into fixed-size chunks, and lets workers claim chunks
//! dynamically. Scoped threads keep the primitives 100 % safe Rust —
//! borrowed closures and slices flow straight into the workers, and the
//! scope guarantees they are joined before the call returns.
//!
//! ## Determinism contract
//!
//! Every primitive here is **bit-deterministic with respect to the serial
//! path** as long as the body treats chunks independently:
//!
//! - [`parallel_for`] / [`parallel_for_rows`] partition only across
//!   independent indices/rows; each index is processed exactly once by
//!   exactly one worker, with the body's own (serial) per-index
//!   arithmetic untouched. Which *thread* runs a chunk is scheduling
//!   noise; the result is not.
//! - [`parallel_map`] returns results in index order regardless of
//!   claiming order.
//! - Chunk sizes are chosen by the *caller* and must not depend on the
//!   thread count. Callers that reduce across chunks (e.g. stage-1
//!   sampling) therefore combine partials in chunk-index order, which
//!   makes the reduction independent of `SA_THREADS`.
//!
//! ## Panic containment
//!
//! The `try_*` variants ([`try_parallel_for`], [`try_parallel_map`],
//! [`try_parallel_for_rows`]) wrap every chunk execution — including the
//! single-threaded shortcut — in `catch_unwind`, so a panicking body (or
//! an injected fault from [`crate::fault`]) surfaces as
//! [`SaError::WorkerPanic`] carrying the call-site name and the panic
//! message instead of aborting the process. The first panic wins;
//! remaining chunks are skipped. Because the fault hook and the catch
//! run on the serial shortcut too, the *outcome* (error vs. success) is
//! thread-count independent. The non-`try` wrappers keep the historical
//! contract by re-raising the panic — with the typed `SaError` itself as
//! the payload for non-`WorkerPanic` errors, so an enclosing `try_*`
//! catch region recovers it intact.
//!
//! ## Cooperative cancellation
//!
//! Every `try_*` primitive reads the [`crate::cancel`] token installed
//! on the *calling* thread once at entry and checks it at every chunk
//! boundary: once before any work starts (so a pre-tripped token returns
//! a deterministic `completed == 0` error at every thread count) and
//! before each chunk claim thereafter. A tripped token surfaces as
//! [`SaError::Cancelled`] / [`SaError::DeadlineExceeded`] carrying the
//! chunk-progress counters; in-flight chunks finish (nothing is torn
//! down mid-chunk), so a cancelled call stops within one chunk of the
//! trip. When no token is installed the check is a single `None` test.
//!
//! ## Thread-count resolution
//!
//! `SA_THREADS` (env, read once) overrides
//! [`std::thread::available_parallelism`]. [`with_threads`] installs a
//! thread-local override for the duration of a closure — the equivalence
//! tests and the `bench_*` serial-vs-parallel columns use it to compare
//! `SA_THREADS=1` against the default within one process.
//!
//! Nested parallelism is suppressed: a pool worker that calls back into a
//! parallel primitive runs it serially (the outer partition already owns
//! the hardware). This is what lets `sa-model` parallelize over heads
//! while the kernels inside each head keep their own parallel entry
//! points.
//!
//! ## Observability
//!
//! When `sa_trace` is enabled, every pool call opens a span (category
//! `pool`, name = the call site) and each worker meters itself:
//! `pool.chunks` counts chunk executions, `pool.chunk_ns` is the
//! chunk-duration histogram, `pool.busy_ns` / `pool.idle_ns` split each
//! worker's lifetime into executing-chunks vs. waiting-for-work, and
//! `pool.panics_caught` counts contained panics. All probes are behind
//! [`sa_trace::enabled`] (one relaxed atomic load when disabled) and
//! none of them touch computed values, so the determinism contract above
//! is unaffected by tracing.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::error::SaError;
use crate::fault;

static HARDWARE_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Restores a thread-local `Cell` on drop (unwind-safe flag handling).
struct RestoreCell<T: Copy + 'static> {
    cell: &'static std::thread::LocalKey<Cell<T>>,
    prev: T,
}

impl<T: Copy + 'static> Drop for RestoreCell<T> {
    fn drop(&mut self) {
        let prev = self.prev;
        self.cell.with(|c| c.set(prev));
    }
}

fn mark_in_worker() -> RestoreCell<bool> {
    let prev = IN_WORKER.with(|c| c.replace(true));
    RestoreCell {
        cell: &IN_WORKER,
        prev,
    }
}

/// The process-wide worker count: `SA_THREADS` if set and valid, else
/// [`std::thread::available_parallelism`], else 1. Read once and cached.
pub fn hardware_threads() -> usize {
    *HARDWARE_THREADS.get_or_init(|| {
        match std::env::var("SA_THREADS") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => eprintln!("warning: ignoring invalid SA_THREADS={s:?} (want integer >= 1)"),
            },
            Err(std::env::VarError::NotPresent) => {}
            Err(e) => eprintln!("warning: ignoring unreadable SA_THREADS: {e}"),
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The worker count in effect for parallel calls issued from the current
/// thread: 1 inside a pool worker (no nesting), then any [`with_threads`]
/// override, then [`hardware_threads`].
pub fn current_threads() -> usize {
    if IN_WORKER.with(|c| c.get()) {
        return 1;
    }
    THREAD_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(hardware_threads)
}

/// Runs `f` with the calling thread's worker count pinned to `n`
/// (clamped to at least 1). Restores the previous setting afterwards,
/// including on unwind.
///
/// This is the in-process equivalent of setting `SA_THREADS=n`: the
/// equivalence tests compare `with_threads(1, ..)` against
/// `with_threads(2, ..)` and the default, and the bench binaries use it
/// for their serial-vs-parallel columns.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let _restore = RestoreCell {
        cell: &THREAD_OVERRIDE,
        prev,
    };
    f()
}

/// Minimum scalar operations a chunk should carry before parallel
/// dispatch pays for itself (thread spawn + claim overhead is on the
/// order of tens of microseconds per call).
pub const MIN_CHUNK_OPS: usize = 1 << 15;

/// Rows per chunk so that one chunk carries roughly [`MIN_CHUNK_OPS`]
/// scalar operations, given the per-row cost. Never returns 0.
///
/// The result depends only on the workload shape — never on the thread
/// count — so chunk boundaries (and therefore any chunk-ordered
/// reduction) are identical under every `SA_THREADS` setting.
pub fn row_grain(work_per_row: usize) -> usize {
    MIN_CHUNK_OPS.div_ceil(work_per_row.max(1)).max(1)
}

/// Renders a caught panic payload for [`SaError::WorkerPanic`].
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(e) = payload.downcast_ref::<SaError>() {
        e.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// First-failure slot shared by the workers of one pool call.
///
/// Stores the full typed [`SaError`], so a typed error re-raised through
/// a nested infallible wrapper (see [`repanic`]) survives intact —
/// a `Cancelled` raised three pool levels down still surfaces as
/// `Cancelled`, not as a stringified `WorkerPanic`.
struct FailureSlot(Mutex<Option<SaError>>);

impl FailureSlot {
    fn new() -> Self {
        FailureSlot(Mutex::new(None))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<SaError>> {
        match self.0.lock() {
            Ok(g) => g,
            // Panics are caught before they can poison this mutex, but a
            // poisoned slot must still drain rather than wedge the pool.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records a caught panic: a `Box<SaError>` payload (from a nested
    /// [`repanic`]) is preserved as-is; anything else becomes a
    /// [`SaError::WorkerPanic`] tagged with `site`.
    fn record(&self, site: &'static str, payload: Box<dyn std::any::Any + Send>) {
        sa_trace::counter_add!("pool.panics_caught", 1);
        let err = match payload.downcast::<SaError>() {
            Ok(e) => *e,
            Err(payload) => SaError::WorkerPanic {
                site,
                message: payload_message(payload),
            },
        };
        self.record_error(err);
    }

    /// Records a typed failure that is not a panic (cancellation observed
    /// at a chunk boundary). First failure wins, like panics.
    fn record_error(&self, err: SaError) {
        let mut slot = self.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    fn failed(&self) -> bool {
        self.lock().is_some()
    }

    fn finish(self) -> Result<(), SaError> {
        let err = match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        };
        match err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

/// Per-call cancellation state: the token installed on the calling
/// thread (if any), read once at pool entry and shared with the scoped
/// workers, plus the chunk-progress counter the error variants report.
struct CancelCheck {
    token: Option<crate::cancel::CancelToken>,
    completed: AtomicUsize,
    total: usize,
}

impl CancelCheck {
    fn new(total: usize) -> Self {
        CancelCheck {
            token: crate::cancel::current(),
            completed: AtomicUsize::new(0),
            total,
        }
    }

    /// True when the token tripped; records the typed error (first
    /// failure wins) so the workers drain. Called before every chunk
    /// claim, and once at entry so a pre-tripped token yields a
    /// deterministic `completed == 0` at every thread count.
    fn tripped(&self, site: &'static str, failure: &FailureSlot) -> bool {
        let Some(token) = &self.token else {
            return false;
        };
        match token.check(site, self.completed.load(Ordering::Relaxed), self.total) {
            Ok(()) => false,
            Err(e) => {
                failure.record_error(e);
                true
            }
        }
    }

    fn chunk_done(&self) {
        if self.token.is_some() {
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-worker utilization meter: times each chunk execution and, on
/// drop, splits the worker's lifetime into busy (executing chunks) and
/// idle (claiming/waiting) counters. Inert unless tracing was enabled
/// when the worker started.
struct WorkerMeter {
    traced: bool,
    start_ns: u64,
    busy_ns: u64,
}

impl WorkerMeter {
    fn new() -> Self {
        let traced = sa_trace::enabled();
        WorkerMeter {
            traced,
            start_ns: if traced { sa_trace::clock::now_ns() } else { 0 },
            busy_ns: 0,
        }
    }

    /// Runs one chunk, attributing its wall time to this worker's busy
    /// span and the global chunk histogram.
    fn chunk<R>(&mut self, f: impl FnOnce() -> R) -> R {
        if !self.traced {
            return f();
        }
        let t0 = sa_trace::clock::now_ns();
        let out = f();
        let dur = sa_trace::clock::now_ns().saturating_sub(t0);
        self.busy_ns += dur;
        sa_trace::counter_add!("pool.chunks", 1);
        sa_trace::histogram_record!("pool.chunk_ns", dur);
        out
    }
}

impl Drop for WorkerMeter {
    fn drop(&mut self) {
        if self.traced {
            let total = sa_trace::clock::now_ns().saturating_sub(self.start_ns);
            sa_trace::counter_add!("pool.busy_ns", self.busy_ns);
            sa_trace::counter_add!("pool.idle_ns", total.saturating_sub(self.busy_ns));
        }
    }
}

/// Raises the injected-fault panic for `site`. The *decision* is made
/// once at pool entry on the calling thread (`fault::should_panic` reads
/// the thread-local plan, which workers would not see); the panic itself
/// must run *inside* the catch region, so the decision is passed in.
fn injected_panic(site: &'static str) -> ! {
    std::panic::panic_any(format!("injected fault: forced worker panic at {site}"));
}

/// Re-raises a pool error from an infallible legacy wrapper.
///
/// `WorkerPanic` resumes with the original message (the historical
/// contract); any other typed error — notably `Cancelled` /
/// `DeadlineExceeded` from a cooperative checkpoint — panics with the
/// `SaError` itself as payload, so an enclosing `try_*` catch region
/// recovers the typed error intact instead of re-wrapping a string.
fn repanic(e: SaError) -> ! {
    match e {
        SaError::WorkerPanic { message, .. } => std::panic::resume_unwind(Box::new(message)),
        other => std::panic::panic_any(other),
    }
}

/// Applies `body` to every sub-range of `0..n`, partitioned into chunks
/// of `grain` indices, possibly on multiple threads, containing panics.
///
/// Identical partitioning to [`parallel_for`]; additionally, every chunk
/// execution (including the single-chunk serial shortcut) runs under
/// `catch_unwind` and consults the installed fault plan, so a panicking
/// body returns [`SaError::WorkerPanic`] tagged with `site` instead of
/// unwinding through the caller. After the first panic, unclaimed chunks
/// are skipped — callers must treat any partially written output as
/// garbage on `Err`.
pub fn try_parallel_for<F>(
    site: &'static str,
    n: usize,
    grain: usize,
    body: F,
) -> Result<(), SaError>
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return Ok(());
    }
    let _call = sa_trace::span_in("pool", site);
    let grain = grain.max(1);
    let threads = current_threads();
    let chunks = n.div_ceil(grain);
    let failure = FailureSlot::new();
    let cancel = CancelCheck::new(chunks);
    let inject = fault::should_panic(site);
    let guarded = |range: Range<usize>| {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                injected_panic(site);
            }
            body(range);
        })) {
            failure.record(site, payload);
        } else {
            cancel.chunk_done();
        }
    };
    if cancel.tripped(site, &failure) {
        return failure.finish();
    }
    if threads == 1 || n <= grain {
        WorkerMeter::new().chunk(|| guarded(0..n));
        return failure.finish();
    }
    let next = AtomicUsize::new(0);
    let run = || {
        let mut meter = WorkerMeter::new();
        loop {
            if failure.failed() || cancel.tripped(site, &failure) {
                break;
            }
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= chunks {
                break;
            }
            meter.chunk(|| guarded(c * grain..((c + 1) * grain).min(n)));
        }
    };
    std::thread::scope(|scope| {
        for _ in 0..threads.min(chunks) - 1 {
            scope.spawn(|| {
                let _worker = mark_in_worker();
                run();
                // Flush trace events before the scope observes this
                // thread as finished: thread::scope can return before
                // the TLS destructors that would otherwise flush run.
                sa_trace::flush_thread();
            });
        }
        let _worker = mark_in_worker();
        run();
    });
    failure.finish()
}

/// Maps `f` over `0..n` in index order, containing panics.
///
/// The panic-containment counterpart of [`parallel_map`]: chunk bodies
/// run under `catch_unwind` with the fault hook, and a panic anywhere
/// yields [`SaError::WorkerPanic`] (partial results are discarded).
pub fn try_parallel_map<T, F>(
    site: &'static str,
    n: usize,
    grain: usize,
    f: F,
) -> Result<Vec<T>, SaError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Ok(Vec::new());
    }
    let _call = sa_trace::span_in("pool", site);
    let grain = grain.max(1);
    let threads = current_threads();
    let chunks = n.div_ceil(grain);
    let failure = FailureSlot::new();
    let cancel = CancelCheck::new(chunks);
    let inject = fault::should_panic(site);
    let guarded_chunk = |c: usize| -> Option<(usize, Vec<T>)> {
        let range = c * grain..((c + 1) * grain).min(n);
        match catch_unwind(AssertUnwindSafe(|| {
            if inject {
                injected_panic(site);
            }
            range.map(&f).collect::<Vec<T>>()
        })) {
            Ok(part) => {
                cancel.chunk_done();
                Some((c, part))
            }
            Err(payload) => {
                failure.record(site, payload);
                None
            }
        }
    };
    let mut parts: Vec<(usize, Vec<T>)> = Vec::new();
    if cancel.tripped(site, &failure) {
        // Fall through to finish() with the recorded cancellation.
    } else if threads == 1 || chunks == 1 {
        let mut meter = WorkerMeter::new();
        parts.reserve(chunks);
        for c in 0..chunks {
            if c > 0 && cancel.tripped(site, &failure) {
                break;
            }
            match meter.chunk(|| guarded_chunk(c)) {
                Some(part) => parts.push(part),
                // First panic wins; skip the remaining chunks.
                None => break,
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let run = || {
            let mut meter = WorkerMeter::new();
            let mut mine: Vec<(usize, Vec<T>)> = Vec::new();
            loop {
                if failure.failed() || cancel.tripped(site, &failure) {
                    break;
                }
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                if let Some(part) = meter.chunk(|| guarded_chunk(c)) {
                    mine.push(part);
                }
            }
            mine
        };
        parts = std::thread::scope(|scope| {
            let helpers: Vec<_> = (0..threads.min(chunks) - 1)
                .map(|_| {
                    scope.spawn(|| {
                        let _worker = mark_in_worker();
                        let mine = run();
                        // See try_parallel_for: flush before the scope
                        // can observe this thread as finished.
                        sa_trace::flush_thread();
                        mine
                    })
                })
                .collect();
            let mine = {
                let _worker = mark_in_worker();
                run()
            };
            let mut all = mine;
            for h in helpers {
                match h.join() {
                    Ok(part) => all.extend(part),
                    Err(payload) => failure.record(site, payload),
                }
            }
            all
        });
    }
    failure.finish()?;
    parts.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(n);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    Ok(out)
}

/// Splits a row-major buffer into row chunks as [`parallel_for_rows`],
/// containing panics and validating arguments as errors.
///
/// Returns [`SaError::InvalidDimension`] (instead of panicking) when
/// `width == 0` with non-empty data or `data.len()` is not a multiple of
/// `width`, and [`SaError::WorkerPanic`] when a chunk body panics. On
/// `Err`, the buffer may be partially written and must be discarded.
pub fn try_parallel_for_rows<T, F>(
    site: &'static str,
    data: &mut [T],
    width: usize,
    grain_rows: usize,
    body: F,
) -> Result<(), SaError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return Ok(());
    }
    if width == 0 {
        return Err(SaError::InvalidDimension {
            op: site,
            what: "zero row width with non-empty data".to_string(),
        });
    }
    if data.len() % width != 0 {
        return Err(SaError::InvalidDimension {
            op: site,
            what: format!(
                "data length {} not a multiple of row width {width}",
                data.len()
            ),
        });
    }
    let _call = sa_trace::span_in("pool", site);
    let rows = data.len() / width;
    let grain = grain_rows.max(1);
    let threads = current_threads();
    let failure = FailureSlot::new();
    let cancel = CancelCheck::new(rows.div_ceil(grain));
    let inject = fault::should_panic(site);
    let guarded = |row0: usize, chunk: &mut [T]| {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                injected_panic(site);
            }
            body(row0, chunk);
        })) {
            failure.record(site, payload);
        } else {
            cancel.chunk_done();
        }
    };
    if cancel.tripped(site, &failure) {
        return failure.finish();
    }
    if threads == 1 || rows <= grain {
        WorkerMeter::new().chunk(|| guarded(0, data));
        return failure.finish();
    }
    let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(rows.div_ceil(grain));
    let mut rest = data;
    let mut row0 = 0usize;
    while !rest.is_empty() {
        let take_rows = grain.min(rows - row0);
        let (head, tail) = rest.split_at_mut(take_rows * width);
        chunks.push((row0, head));
        row0 += take_rows;
        rest = tail;
    }
    let n_chunks = chunks.len();
    let queue = Mutex::new(chunks);
    let pop = || match queue.lock() {
        Ok(mut q) => q.pop(),
        Err(poisoned) => poisoned.into_inner().pop(),
    };
    let run = || {
        let mut meter = WorkerMeter::new();
        loop {
            if failure.failed() || cancel.tripped(site, &failure) {
                break;
            }
            match pop() {
                Some((first_row, chunk)) => meter.chunk(|| guarded(first_row, chunk)),
                None => break,
            }
        }
    };
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_chunks) - 1 {
            scope.spawn(|| {
                let _worker = mark_in_worker();
                run();
                // See try_parallel_for: flush before the scope can
                // observe this thread as finished.
                sa_trace::flush_thread();
            });
        }
        let _worker = mark_in_worker();
        run();
    });
    failure.finish()
}

/// Applies `body` to every sub-range of `0..n`, partitioned into chunks
/// of `grain` indices, possibly on multiple threads.
///
/// Each index lands in exactly one chunk and each chunk is processed by
/// exactly one worker, so bodies that only touch per-index state are
/// bit-deterministic regardless of the thread count. Runs serially (one
/// `body(0..n)` call) when the pool is effectively single-threaded or
/// the range fits in one chunk.
///
/// A panicking body re-raises after all workers stop (see
/// [`try_parallel_for`] for the error-returning variant).
pub fn parallel_for<F>(n: usize, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if let Err(e) = try_parallel_for("parallel_for", n, grain, body) {
        repanic(e);
    }
}

/// Maps `f` over `0..n` and returns the results **in index order**,
/// regardless of which worker computed which chunk.
///
/// `grain` is the chunk size in indices (as in [`parallel_for`]). A
/// panicking body re-raises (see [`try_parallel_map`]).
pub fn parallel_map<T, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_parallel_map("parallel_map", n, grain, f) {
        Ok(out) => out,
        Err(e) => repanic(e),
    }
}

/// Splits a row-major buffer (`rows * width` elements) into chunks of
/// `grain_rows` consecutive rows and hands each chunk, with its first
/// row's index, to `body` — possibly on multiple threads.
///
/// This is the mutable-output primitive: the kernels pass a matrix's
/// backing slice and write disjoint row blocks concurrently, with no
/// `unsafe` (the chunks are real `split_at_mut` sub-slices). Runs
/// serially (one `body(0, data)` call) when the pool is effectively
/// single-threaded or everything fits in one chunk.
///
/// # Panics
///
/// Panics if `width == 0` while `data` is non-empty, or if `data.len()`
/// is not a multiple of `width` (see [`try_parallel_for_rows`] for the
/// error-returning variant). A panicking body re-raises.
pub fn parallel_for_rows<T, F>(data: &mut [T], width: usize, grain_rows: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if let Err(e) = try_parallel_for_rows("parallel_for_rows", data, width, grain_rows, body) {
        repanic(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn hardware_threads_at_least_one() {
        assert!(hardware_threads() >= 1);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
        // Clamped to >= 1.
        with_threads(0, || assert_eq!(current_threads(), 1));
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        for threads in [1, 2, 4] {
            with_threads(threads, || {
                let n = 103;
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                parallel_for(n, 7, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} threads {threads}");
                }
            });
        }
    }

    #[test]
    fn parallel_for_empty_and_single_chunk() {
        parallel_for(0, 4, |_| panic!("must not run on empty range"));
        let count = AtomicU64::new(0);
        parallel_for(3, 100, |r| {
            assert_eq!(r, 0..3);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for threads in [1, 2, 5] {
            let got = with_threads(threads, || parallel_map(100, 3, |i| i * i));
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads {threads}");
        }
        assert!(parallel_map(0, 1, |i| i).is_empty());
    }

    #[test]
    fn parallel_for_rows_writes_disjoint_chunks() {
        for threads in [1, 2, 4] {
            with_threads(threads, || {
                let rows = 33;
                let width = 5;
                let mut data = vec![0.0f32; rows * width];
                parallel_for_rows(&mut data, width, 4, |row0, chunk| {
                    for (local, row) in chunk.chunks_mut(width).enumerate() {
                        for v in row.iter_mut() {
                            *v += (row0 + local) as f32;
                        }
                    }
                });
                for i in 0..rows {
                    for j in 0..width {
                        assert_eq!(data[i * width + j], i as f32, "({i},{j}) threads {threads}");
                    }
                }
            });
        }
    }

    #[test]
    fn parallel_for_rows_empty_is_noop() {
        let mut data: Vec<f32> = Vec::new();
        parallel_for_rows(&mut data, 4, 2, |_, _| panic!("must not run"));
    }

    #[test]
    fn nested_parallel_calls_degrade_to_serial() {
        with_threads(4, || {
            parallel_for(8, 1, |_outer| {
                // Inside a worker the pool must report a single thread,
                // so nested calls cannot oversubscribe or deadlock.
                assert_eq!(current_threads(), 1);
                parallel_for(4, 1, |_inner| {});
            });
        });
    }

    #[test]
    fn row_grain_scales_inversely_with_row_cost() {
        assert_eq!(row_grain(MIN_CHUNK_OPS), 1);
        assert!(row_grain(1) >= MIN_CHUNK_OPS);
        assert!(row_grain(0) >= 1);
        assert!(row_grain(usize::MAX) >= 1);
    }

    #[test]
    fn try_parallel_for_catches_body_panic() {
        for threads in [1, 2, 4] {
            let err = with_threads(threads, || {
                try_parallel_for("site_x", 64, 4, |range| {
                    if range.contains(&17) {
                        panic!("chunk blew up");
                    }
                })
            })
            .expect_err("must surface the panic");
            match err {
                SaError::WorkerPanic { site, message } => {
                    assert_eq!(site, "site_x");
                    assert!(message.contains("chunk blew up"), "{message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn try_parallel_map_matches_plain_map_on_success() {
        for threads in [1, 3] {
            let got = with_threads(threads, || {
                try_parallel_map("site_m", 50, 4, |i| i * 3).expect("no faults")
            });
            let want: Vec<usize> = (0..50).map(|i| i * 3).collect();
            assert_eq!(got, want);
        }
        let err = try_parallel_map("site_m", 10, 2, |i| {
            if i == 5 {
                panic!("map body panic")
            }
            i
        });
        assert!(matches!(err, Err(SaError::WorkerPanic { .. })));
    }

    #[test]
    fn try_parallel_for_rows_validates_arguments() {
        let mut data = vec![0.0f32; 6];
        let err = try_parallel_for_rows("site_r", &mut data, 0, 1, |_, _| {});
        assert!(matches!(err, Err(SaError::InvalidDimension { .. })));
        let err = try_parallel_for_rows("site_r", &mut data, 4, 1, |_, _| {});
        assert!(matches!(err, Err(SaError::InvalidDimension { .. })));
        try_parallel_for_rows("site_r", &mut data, 3, 1, |_, chunk| {
            chunk.fill(1.0);
        })
        .expect("valid arguments");
        assert!(data.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn injected_fault_fires_at_every_thread_count() {
        let _guard = crate::fault::install(FaultPlan::new(1).worker_panic("faulty_site"));
        for threads in [1, 2, 4] {
            let err = with_threads(threads, || {
                try_parallel_for("faulty_site", 128, 8, |_range| {})
            })
            .expect_err("fault plan must force a panic");
            match err {
                SaError::WorkerPanic { site, message } => {
                    assert_eq!(site, "faulty_site");
                    assert!(message.contains("injected fault"), "{message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
            // Other sites are untouched.
            let ok = with_threads(threads, || {
                try_parallel_for("healthy_site", 128, 8, |_range| {})
            });
            assert!(ok.is_ok());
        }
    }

    #[test]
    fn traced_pool_calls_record_spans_and_utilization() {
        let _session = sa_trace::scoped();
        with_threads(2, || {
            parallel_for(64, 4, |_range| {
                std::hint::black_box(0u64);
            });
        });
        let snap = sa_trace::metrics::snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert_eq!(counter("pool.chunks"), 16, "64 indices / grain 4");
        assert!(counter("pool.busy_ns") > 0, "workers must report busy time");
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "pool.chunk_ns")
            .expect("chunk histogram registered");
        assert_eq!(hist.count, 16);
        let events = sa_trace::drain();
        assert!(
            events
                .iter()
                .any(|e| e.cat == "pool" && e.name == "parallel_for"),
            "pool call span missing"
        );
    }

    #[test]
    fn caught_panics_are_counted() {
        let _session = sa_trace::scoped();
        let err = try_parallel_for("count_site", 8, 2, |range| {
            if range.contains(&3) {
                panic!("boom");
            }
        });
        assert!(matches!(err, Err(SaError::WorkerPanic { .. })));
        assert_eq!(sa_trace::metrics::counter("pool.panics_caught").get(), 1);
    }

    #[test]
    fn pre_tripped_token_cancels_with_zero_progress_at_every_thread_count() {
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        for threads in [1, 2, 4] {
            let _scope = crate::cancel::install(&token);
            let err = with_threads(threads, || {
                try_parallel_for("cancel_site", 64, 4, |_range| {
                    panic!("body must never run on a pre-tripped token");
                })
            })
            .expect_err("tripped token must cancel");
            match err {
                SaError::Cancelled {
                    site,
                    completed,
                    total,
                } => {
                    assert_eq!(site, "cancel_site");
                    assert_eq!(completed, 0, "threads {threads}");
                    assert_eq!(total, 16);
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn expired_deadline_cancels_map_and_rows() {
        let now = sa_trace::clock::now_ns();
        let token = crate::cancel::CancelToken::with_deadline_ns(now.saturating_sub(1));
        let _scope = crate::cancel::install(&token);
        let err = try_parallel_map("map_site", 32, 4, |i| i);
        assert!(
            matches!(err, Err(SaError::DeadlineExceeded { completed: 0, .. })),
            "{err:?}"
        );
        let mut data = vec![0.0f32; 32];
        let err = try_parallel_for_rows("rows_site", &mut data, 4, 1, |_, _| {});
        assert!(
            matches!(err, Err(SaError::DeadlineExceeded { completed: 0, .. })),
            "{err:?}"
        );
    }

    #[test]
    fn mid_flight_cancel_stops_within_remaining_chunks() {
        // Trip the token from inside the first executing chunk: the
        // already-claimed chunks may finish, but completed progress never
        // reaches the full chunk count.
        for threads in [1, 2, 4] {
            let token = crate::cancel::CancelToken::new();
            let _scope = crate::cancel::install(&token);
            let executed = AtomicUsize::new(0);
            let chunks = 64usize;
            let err = with_threads(threads, || {
                try_parallel_map("trip_site", chunks, 1, |_i| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    token.cancel();
                })
            })
            .expect_err("must cancel");
            let ran = executed.load(Ordering::Relaxed);
            match err {
                SaError::Cancelled {
                    completed, total, ..
                } => {
                    assert_eq!(total, chunks);
                    assert!(completed < total, "completed {completed} of {total}");
                    // No more chunks execute than threads could have
                    // claimed before observing the trip.
                    assert!(ran <= threads + 1, "{ran} chunks ran on {threads} threads");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn no_token_means_no_cancellation() {
        assert!(crate::cancel::current().is_none());
        let out = try_parallel_map("free_site", 16, 4, |i| i * 2).expect("no token installed");
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn typed_error_survives_nested_repanic() {
        // A typed cancellation raised inside an infallible legacy wrapper
        // (repanic) must be recovered intact by an enclosing try_* catch
        // region, not re-wrapped as a stringified WorkerPanic.
        let err = try_parallel_map("outer_site", 1, 1, |_| {
            let inner = SaError::Cancelled {
                site: "inner_site",
                completed: 2,
                total: 5,
            };
            repanic(inner);
        })
        .expect_err("inner error must surface");
        assert_eq!(
            err,
            SaError::Cancelled {
                site: "inner_site",
                completed: 2,
                total: 5
            }
        );
    }

    #[test]
    fn worker_panic_repanic_keeps_message_contract() {
        let err = try_parallel_for("outer", 1, 1, |_| {
            repanic(SaError::WorkerPanic {
                site: "inner",
                message: "original boom".to_string(),
            });
        })
        .expect_err("panic must surface");
        match err {
            SaError::WorkerPanic { site, message } => {
                // Re-caught at the outer site with the original message.
                assert_eq!(site, "outer");
                assert!(message.contains("original boom"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn legacy_wrappers_repanic() {
        let caught = std::panic::catch_unwind(|| {
            parallel_for(8, 2, |_| panic!("legacy panic"));
        });
        let payload = caught.expect_err("must panic");
        assert!(payload_message(payload).contains("legacy panic"));
    }
}
