//! Hermetic scoped-thread worker pool.
//!
//! Zero-dependency data parallelism for the numeric hot paths: each
//! parallel call spawns up to `threads - 1` scoped `std::thread` workers
//! (the caller participates as the last worker), partitions the index
//! space into fixed-size chunks, and lets workers claim chunks
//! dynamically. Scoped threads keep the primitives 100 % safe Rust —
//! borrowed closures and slices flow straight into the workers, and the
//! scope guarantees they are joined before the call returns.
//!
//! ## Determinism contract
//!
//! Every primitive here is **bit-deterministic with respect to the serial
//! path** as long as the body treats chunks independently:
//!
//! - [`parallel_for`] / [`parallel_for_rows`] partition only across
//!   independent indices/rows; each index is processed exactly once by
//!   exactly one worker, with the body's own (serial) per-index
//!   arithmetic untouched. Which *thread* runs a chunk is scheduling
//!   noise; the result is not.
//! - [`parallel_map`] returns results in index order regardless of
//!   claiming order.
//! - Chunk sizes are chosen by the *caller* and must not depend on the
//!   thread count. Callers that reduce across chunks (e.g. stage-1
//!   sampling) therefore combine partials in chunk-index order, which
//!   makes the reduction independent of `SA_THREADS`.
//!
//! ## Thread-count resolution
//!
//! `SA_THREADS` (env, read once) overrides
//! [`std::thread::available_parallelism`]. [`with_threads`] installs a
//! thread-local override for the duration of a closure — the equivalence
//! tests and the `bench_*` serial-vs-parallel columns use it to compare
//! `SA_THREADS=1` against the default within one process.
//!
//! Nested parallelism is suppressed: a pool worker that calls back into a
//! parallel primitive runs it serially (the outer partition already owns
//! the hardware). This is what lets `sa-model` parallelize over heads
//! while the kernels inside each head keep their own parallel entry
//! points.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static HARDWARE_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Restores a thread-local `Cell` on drop (unwind-safe flag handling).
struct RestoreCell<T: Copy + 'static> {
    cell: &'static std::thread::LocalKey<Cell<T>>,
    prev: T,
}

impl<T: Copy + 'static> Drop for RestoreCell<T> {
    fn drop(&mut self) {
        let prev = self.prev;
        self.cell.with(|c| c.set(prev));
    }
}

fn mark_in_worker() -> RestoreCell<bool> {
    let prev = IN_WORKER.with(|c| c.replace(true));
    RestoreCell {
        cell: &IN_WORKER,
        prev,
    }
}

/// The process-wide worker count: `SA_THREADS` if set and valid, else
/// [`std::thread::available_parallelism`], else 1. Read once and cached.
pub fn hardware_threads() -> usize {
    *HARDWARE_THREADS.get_or_init(|| {
        match std::env::var("SA_THREADS") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => eprintln!("warning: ignoring invalid SA_THREADS={s:?} (want integer >= 1)"),
            },
            Err(std::env::VarError::NotPresent) => {}
            Err(e) => eprintln!("warning: ignoring unreadable SA_THREADS: {e}"),
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The worker count in effect for parallel calls issued from the current
/// thread: 1 inside a pool worker (no nesting), then any [`with_threads`]
/// override, then [`hardware_threads`].
pub fn current_threads() -> usize {
    if IN_WORKER.with(|c| c.get()) {
        return 1;
    }
    THREAD_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(hardware_threads)
}

/// Runs `f` with the calling thread's worker count pinned to `n`
/// (clamped to at least 1). Restores the previous setting afterwards,
/// including on unwind.
///
/// This is the in-process equivalent of setting `SA_THREADS=n`: the
/// equivalence tests compare `with_threads(1, ..)` against
/// `with_threads(2, ..)` and the default, and the bench binaries use it
/// for their serial-vs-parallel columns.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let _restore = RestoreCell {
        cell: &THREAD_OVERRIDE,
        prev,
    };
    f()
}

/// Minimum scalar operations a chunk should carry before parallel
/// dispatch pays for itself (thread spawn + claim overhead is on the
/// order of tens of microseconds per call).
pub const MIN_CHUNK_OPS: usize = 1 << 15;

/// Rows per chunk so that one chunk carries roughly [`MIN_CHUNK_OPS`]
/// scalar operations, given the per-row cost. Never returns 0.
///
/// The result depends only on the workload shape — never on the thread
/// count — so chunk boundaries (and therefore any chunk-ordered
/// reduction) are identical under every `SA_THREADS` setting.
pub fn row_grain(work_per_row: usize) -> usize {
    MIN_CHUNK_OPS.div_ceil(work_per_row.max(1)).max(1)
}

/// Applies `body` to every sub-range of `0..n`, partitioned into chunks
/// of `grain` indices, possibly on multiple threads.
///
/// Each index lands in exactly one chunk and each chunk is processed by
/// exactly one worker, so bodies that only touch per-index state are
/// bit-deterministic regardless of the thread count. Runs serially (one
/// `body(0..n)` call) when the pool is effectively single-threaded or
/// the range fits in one chunk.
pub fn parallel_for<F>(n: usize, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    let threads = current_threads();
    if threads == 1 || n <= grain {
        body(0..n);
        return;
    }
    let chunks = n.div_ceil(grain);
    let next = AtomicUsize::new(0);
    let run = || loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= chunks {
            break;
        }
        body(c * grain..((c + 1) * grain).min(n));
    };
    std::thread::scope(|scope| {
        for _ in 0..threads.min(chunks) - 1 {
            scope.spawn(|| {
                let _worker = mark_in_worker();
                run();
            });
        }
        let _worker = mark_in_worker();
        run();
    });
}

/// Maps `f` over `0..n` and returns the results **in index order**,
/// regardless of which worker computed which chunk.
///
/// `grain` is the chunk size in indices (as in [`parallel_for`]).
pub fn parallel_map<T, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let grain = grain.max(1);
    let threads = current_threads();
    if threads == 1 || n <= grain {
        return (0..n).map(f).collect();
    }
    let chunks = n.div_ceil(grain);
    let next = AtomicUsize::new(0);
    let run = || {
        let mut parts: Vec<(usize, Vec<T>)> = Vec::new();
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= chunks {
                break;
            }
            let range = c * grain..((c + 1) * grain).min(n);
            parts.push((c, range.map(&f).collect()));
        }
        parts
    };
    let mut parts = std::thread::scope(|scope| {
        let helpers: Vec<_> = (0..threads.min(chunks) - 1)
            .map(|_| {
                scope.spawn(|| {
                    let _worker = mark_in_worker();
                    run()
                })
            })
            .collect();
        let mine = {
            let _worker = mark_in_worker();
            run()
        };
        let mut all = mine;
        for h in helpers {
            all.extend(h.join().expect("pool worker panicked"));
        }
        all
    });
    parts.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(n);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    out
}

/// Splits a row-major buffer (`rows * width` elements) into chunks of
/// `grain_rows` consecutive rows and hands each chunk, with its first
/// row's index, to `body` — possibly on multiple threads.
///
/// This is the mutable-output primitive: the kernels pass a matrix's
/// backing slice and write disjoint row blocks concurrently, with no
/// `unsafe` (the chunks are real `split_at_mut` sub-slices). Runs
/// serially (one `body(0, data)` call) when the pool is effectively
/// single-threaded or everything fits in one chunk.
///
/// # Panics
///
/// Panics if `width == 0` while `data` is non-empty, or if `data.len()`
/// is not a multiple of `width`.
pub fn parallel_for_rows<T, F>(data: &mut [T], width: usize, grain_rows: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(width > 0, "parallel_for_rows: zero width with non-empty data");
    assert_eq!(
        data.len() % width,
        0,
        "parallel_for_rows: data length {} not a multiple of width {width}",
        data.len()
    );
    let rows = data.len() / width;
    let grain = grain_rows.max(1);
    let threads = current_threads();
    if threads == 1 || rows <= grain {
        body(0, data);
        return;
    }
    let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(rows.div_ceil(grain));
    let mut rest = data;
    let mut row0 = 0usize;
    while !rest.is_empty() {
        let take_rows = grain.min(rows - row0);
        let (head, tail) = rest.split_at_mut(take_rows * width);
        chunks.push((row0, head));
        row0 += take_rows;
        rest = tail;
    }
    let n_chunks = chunks.len();
    let queue = Mutex::new(chunks);
    let run = || loop {
        let item = queue.lock().expect("pool queue poisoned").pop();
        match item {
            Some((first_row, chunk)) => body(first_row, chunk),
            None => break,
        }
    };
    std::thread::scope(|scope| {
        for _ in 0..current_threads().min(n_chunks) - 1 {
            scope.spawn(|| {
                let _worker = mark_in_worker();
                run();
            });
        }
        let _worker = mark_in_worker();
        run();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn hardware_threads_at_least_one() {
        assert!(hardware_threads() >= 1);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
        // Clamped to >= 1.
        with_threads(0, || assert_eq!(current_threads(), 1));
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        for threads in [1, 2, 4] {
            with_threads(threads, || {
                let n = 103;
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                parallel_for(n, 7, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} threads {threads}");
                }
            });
        }
    }

    #[test]
    fn parallel_for_empty_and_single_chunk() {
        parallel_for(0, 4, |_| panic!("must not run on empty range"));
        let count = AtomicU64::new(0);
        parallel_for(3, 100, |r| {
            assert_eq!(r, 0..3);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for threads in [1, 2, 5] {
            let got = with_threads(threads, || parallel_map(100, 3, |i| i * i));
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads {threads}");
        }
        assert!(parallel_map(0, 1, |i| i).is_empty());
    }

    #[test]
    fn parallel_for_rows_writes_disjoint_chunks() {
        for threads in [1, 2, 4] {
            with_threads(threads, || {
                let rows = 33;
                let width = 5;
                let mut data = vec![0.0f32; rows * width];
                parallel_for_rows(&mut data, width, 4, |row0, chunk| {
                    for (local, row) in chunk.chunks_mut(width).enumerate() {
                        for v in row.iter_mut() {
                            *v += (row0 + local) as f32;
                        }
                    }
                });
                for i in 0..rows {
                    for j in 0..width {
                        assert_eq!(data[i * width + j], i as f32, "({i},{j}) threads {threads}");
                    }
                }
            });
        }
    }

    #[test]
    fn parallel_for_rows_empty_is_noop() {
        let mut data: Vec<f32> = Vec::new();
        parallel_for_rows(&mut data, 4, 2, |_, _| panic!("must not run"));
    }

    #[test]
    fn nested_parallel_calls_degrade_to_serial() {
        with_threads(4, || {
            parallel_for(8, 1, |_outer| {
                // Inside a worker the pool must report a single thread,
                // so nested calls cannot oversubscribe or deadlock.
                assert_eq!(current_threads(), 1);
                parallel_for(4, 1, |_inner| {});
            });
        });
    }

    #[test]
    fn row_grain_scales_inversely_with_row_cost() {
        assert_eq!(row_grain(MIN_CHUNK_OPS), 1);
        assert!(row_grain(1) >= MIN_CHUNK_OPS);
        assert!(row_grain(0) >= 1);
        assert!(row_grain(usize::MAX) >= 1);
    }
}
