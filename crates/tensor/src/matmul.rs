use crate::{pool, Matrix, TensorError};

/// Cache-blocking tile size used by [`matmul`] and [`matmul_transb`].
///
/// 64x64 f32 tiles (16 KiB per operand tile) fit comfortably in L1/L2 on
/// commodity CPUs; the exact value only affects speed, not results.
pub const GEMM_BLOCK: usize = 64;

/// Computes `A * B` with cache blocking.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// use sa_tensor::{Matrix, matmul};
/// # fn main() -> Result<(), sa_tensor::TensorError> {
/// let a = Matrix::identity(3);
/// let b = Matrix::from_fn(3, 2, |i, j| (i + j) as f32);
/// assert_eq!(matmul(&a, &b)?, b);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    if n == 0 {
        return Ok(out);
    }
    let bd = b.as_slice();
    // Each output row is an independent accumulation over k, so
    // partitioning across row chunks leaves per-row arithmetic (and hence
    // the result bits) identical to the serial path.
    pool::parallel_for_rows(
        out.as_mut_slice(),
        n,
        pool::row_grain(k * n),
        |row0, chunk| matmul_rows(a, bd, k, n, row0, chunk),
    );
    Ok(out)
}

/// Cache-blocked `A * B` restricted to output rows
/// `row0 .. row0 + chunk.len() / n`; `chunk` is that row range of the
/// output buffer. Arithmetic per row matches the full serial loop.
fn matmul_rows(a: &Matrix, bd: &[f32], k: usize, n: usize, row0: usize, chunk: &mut [f32]) {
    let rows = chunk.len() / n;
    for c0 in (0..rows).step_by(GEMM_BLOCK) {
        let c1 = (c0 + GEMM_BLOCK).min(rows);
        for k0 in (0..k).step_by(GEMM_BLOCK) {
            let k1 = (k0 + GEMM_BLOCK).min(k);
            for c in c0..c1 {
                let arow = a.row(row0 + c);
                let orow = &mut chunk[c * n..(c + 1) * n];
                for kk in k0..k1 {
                    let av = arow[kk];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[kk * n..(kk + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

/// Computes `A * B^T` without materialising the transpose.
///
/// This is the score kernel shape used everywhere in attention:
/// `scores = Q K^T` with `Q: (S_q, d)` and `K: (S_k, d)` both row-major,
/// so each output element is a dot product of two contiguous rows.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.cols() != B.cols()`.
pub fn matmul_transb(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transb",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = a.rows();
    let n = b.rows();
    let d = a.cols();
    let mut out = Matrix::zeros(m, n);
    if n == 0 {
        return Ok(out);
    }
    // Every output element is an isolated dot product, so row-chunk
    // partitioning is trivially bit-deterministic.
    pool::parallel_for_rows(
        out.as_mut_slice(),
        n,
        pool::row_grain(d * n),
        |row0, chunk| {
            let rows = chunk.len() / n;
            for c0 in (0..rows).step_by(GEMM_BLOCK) {
                let c1 = (c0 + GEMM_BLOCK).min(rows);
                for j0 in (0..n).step_by(GEMM_BLOCK) {
                    let j1 = (j0 + GEMM_BLOCK).min(n);
                    for c in c0..c1 {
                        let arow = a.row(row0 + c);
                        let orow = &mut chunk[c * n..(c + 1) * n];
                        for j in j0..j1 {
                            orow[j] = dot(arow, b.row(j));
                        }
                    }
                }
            }
        },
    );
    Ok(out)
}

/// Computes the matrix-vector product `A * x`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.cols() != x.len()`.
pub fn matvec(a: &Matrix, x: &[f32]) -> Result<Vec<f32>, TensorError> {
    if a.cols() != x.len() {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    Ok((0..a.rows()).map(|i| dot(a.row(i), x)).collect())
}

/// Dot product of two equal-length slices (4-way unrolled).
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_fn(3, 4, |i, j| (i as f32 - j as f32) * 0.5);
        let b = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f32 * 0.25);
        let got = matmul(&a, &b).unwrap();
        let want = naive_matmul(&a, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_matches_naive_across_block_boundary() {
        // Sizes straddle GEMM_BLOCK to exercise partial tiles.
        let m = GEMM_BLOCK + 7;
        let k = GEMM_BLOCK + 1;
        let n = 5;
        let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 13) as f32 * 0.1 - 0.6);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 3) % 11) as f32 * 0.2 - 1.0);
        let got = matmul(&a, &b).unwrap();
        let want = naive_matmul(&a, &b);
        let mut max = 0.0f32;
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            max = max.max((g - w).abs());
        }
        assert!(max < 1e-3, "max abs diff {max}");
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_transb_equals_matmul_with_transpose() {
        let a = Matrix::from_fn(5, 8, |i, j| ((i + 2 * j) % 7) as f32 * 0.3 - 1.0);
        let b = Matrix::from_fn(9, 8, |i, j| ((3 * i + j) % 5) as f32 * 0.4 - 0.8);
        let got = matmul_transb(&a, &b).unwrap();
        let want = matmul(&a, &b.transpose()).unwrap();
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_transb_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(matmul_transb(&a, &b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f32);
        let x = vec![1.0, -1.0, 0.5, 2.0];
        let got = matvec(&a, &x).unwrap();
        let xm = Matrix::from_vec(4, 1, x).unwrap();
        let want = matmul(&a, &xm).unwrap();
        for (g, w) in got.iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-6);
        }
        assert!(matvec(&a, &[1.0]).is_err());
    }

    #[test]
    fn dot_handles_non_multiple_of_four() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(dot(&a, &b), 30.0);
    }

    #[test]
    fn zero_sized_operands() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let out = matmul(&a, &b).unwrap();
        assert_eq!(out.shape(), (0, 2));
        let c = Matrix::zeros(0, 3);
        let out2 = matmul_transb(&a, &c).unwrap();
        assert_eq!(out2.shape(), (0, 0));
    }

    #[test]
    fn identity_is_neutral_for_transb() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f32);
        let id = Matrix::identity(4);
        // A * I^T = A
        assert_eq!(matmul_transb(&a, &id).unwrap(), a);
    }
}
