//! Small statistics helpers used by the accuracy metrics (Theorem 1 checks,
//! output-fidelity scoring, CRA estimation error).

/// Sum of absolute values.
pub fn l1_norm(xs: &[f32]) -> f32 {
    xs.iter().map(|v| v.abs()).sum()
}

/// `||a - b||_1`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn l1_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l1_distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Maximum absolute element-wise difference.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    assert!(!a.is_empty(), "mse of empty slices");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>() / a.len() as f32
}

/// Cosine similarity; returns 0 when either vector has zero norm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity length mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance (0 for slices shorter than 2).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_norm_and_distance() {
        assert_eq!(l1_norm(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(l1_distance(&[1.0, 2.0], &[0.0, 4.0]), 3.0);
        assert_eq!(l1_distance(&[], &[]), 0.0);
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn mse_basic() {
        assert!((mse(&[1.0, 2.0], &[2.0, 4.0]) - 2.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mse_empty_panics() {
        let _ = mse(&[], &[]);
    }

    #[test]
    fn cosine_similarity_basic() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }
}
