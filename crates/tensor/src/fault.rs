//! Deterministic, seeded fault-injection harness.
//!
//! Robustness work needs *reproducible* failures: this module corrupts
//! tensors and control flow in ways the pipeline's sentinels must catch,
//! with every corruption derived from a [`FaultPlan`] seed through the
//! in-repo `xoshiro256++` generator — the same fault mix replays
//! bit-identically across runs and `SA_THREADS` settings.
//!
//! Two activation styles:
//!
//! - **Pure / data faults** — [`FaultPlan::corrupt_matrix`] and
//!   [`FaultPlan::corrupt_json`] transform values directly; tests build a
//!   plan, corrupt their inputs, and feed them to the pipeline.
//! - **Installed / control faults** — [`install`] registers the plan in a
//!   process-wide slot consulted by the worker pool
//!   ([`should_panic`]: forced worker panics) and by stage-1 sampling
//!   ([`tamper_scores`]: zero-mass score tampering). The returned
//!   [`ScopedFault`] guard also holds a global lock so concurrent tests
//!   cannot observe each other's plans; dropping it deactivates the plan.
//! - **Thread-local faults** — [`install_local`] binds a plan to the
//!   *current thread only*, without the global lock. This is how the
//!   serving layer injects per-request transient faults: each request
//!   executor installs its own plan on its worker thread, so concurrent
//!   requests never observe each other's faults. Local plans take
//!   precedence over the global plan on the installing thread.
//!
//! The `SA_FAULT` environment variable selects a plan by name for CI
//! (`FaultPlan::from_env`): `smoke` is the canonical all-faults plan used
//! by `scripts/verify.sh`; a comma-separated spec such as
//! `seed=7,nan=2,inf=3,zero_rows=1,zero_mass,panic=sparse_flash_attention`
//! builds a custom plan.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::xoshiro::{splitmix64, Xoshiro256PlusPlus};
use crate::Matrix;

/// A deterministic recipe of faults to inject.
///
/// The default plan injects nothing; builder methods switch individual
/// fault classes on. All randomness (which columns/rows/entries are hit)
/// derives from `seed` plus the per-call `salt`, never from global state.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed for all pseudo-random corruption choices.
    pub seed: u64,
    /// Number of whole matrix columns overwritten with NaN.
    pub nan_stripes: usize,
    /// Number of individual entries overwritten with `±inf`.
    pub inf_logits: usize,
    /// Number of whole matrix rows overwritten with zeros.
    pub zero_rows: usize,
    /// Pool call sites (see `pool::try_parallel_for`) whose workers are
    /// forced to panic.
    pub panic_sites: Vec<String>,
    /// Replace stage-1 sampled scores with all zeros (degenerate mass).
    pub zero_mass: bool,
    /// Truncate serialized JSON to this many bytes.
    pub truncate_json: Option<usize>,
    /// Simulated allocation failure: one in `alloc_fail` reservation
    /// salts fails (0 = never). Consulted by the serving layer's memory
    /// ledger through [`should_fail_alloc`].
    pub alloc_fail: usize,
    /// Number of single-bit flips applied to staged checkpoint KV bytes
    /// at restore time ([`tamper_kv`]); the restore-side checksum must
    /// catch every flip as a typed `CorruptCheckpoint`.
    pub kv_flips: usize,
    /// Named serving-loop sites whose attempts crash with a typed
    /// worker-panic error (no real unwinding — the serving layer raises
    /// the error itself when [`should_crash`] trips).
    pub crash_sites: Vec<String>,
    /// One in `crash_period` salts crashes at a matching site (0 =
    /// never).
    pub crash_period: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            nan_stripes: 0,
            inf_logits: 0,
            zero_rows: 0,
            panic_sites: Vec::new(),
            zero_mass: false,
            truncate_json: None,
            alloc_fail: 0,
            kv_flips: 0,
            crash_sites: Vec::new(),
            crash_period: 0,
        }
    }

    /// The canonical all-faults plan driven by `SA_FAULT=smoke`.
    pub fn smoke(seed: u64) -> Self {
        FaultPlan::new(seed)
            .nan_stripes(1)
            .inf_logits(2)
            .zero_rows(1)
            .zero_mass()
            .worker_panic("sparse_flash_attention")
            .truncate_json(24)
    }

    /// Corrupt `n` whole columns with NaN.
    pub fn nan_stripes(mut self, n: usize) -> Self {
        self.nan_stripes = n;
        self
    }

    /// Corrupt `n` individual entries with `±inf`.
    pub fn inf_logits(mut self, n: usize) -> Self {
        self.inf_logits = n;
        self
    }

    /// Zero `n` whole rows.
    pub fn zero_rows(mut self, n: usize) -> Self {
        self.zero_rows = n;
        self
    }

    /// Force workers at the named pool call site to panic.
    pub fn worker_panic(mut self, site: &str) -> Self {
        self.panic_sites.push(site.to_string());
        self
    }

    /// Replace stage-1 sampled scores with zeros.
    pub fn zero_mass(mut self) -> Self {
        self.zero_mass = true;
        self
    }

    /// Truncate serialized JSON to `bytes` bytes.
    pub fn truncate_json(mut self, bytes: usize) -> Self {
        self.truncate_json = Some(bytes);
        self
    }

    /// Fail one in `period` simulated allocations (0 disables).
    pub fn alloc_failures(mut self, period: usize) -> Self {
        self.alloc_fail = period;
        self
    }

    /// Flip `n` single bits in staged checkpoint KV bytes at restore.
    pub fn kv_bit_flips(mut self, n: usize) -> Self {
        self.kv_flips = n;
        self
    }

    /// Crash one in `period` attempts at the named serving-loop site
    /// with a typed worker-panic error.
    pub fn serve_crash(mut self, site: &str, period: usize) -> Self {
        self.crash_sites.push(site.to_string());
        self.crash_period = period.max(1);
        self
    }

    /// True if the plan injects at least one fault class.
    pub fn is_active(&self) -> bool {
        self.nan_stripes > 0
            || self.inf_logits > 0
            || self.zero_rows > 0
            || !self.panic_sites.is_empty()
            || self.zero_mass
            || self.truncate_json.is_some()
            || self.alloc_fail > 0
            || self.kv_flips > 0
            || !self.crash_sites.is_empty()
    }

    /// Parses `SA_FAULT`. Returns `None` when unset, empty, or `off`.
    ///
    /// Accepted values: `smoke`, or a comma-separated spec of
    /// `seed=N`, `nan=N`, `inf=N`, `zero_rows=N`, `zero_mass`,
    /// `panic=SITE`, `truncate=N`, `alloc=N`, `kv_flips=N`,
    /// `crash=SITE`, `crash_period=N`. Unknown tokens are reported on
    /// stderr and skipped.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("SA_FAULT").ok()?;
        Self::parse(&raw)
    }

    /// Parses an `SA_FAULT`-style spec string (see [`FaultPlan::from_env`]).
    pub fn parse(raw: &str) -> Option<Self> {
        let raw = raw.trim();
        if raw.is_empty() || raw == "off" || raw == "0" {
            return None;
        }
        if raw == "smoke" {
            return Some(FaultPlan::smoke(0xFA01));
        }
        let mut plan = FaultPlan::new(0xFA01);
        for token in raw.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = match token.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (token, None),
            };
            let num = |v: Option<&str>| v.and_then(|s| s.parse::<u64>().ok());
            match (key, value) {
                ("seed", v) => match num(v) {
                    Some(n) => plan.seed = n,
                    None => eprintln!("warning: SA_FAULT: bad seed in {token:?}"),
                },
                ("nan", v) => plan.nan_stripes = num(v).unwrap_or(1) as usize,
                ("inf", v) => plan.inf_logits = num(v).unwrap_or(1) as usize,
                ("zero_rows", v) => plan.zero_rows = num(v).unwrap_or(1) as usize,
                ("zero_mass", _) => plan.zero_mass = true,
                ("panic", Some(site)) => plan.panic_sites.push(site.to_string()),
                ("truncate", v) => plan.truncate_json = Some(num(v).unwrap_or(16) as usize),
                ("alloc", v) => plan.alloc_fail = num(v).unwrap_or(4) as usize,
                ("kv_flips", v) => plan.kv_flips = num(v).unwrap_or(1) as usize,
                ("crash", Some(site)) => {
                    plan.crash_sites.push(site.to_string());
                    plan.crash_period = plan.crash_period.max(1);
                }
                ("crash_period", v) => plan.crash_period = num(v).unwrap_or(4) as usize,
                _ => eprintln!("warning: SA_FAULT: ignoring unknown token {token:?}"),
            }
        }
        Some(plan)
    }

    /// Seeds a generator from the plan seed and a call-site salt, so the
    /// same plan hits the same coordinates for a given salt regardless of
    /// call order.
    fn rng(&self, salt: u64) -> Xoshiro256PlusPlus {
        let mut s = self.seed;
        let a = splitmix64(&mut s);
        Xoshiro256PlusPlus::from_seed(a ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Applies the data-fault classes (NaN stripes, `±inf` entries, zero
    /// rows) to `m` in place. `salt` distinguishes multiple targets
    /// corrupted under one plan (e.g. Q vs K vs V). Deterministic in
    /// `(plan, salt, shape)`. Empty matrices are left untouched.
    pub fn corrupt_matrix(&self, m: &mut Matrix, salt: u64) {
        let (rows, cols) = m.shape();
        if rows == 0 || cols == 0 {
            return;
        }
        let mut rng = self.rng(salt);
        for _ in 0..self.nan_stripes {
            let j = rng.next_below(cols as u64) as usize;
            for i in 0..rows {
                m.set(i, j, f32::NAN);
            }
        }
        for t in 0..self.inf_logits {
            let i = rng.next_below(rows as u64) as usize;
            let j = rng.next_below(cols as u64) as usize;
            let sign = if t % 2 == 0 { 1.0 } else { -1.0 };
            m.set(i, j, sign * f32::INFINITY);
        }
        for _ in 0..self.zero_rows {
            let i = rng.next_below(rows as u64) as usize;
            m.row_mut(i).fill(0.0);
        }
    }

    /// True when this plan fails the simulated allocation identified by
    /// `salt` (one in [`alloc_fail`](Self::alloc_fail) salts trips).
    /// Deterministic in `(plan, salt)` and independent of call order, so
    /// a serial planner consulting it stays thread-count invariant.
    pub fn fail_alloc(&self, salt: u64) -> bool {
        self.alloc_fail > 0 && self.rng(salt ^ ALLOC_SALT).next_below(self.alloc_fail as u64) == 0
    }

    /// True when this plan crashes the serving-loop attempt identified
    /// by `(site, salt)` — one in [`crash_period`](Self::crash_period)
    /// salts at a listed site. Deterministic in `(plan, site, salt)`.
    pub fn crashes_at(&self, site: &str, salt: u64) -> bool {
        self.crash_period > 0
            && self.crash_sites.iter().any(|s| s == site)
            && self.rng(salt ^ CRASH_SALT).next_below(self.crash_period as u64) == 0
    }

    /// Flips [`kv_flips`](Self::kv_flips) single bits in `data` (staged
    /// checkpoint KV values), deterministic in `(plan, salt, len)`.
    /// Returns `true` if anything changed; empty slices and plans
    /// without the fault class are untouched.
    pub fn flip_kv_bits(&self, data: &mut [f32], salt: u64) -> bool {
        if self.kv_flips == 0 || data.is_empty() {
            return false;
        }
        let mut rng = self.rng(salt ^ KV_SALT);
        for _ in 0..self.kv_flips {
            let i = rng.next_below(data.len() as u64) as usize;
            let bit = rng.next_below(32) as u32;
            data[i] = f32::from_bits(data[i].to_bits() ^ (1u32 << bit));
        }
        true
    }

    /// Applies [`FaultPlan::truncate_json`] to a serialized document.
    /// Truncation lands on a UTF-8 boundary at or below the requested
    /// byte count; plans without the fault return the input unchanged.
    pub fn corrupt_json(&self, json: &str) -> String {
        match self.truncate_json {
            None => json.to_string(),
            Some(n) => {
                let mut end = n.min(json.len());
                while end > 0 && !json.is_char_boundary(end) {
                    end -= 1;
                }
                json[..end].to_string()
            }
        }
    }
}

/// Salt domain separators, so the same `(plan, salt)` pair never reuses
/// a random stream across fault classes.
const ALLOC_SALT: u64 = 0xA110_C8ED_0000_0001;
const CRASH_SALT: u64 = 0xC4A5_88ED_0000_0002;
const KV_SALT: u64 = 0x1CB1_7F11_0000_0003;

/// The installed plan, if any. `ACTIVE_FLAG` is the lock-free fast path
/// consulted by the pool on every chunk; the mutex is only taken when a
/// plan is actually installed.
static ACTIVE: Mutex<Option<FaultPlan>> = Mutex::new(None);
static ACTIVE_FLAG: AtomicBool = AtomicBool::new(false);
/// Serializes fault-using tests across threads in one test binary.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        // A worker that panicked while holding the slot (the whole point
        // of fault injection) must not wedge later tests.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Guard returned by [`install`]; the plan stays active until drop.
///
/// Holding the guard also holds a process-wide lock, so at most one
/// fault plan is installed at a time even when the test harness runs
/// tests concurrently.
pub struct ScopedFault {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for ScopedFault {
    fn drop(&mut self) {
        ACTIVE_FLAG.store(false, Ordering::SeqCst);
        *lock_ignoring_poison(&ACTIVE) = None;
    }
}

/// Installs `plan` as the process-wide fault plan until the returned
/// guard is dropped. Blocks while another guard is alive.
pub fn install(plan: FaultPlan) -> ScopedFault {
    let serial = lock_ignoring_poison(&INSTALL_LOCK);
    *lock_ignoring_poison(&ACTIVE) = Some(plan);
    ACTIVE_FLAG.store(true, Ordering::SeqCst);
    ScopedFault { _serial: serial }
}

thread_local! {
    /// The thread-scoped plan stack; the innermost installed plan wins.
    static LOCAL: std::cell::RefCell<Vec<FaultPlan>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Guard returned by [`install_local`]; pops the plan on drop.
pub struct LocalFault {
    popped: bool,
}

impl Drop for LocalFault {
    fn drop(&mut self) {
        if !self.popped {
            self.popped = true;
            LOCAL.with(|l| {
                l.borrow_mut().pop();
            });
        }
    }
}

/// Installs `plan` for the *current thread only* until the returned
/// guard is dropped. Unlike [`install`], this takes no process-wide
/// lock: concurrent threads (the serving layer's per-request executors)
/// can each carry their own plan without serializing or observing each
/// other. Nested installs shadow outer ones.
///
/// The pool primitives evaluate the forced-panic decision once at entry
/// on the calling thread, so a local plan installed on a request's
/// executor thread governs every (nested, serial) pool call that request
/// makes — and nothing else.
pub fn install_local(plan: FaultPlan) -> LocalFault {
    LOCAL.with(|l| l.borrow_mut().push(plan));
    LocalFault { popped: false }
}

/// Runs `f` on the innermost thread-local plan, if one is installed.
fn with_local_plan<R>(f: impl FnOnce(&FaultPlan) -> R) -> Option<R> {
    LOCAL.with(|l| l.borrow().last().map(f))
}

/// True when the installed plan forces panics at `site`. The pool's
/// `try_*` primitives evaluate this once at entry (on the calling
/// thread, where the thread-local plan is visible) and raise the panic
/// inside their catch region, on the serial path as well, so the outcome
/// is thread-count independent. A thread-local plan takes precedence
/// over the global one.
pub fn should_panic(site: &str) -> bool {
    if let Some(hit) = with_local_plan(|p| p.panic_sites.iter().any(|s| s == site)) {
        return hit;
    }
    if !ACTIVE_FLAG.load(Ordering::Relaxed) {
        return false;
    }
    lock_ignoring_poison(&ACTIVE)
        .as_ref()
        .is_some_and(|p| p.panic_sites.iter().any(|s| s == site))
}

/// Applies installed score tampering at `site` (currently: zero-mass at
/// `"stage1_scores"`). Returns `true` if the slice was tampered. A
/// thread-local plan takes precedence over the global one.
pub fn tamper_scores(site: &str, scores: &mut [f32]) -> bool {
    let tamper = match with_local_plan(|p| p.zero_mass && site == "stage1_scores") {
        Some(local) => local,
        None => {
            ACTIVE_FLAG.load(Ordering::Relaxed)
                && lock_ignoring_poison(&ACTIVE)
                    .as_ref()
                    .is_some_and(|p| p.zero_mass && site == "stage1_scores")
        }
    };
    if tamper {
        scores.fill(0.0);
    }
    tamper
}

/// True when the installed plan fails the simulated allocation `salt`
/// (see [`FaultPlan::fail_alloc`]). A thread-local plan takes precedence
/// over — and fully shadows — the global one, matching [`should_panic`].
pub fn should_fail_alloc(salt: u64) -> bool {
    if let Some(hit) = with_local_plan(|p| p.fail_alloc(salt)) {
        return hit;
    }
    if !ACTIVE_FLAG.load(Ordering::Relaxed) {
        return false;
    }
    lock_ignoring_poison(&ACTIVE)
        .as_ref()
        .is_some_and(|p| p.fail_alloc(salt))
}

/// True when the installed plan crashes the serving-loop attempt
/// `(site, salt)` (see [`FaultPlan::crashes_at`]). A thread-local plan
/// takes precedence over — and fully shadows — the global one.
pub fn should_crash(site: &str, salt: u64) -> bool {
    if let Some(hit) = with_local_plan(|p| p.crashes_at(site, salt)) {
        return hit;
    }
    if !ACTIVE_FLAG.load(Ordering::Relaxed) {
        return false;
    }
    lock_ignoring_poison(&ACTIVE)
        .as_ref()
        .is_some_and(|p| p.crashes_at(site, salt))
}

/// Applies the installed plan's KV bit flips to staged checkpoint bytes
/// (see [`FaultPlan::flip_kv_bits`]). Returns `true` if anything was
/// flipped. A thread-local plan takes precedence over the global one.
pub fn tamper_kv(data: &mut [f32], salt: u64) -> bool {
    if let Some(hit) = with_local_plan(|p| p.clone()) {
        return hit.flip_kv_bits(data, salt);
    }
    if !ACTIVE_FLAG.load(Ordering::Relaxed) {
        return false;
    }
    let plan = lock_ignoring_poison(&ACTIVE).as_ref().cloned();
    plan.is_some_and(|p| p.flip_kv_bits(data, salt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f32);
        let before = m.clone();
        plan.corrupt_matrix(&mut m, 1);
        assert_eq!(m.as_slice(), before.as_slice());
        assert_eq!(plan.corrupt_json("{\"a\":1}"), "{\"a\":1}");
    }

    #[test]
    fn corruption_is_deterministic_per_salt() {
        let plan = FaultPlan::new(42).nan_stripes(1).inf_logits(3).zero_rows(1);
        let base = Matrix::from_fn(8, 6, |i, j| (i + j) as f32 + 1.0);
        let mut a = base.clone();
        let mut b = base.clone();
        plan.corrupt_matrix(&mut a, 7);
        plan.corrupt_matrix(&mut b, 7);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // A different salt picks different coordinates (with overwhelming
        // probability for this shape and seed; pinned by the fixed seed).
        let mut c = base.clone();
        plan.corrupt_matrix(&mut c, 8);
        assert!(a
            .as_slice()
            .iter()
            .zip(c.as_slice())
            .any(|(x, y)| x.to_bits() != y.to_bits()));
    }

    #[test]
    fn corrupt_matrix_injects_each_class() {
        let plan = FaultPlan::new(3).nan_stripes(1).inf_logits(2).zero_rows(1);
        let mut m = Matrix::full(10, 5, 1.0);
        plan.corrupt_matrix(&mut m, 0);
        let slice = m.as_slice();
        assert!(slice.iter().any(|x| x.is_nan()));
        assert!(slice.iter().any(|x| x.is_infinite()));
        // Zeroed row may be overwritten by the NaN stripe column, but at
        // least one zero survives in the other columns.
        assert!(slice.iter().any(|&x| x == 0.0));
    }

    #[test]
    fn corrupt_empty_matrix_is_noop() {
        let plan = FaultPlan::new(1).nan_stripes(2).inf_logits(2).zero_rows(2);
        let mut m = Matrix::zeros(0, 4);
        plan.corrupt_matrix(&mut m, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn truncate_json_respects_utf8() {
        let plan = FaultPlan::new(0).truncate_json(4);
        assert_eq!(plan.corrupt_json("{\"a\":1}"), "{\"a\"");
        // 'é' is 2 bytes; cutting mid-char backs off to the boundary.
        let plan = FaultPlan::new(0).truncate_json(2);
        assert_eq!(plan.corrupt_json("aé"), "a");
        let plan = FaultPlan::new(0).truncate_json(100);
        assert_eq!(plan.corrupt_json("[1]"), "[1]");
    }

    #[test]
    fn parse_named_and_custom_specs() {
        assert!(FaultPlan::parse("").is_none());
        assert!(FaultPlan::parse("off").is_none());
        let smoke = FaultPlan::parse("smoke").expect("smoke plan");
        assert!(smoke.is_active());
        assert!(smoke.zero_mass);
        assert!(smoke.panic_sites.iter().any(|s| s == "sparse_flash_attention"));
        let custom = FaultPlan::parse("seed=9,nan=2,inf=3,zero_rows=1,zero_mass,panic=x,truncate=5")
            .expect("custom plan");
        assert_eq!(custom.seed, 9);
        assert_eq!(custom.nan_stripes, 2);
        assert_eq!(custom.inf_logits, 3);
        assert_eq!(custom.zero_rows, 1);
        assert!(custom.zero_mass);
        assert_eq!(custom.panic_sites, vec!["x".to_string()]);
        assert_eq!(custom.truncate_json, Some(5));
    }

    #[test]
    fn install_scopes_the_plan() {
        assert!(!should_panic("site_a"));
        {
            let _guard = install(FaultPlan::new(0).worker_panic("site_a"));
            assert!(should_panic("site_a"));
            assert!(!should_panic("site_b"));
        }
        assert!(!should_panic("site_a"));
    }

    #[test]
    fn local_plan_is_thread_scoped_and_lock_free() {
        // Two threads install different local plans concurrently (no
        // global INSTALL_LOCK involved) and neither observes the other's.
        let t1 = std::thread::spawn(|| {
            let _g = install_local(FaultPlan::new(1).worker_panic("site_one"));
            assert!(should_panic("site_one"));
            assert!(!should_panic("site_two"));
        });
        let t2 = std::thread::spawn(|| {
            let _g = install_local(FaultPlan::new(2).worker_panic("site_two"));
            assert!(should_panic("site_two"));
            assert!(!should_panic("site_one"));
        });
        t1.join().unwrap();
        t2.join().unwrap();
        // This thread never installed anything.
        assert!(!should_panic("site_one"));
        assert!(!should_panic("site_two"));
    }

    #[test]
    fn local_plan_shadows_global_and_nests() {
        let _global = install(FaultPlan::new(0).worker_panic("global_site"));
        assert!(should_panic("global_site"));
        {
            // An inert local plan shadows the global plan entirely.
            let _local = install_local(FaultPlan::new(0));
            assert!(!should_panic("global_site"));
            {
                let _inner = install_local(FaultPlan::new(0).worker_panic("local_site"));
                assert!(should_panic("local_site"));
                assert!(!should_panic("global_site"));
            }
            assert!(!should_panic("local_site"));
        }
        assert!(should_panic("global_site"));
    }

    #[test]
    fn local_plan_drop_restores_on_unwind() {
        let caught = std::panic::catch_unwind(|| {
            let _g = install_local(FaultPlan::new(0).worker_panic("unwind_site"));
            panic!("unwind");
        });
        assert!(caught.is_err());
        assert!(!should_panic("unwind_site"));
    }

    #[test]
    fn local_zero_mass_tampers_scores() {
        let _g = install_local(FaultPlan::new(0).zero_mass());
        let mut scores = vec![1.0f32, 2.0];
        assert!(tamper_scores("stage1_scores", &mut scores));
        assert!(scores.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tamper_scores_zeroes_stage1_only() {
        let _guard = install(FaultPlan::new(0).zero_mass());
        let mut scores = vec![1.0f32, 2.0, 3.0];
        assert!(!tamper_scores("other_stage", &mut scores));
        assert_eq!(scores, vec![1.0, 2.0, 3.0]);
        assert!(tamper_scores("stage1_scores", &mut scores));
        assert!(scores.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn new_fault_classes_are_inert_by_default() {
        let plan = FaultPlan::default();
        assert!(!plan.fail_alloc(0));
        assert!(!plan.crashes_at("serve_attempt", 0));
        let mut data = vec![1.0f32, 2.0, 3.0];
        assert!(!plan.flip_kv_bits(&mut data, 0));
        assert_eq!(data, vec![1.0, 2.0, 3.0]);
        // Nothing installed: the module-level probes are inert too.
        assert!(!should_fail_alloc(0));
        assert!(!should_crash("serve_attempt", 0));
        assert!(!tamper_kv(&mut data, 0));
        assert_eq!(data, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn parse_recovery_fault_tokens() {
        let plan = FaultPlan::parse("alloc=8,kv_flips=3,crash=serve_attempt,crash_period=5")
            .expect("recovery spec");
        assert_eq!(plan.alloc_fail, 8);
        assert_eq!(plan.kv_flips, 3);
        assert_eq!(plan.crash_sites, vec!["serve_attempt".to_string()]);
        assert_eq!(plan.crash_period, 5);
        assert!(plan.is_active());
        // `crash=` alone defaults the period to 1 (always crash).
        let always = FaultPlan::parse("crash=serve_attempt").expect("crash spec");
        assert_eq!(always.crash_period, 1);
        assert!(always.crashes_at("serve_attempt", 0));
        assert!(always.crashes_at("serve_attempt", 99));
        assert!(!always.crashes_at("other_site", 0));
    }

    #[test]
    fn fail_alloc_is_deterministic_and_salt_keyed() {
        let plan = FaultPlan::new(11).alloc_failures(4);
        // Pure function of (plan, salt): repeated probes agree.
        for salt in 0..64u64 {
            assert_eq!(plan.fail_alloc(salt), plan.fail_alloc(salt));
        }
        // Roughly one in four salts trips — require at least one hit and
        // at least one miss over 64 salts (overwhelming for this seed).
        let hits = (0..64u64).filter(|&s| plan.fail_alloc(s)).count();
        assert!(hits > 0, "alloc_failures(4) never tripped in 64 salts");
        assert!(hits < 64, "alloc_failures(4) tripped on every salt");
    }

    #[test]
    fn flip_kv_bits_corrupts_and_is_deterministic() {
        let plan = FaultPlan::new(5).kv_bit_flips(2);
        let base = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        let mut a = base.clone();
        let mut b = base.clone();
        assert!(plan.flip_kv_bits(&mut a, 9));
        assert!(plan.flip_kv_bits(&mut b, 9));
        // Same salt: bit-identical corruption.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // A single-bit XOR never leaves the value unchanged.
        assert!(a
            .iter()
            .zip(&base)
            .any(|(x, y)| x.to_bits() != y.to_bits()));
        let mut empty: Vec<f32> = Vec::new();
        assert!(!plan.flip_kv_bits(&mut empty, 9));
    }

    #[test]
    fn recovery_probes_respect_local_over_global() {
        let _global = install(FaultPlan::new(0).serve_crash("serve_attempt", 1));
        let salt = 3;
        assert!(should_crash("serve_attempt", salt));
        {
            // An inert local plan shadows the global crash plan entirely.
            let _local = install_local(FaultPlan::new(0));
            assert!(!should_crash("serve_attempt", salt));
            assert!(!should_fail_alloc(salt));
            let mut data = vec![1.0f32; 8];
            assert!(!tamper_kv(&mut data, salt));
            {
                let _inner = install_local(FaultPlan::new(7).alloc_failures(1).kv_bit_flips(1));
                assert!(should_fail_alloc(salt));
                assert!(tamper_kv(&mut data, salt));
            }
        }
        assert!(should_crash("serve_attempt", salt));
    }
}
