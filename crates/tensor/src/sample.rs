//! Strided row sampling (the paper's stage-1 *query-guided attention
//! sampling* selects query rows this way).

use crate::TensorError;

/// A strided sample of row indices drawn from `0..n`.
///
/// Construct with [`StrideSample::by_ratio`] or [`StrideSample::by_count`].
/// The paper samples `r_row` of all query rows with a uniform stride; the
/// last row is always included because in causal attention it is the only
/// row that has seen every key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrideSample {
    indices: Vec<usize>,
    population: usize,
}

impl StrideSample {
    /// Samples approximately `ratio * n` rows with a uniform stride.
    ///
    /// `ratio` is clamped to `(0, 1]`; at least one row is always sampled
    /// when `n > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `ratio` is not finite
    /// or is `<= 0`.
    pub fn by_ratio(n: usize, ratio: f32) -> Result<Self, TensorError> {
        if !ratio.is_finite() || ratio <= 0.0 {
            return Err(TensorError::InvalidDimension {
                op: "StrideSample::by_ratio",
                what: format!("ratio must be in (0, 1], got {ratio}"),
            });
        }
        let ratio = ratio.min(1.0);
        let count = ((n as f32 * ratio).ceil() as usize).clamp(usize::from(n > 0), n.max(1));
        Self::by_count(n, count)
    }

    /// Samples exactly `count` rows (clamped to `n`) with a uniform stride,
    /// always including the last row when `n > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `count == 0` while
    /// `n > 0`.
    pub fn by_count(n: usize, count: usize) -> Result<Self, TensorError> {
        if n == 0 {
            return Ok(StrideSample {
                indices: Vec::new(),
                population: 0,
            });
        }
        if count == 0 {
            return Err(TensorError::InvalidDimension {
                op: "StrideSample::by_count",
                what: "count must be >= 1 for a non-empty population".to_string(),
            });
        }
        let count = count.min(n);
        let indices: Vec<usize> = if count == 1 {
            vec![n - 1]
        } else {
            // Evenly spaced across [0, n-1], inclusive of the final row.
            //
            // Collision-free by construction, so the result has exactly
            // `count` strictly increasing indices: with `count <= n` the
            // stride `(n-1)/(count-1)` is >= 1 (it is exactly 1 when
            // `count == n`, where the division is exact), so consecutive
            // exact quotients differ by >= 1 and `round` — which is
            // monotone and satisfies `round(x + 1) = round(x) + 1` —
            // maps them to strictly increasing integers. When
            // `count < n` the stride exceeds 1 by at least `1/(n-2)`,
            // which dwarfs the f64 division's rounding error for any
            // population below ~2^26 rows, far above paper-scale S.
            (0..count)
                .map(|i| (i as f64 * (n - 1) as f64 / (count - 1) as f64).round() as usize)
                .collect()
        };
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "StrideSample::by_count produced a collision (n={n}, count={count})"
        );
        Ok(StrideSample {
            indices,
            population: n,
        })
    }

    /// The sampled row indices, strictly increasing.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of sampled rows.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when nothing was sampled (empty population).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Size of the population the sample was drawn from.
    pub fn population(&self) -> usize {
        self.population
    }

    /// Achieved sampling ratio `len / population` (0 for an empty
    /// population).
    pub fn ratio(&self) -> f32 {
        if self.population == 0 {
            0.0
        } else {
            self.indices.len() as f32 / self.population as f32
        }
    }
}

/// Convenience wrapper: the strided indices for sampling `ratio` of `n`
/// rows.
///
/// # Errors
///
/// Propagates errors from [`StrideSample::by_ratio`].
pub fn stride_sample_indices(n: usize, ratio: f32) -> Result<Vec<usize>, TensorError> {
    Ok(StrideSample::by_ratio(n, ratio)?.indices().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_sampling_includes_last_row() {
        for n in [1usize, 2, 7, 100, 1023] {
            let s = StrideSample::by_ratio(n, 0.05).unwrap();
            assert_eq!(*s.indices().last().unwrap(), n - 1, "n={n}");
        }
    }

    #[test]
    fn ratio_one_samples_everything() {
        let s = StrideSample::by_ratio(10, 1.0).unwrap();
        assert_eq!(s.indices(), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(s.ratio(), 1.0);
    }

    #[test]
    fn ratio_above_one_is_clamped() {
        let s = StrideSample::by_ratio(4, 3.0).unwrap();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn ratio_rejects_invalid() {
        assert!(StrideSample::by_ratio(10, 0.0).is_err());
        assert!(StrideSample::by_ratio(10, -0.5).is_err());
        assert!(StrideSample::by_ratio(10, f32::NAN).is_err());
    }

    #[test]
    fn count_sampling_even_spread() {
        let s = StrideSample::by_count(101, 5).unwrap();
        assert_eq!(s.indices(), &[0, 25, 50, 75, 100]);
    }

    #[test]
    fn count_one_takes_last() {
        let s = StrideSample::by_count(10, 1).unwrap();
        assert_eq!(s.indices(), &[9]);
    }

    #[test]
    fn count_clamped_to_population() {
        let s = StrideSample::by_count(3, 10).unwrap();
        assert_eq!(s.indices(), &[0, 1, 2]);
    }

    #[test]
    fn empty_population() {
        let s = StrideSample::by_ratio(0, 0.5).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.ratio(), 0.0);
        let c = StrideSample::by_count(0, 0).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_count_nonempty_population_errors() {
        assert!(StrideSample::by_count(5, 0).is_err());
    }

    #[test]
    fn indices_strictly_increasing() {
        for n in [5usize, 17, 256, 999] {
            for ratio in [0.01f32, 0.05, 0.33, 0.9] {
                let s = StrideSample::by_ratio(n, ratio).unwrap();
                assert!(s.indices().windows(2).all(|w| w[0] < w[1]), "n={n} r={ratio}");
            }
        }
    }

    #[test]
    fn by_count_yields_exactly_min_count_n_rows() {
        // The "exactly `count` rows" contract: the strided construction
        // is collision-free, so no dedup is needed and the sample size
        // is min(count, n) for every n, count >= 1.
        crate::check::run_cases("by_count_exact_size", |g| {
            let n = g.usize_in(1, 5000);
            let count = g.usize_in(1, 5000);
            let s = StrideSample::by_count(n, count).unwrap();
            assert_eq!(s.len(), count.min(n), "n={n} count={count}");
            assert!(
                s.indices().windows(2).all(|w| w[0] < w[1]),
                "collision at n={n} count={count}"
            );
            assert_eq!(*s.indices().last().unwrap(), n - 1);
        });
        // Exhaustive over the small corner where collisions would bite.
        for n in 1..=64usize {
            for count in 1..=64usize {
                let s = StrideSample::by_count(n, count).unwrap();
                assert_eq!(s.len(), count.min(n), "n={n} count={count}");
            }
        }
    }

    #[test]
    fn achieved_ratio_close_to_requested() {
        let s = StrideSample::by_ratio(1000, 0.05).unwrap();
        assert!((s.ratio() - 0.05).abs() < 0.01);
    }

    #[test]
    fn helper_matches_struct() {
        let v = stride_sample_indices(50, 0.1).unwrap();
        let s = StrideSample::by_ratio(50, 0.1).unwrap();
        assert_eq!(v, s.indices());
    }
}
