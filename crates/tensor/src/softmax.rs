use crate::{pool, Matrix};

/// Numerically stable softmax of a single row, written in place.
///
/// Subtracts the row maximum before exponentiating. An empty slice is a
/// no-op. A row of all `-inf` (fully masked) becomes all zeros rather than
/// NaN, which is the convention the masked attention kernels rely on.
///
/// The normaliser accumulates in f64: for rows of paper-scale length
/// (S ≥ 128k) an f32 running sum loses enough low-order mass to shift the
/// stage-2 coverage threshold. Each weight is still computed and stored
/// as f32.
pub fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        row.fill(0.0);
        return;
    }
    let mut sum = 0.0f64;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += f64::from(*v);
    }
    if sum > 0.0 {
        let inv = (1.0 / sum) as f32;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Applies [`softmax_row`] to every row of `m` in place.
///
/// Rows are independent, so they run as chunks on the worker pool with
/// bit-identical results to the serial loop.
pub fn softmax_rows_in_place(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 || m.rows() == 0 {
        return;
    }
    pool::parallel_for_rows(
        m.as_mut_slice(),
        cols,
        pool::row_grain(cols),
        |_row0, chunk| {
            for row in chunk.chunks_mut(cols) {
                softmax_row(row);
            }
        },
    );
}

/// Returns a new matrix with row-wise softmax applied.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    softmax_rows_in_place(&mut out);
    out
}

/// Stable `log(sum(exp(x)))` of a slice.
///
/// Returns `-inf` for an empty slice or a slice of all `-inf`. The sum
/// accumulates in f64 so long slices (S ≥ 128k) don't lose low-order
/// mass; the result is still f32.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| f64::from((x - max).exp())).sum();
    (f64::from(max) + sum.ln()) as f32
}

/// Running state for the *online softmax* used by the FlashAttention-style
/// blocked kernels.
///
/// The kernel visits key blocks left to right; for each block it calls
/// [`online_softmax_update`], which rescales the partial output accumulator
/// so that after the final block the accumulator equals the exact softmax-
/// weighted sum.
#[derive(Debug, Clone)]
pub struct OnlineSoftmaxState {
    /// Running row maximum of the raw scores seen so far.
    pub row_max: f32,
    /// Running sum of `exp(score - row_max)` under the current `row_max`.
    pub row_sum: f32,
    /// Partial output accumulator, one value per head dimension.
    pub acc: Vec<f32>,
}

impl OnlineSoftmaxState {
    /// Creates a fresh state for a head dimension of `d`.
    pub fn new(d: usize) -> Self {
        OnlineSoftmaxState {
            row_max: f32::NEG_INFINITY,
            row_sum: 0.0,
            acc: vec![0.0; d],
        }
    }

    /// Finalises the state into the attention output row.
    ///
    /// A row that never saw an unmasked key yields all zeros.
    pub fn finish(mut self) -> Vec<f32> {
        if self.row_sum > 0.0 {
            let inv = 1.0 / self.row_sum;
            for v in &mut self.acc {
                *v *= inv;
            }
        } else {
            self.acc.fill(0.0);
        }
        self.acc
    }
}

/// Folds one block of raw scores and their value rows into the online
/// softmax state.
///
/// `scores[t]` is the raw (pre-softmax) logit for the `t`-th key of the
/// block and `values(t)` returns that key's value row (length `d`).
///
/// # Panics
///
/// Panics (in debug builds) if a value row length differs from the state's
/// accumulator length.
pub fn online_softmax_update<'a>(
    state: &mut OnlineSoftmaxState,
    scores: &[f32],
    mut values: impl FnMut(usize) -> &'a [f32],
) {
    if scores.is_empty() {
        return;
    }
    let block_max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if block_max == f32::NEG_INFINITY {
        return; // fully masked block
    }
    let new_max = state.row_max.max(block_max);
    let correction = if state.row_max == f32::NEG_INFINITY {
        0.0
    } else {
        (state.row_max - new_max).exp()
    };
    state.row_sum *= correction;
    for v in &mut state.acc {
        *v *= correction;
    }
    for (t, &s) in scores.iter().enumerate() {
        if s == f32::NEG_INFINITY {
            continue;
        }
        let w = (s - new_max).exp();
        state.row_sum += w;
        let val = values(t);
        debug_assert_eq!(val.len(), state.acc.len());
        for (a, &x) in state.acc.iter_mut().zip(val.iter()) {
            *a += w * x;
        }
    }
    state.row_max = new_max;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_row_sums_to_one() {
        let mut r = vec![1.0, 2.0, 3.0];
        softmax_row(&mut r);
        assert!((r.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(r[2] > r[1] && r[1] > r[0]);
    }

    #[test]
    fn softmax_row_is_shift_invariant() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![1001.0, 1002.0, 1003.0];
        softmax_row(&mut a);
        softmax_row(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_magnitudes() {
        let mut r = vec![1e4, -1e4, 0.0];
        softmax_row(&mut r);
        assert!(r.iter().all(|v| v.is_finite()));
        assert!((r[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_fully_masked_row_is_zero() {
        let mut r = vec![f32::NEG_INFINITY; 4];
        softmax_row(&mut r);
        assert_eq!(r, vec![0.0; 4]);
    }

    #[test]
    fn softmax_empty_row_noop() {
        let mut r: Vec<f32> = vec![];
        softmax_row(&mut r);
        assert!(r.is_empty());
    }

    #[test]
    fn softmax_partially_masked_row() {
        let mut r = vec![0.0, f32::NEG_INFINITY, 0.0];
        softmax_row(&mut r);
        assert!((r[0] - 0.5).abs() < 1e-6);
        assert_eq!(r[1], 0.0);
    }

    #[test]
    fn softmax_rows_matches_per_row() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * j) as f32 * 0.3);
        let out = softmax_rows(&m);
        for i in 0..3 {
            let mut want: Vec<f32> = m.row(i).to_vec();
            softmax_row(&mut want);
            for (g, w) in out.row(i).iter().zip(&want) {
                assert!((g - w).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn softmax_fully_masked_rows_zero_serial_and_parallel() {
        // A tall matrix (many pool chunks) where every third row is fully
        // masked. The masked rows must come back exactly zero — not NaN —
        // on the serial path and on every parallel thread count, with
        // bit-identical results.
        let rows = 64;
        let cols = 16;
        let build = || {
            Matrix::from_fn(rows, cols, |i, j| {
                if i % 3 == 0 {
                    f32::NEG_INFINITY
                } else {
                    ((i * cols + j) as f32 * 0.37).sin()
                }
            })
        };
        let serial = crate::pool::with_threads(1, || {
            let mut m = build();
            // Grain of 1 row forces the chunked path even at small sizes.
            pool::parallel_for_rows(m.as_mut_slice(), cols, 1, |_row0, chunk| {
                for row in chunk.chunks_mut(cols) {
                    softmax_row(row);
                }
            });
            m
        });
        for threads in [2usize, 4] {
            let parallel = crate::pool::with_threads(threads, || {
                let mut m = build();
                pool::parallel_for_rows(m.as_mut_slice(), cols, 1, |_row0, chunk| {
                    for row in chunk.chunks_mut(cols) {
                        softmax_row(row);
                    }
                });
                m
            });
            for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}");
            }
        }
        for i in 0..rows {
            if i % 3 == 0 {
                assert!(
                    serial.row(i).iter().all(|&x| x == 0.0),
                    "masked row {i} must be all-zero, got {:?}",
                    serial.row(i)
                );
            } else {
                let sum: f32 = serial.row(i).iter().sum();
                assert!((sum - 1.0).abs() < 1e-5, "live row {i} sums to {sum}");
                assert!(serial.row(i).iter().all(|x| x.is_finite()));
            }
        }
        // The public entry point agrees with the forced-chunk runs.
        let mut via_api = build();
        softmax_rows_in_place(&mut via_api);
        for (a, b) in serial.as_slice().iter().zip(via_api.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs = [0.1f32, -0.5, 2.0, 1.3];
        let naive = xs.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-6);
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn online_softmax_matches_exact_single_pass() {
        // One row of attention: scores over 6 keys, values in R^3.
        let scores = [0.5, -1.0, 2.0, 0.0, 1.5, -0.5];
        let values: Vec<Vec<f32>> = (0..6)
            .map(|t| vec![t as f32, (t * t) as f32 * 0.1, 1.0 - t as f32 * 0.2])
            .collect();

        // exact
        let mut p = scores.to_vec();
        softmax_row(&mut p);
        let mut want = vec![0.0; 3];
        for (t, v) in values.iter().enumerate() {
            for (w, x) in want.iter_mut().zip(v) {
                *w += p[t] * x;
            }
        }

        // online, in two blocks of 3
        let mut st = OnlineSoftmaxState::new(3);
        online_softmax_update(&mut st, &scores[0..3], |t| &values[t]);
        online_softmax_update(&mut st, &scores[3..6], |t| &values[3 + t]);
        let got = st.finish();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn online_softmax_block_order_invariant() {
        let scores = [3.0, -2.0, 0.7, 1.1];
        let values: Vec<Vec<f32>> = (0..4).map(|t| vec![(t as f32).sin(), 1.0]).collect();
        let run = |order: &[(usize, usize)]| {
            let mut st = OnlineSoftmaxState::new(2);
            for &(a, b) in order {
                online_softmax_update(&mut st, &scores[a..b], |t| &values[a + t]);
            }
            st.finish()
        };
        let x = run(&[(0, 2), (2, 4)]);
        let y = run(&[(0, 1), (1, 4)]);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn online_softmax_masked_entries_skipped() {
        let scores = [1.0, f32::NEG_INFINITY, 1.0];
        let values = [vec![1.0], vec![100.0], vec![3.0]];
        let mut st = OnlineSoftmaxState::new(1);
        online_softmax_update(&mut st, &scores, |t| &values[t]);
        let out = st.finish();
        assert!((out[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn online_softmax_all_masked_yields_zero() {
        let mut st = OnlineSoftmaxState::new(2);
        online_softmax_update(&mut st, &[f32::NEG_INFINITY; 3], |_| &[0.0, 0.0]);
        assert_eq!(st.finish(), vec![0.0, 0.0]);
    }
}
