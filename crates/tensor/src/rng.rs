//! Deterministic random generation helpers.
//!
//! Every experiment in this workspace is seeded; all randomness flows
//! through [`DeterministicRng`] so that tables and figures are exactly
//! reproducible run-to-run. The generator is the in-repo
//! [`Xoshiro256PlusPlus`] (seeded via `splitmix64`, see
//! [`crate::xoshiro`]), and the exact stream is pinned by golden tests —
//! platform- and dependency-independent by construction.

use crate::xoshiro::Xoshiro256PlusPlus;
use crate::Matrix;

/// A seeded random generator with the handful of distributions the
/// workspace needs (uniform, standard normal via Box–Muller, choices).
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    rng: Xoshiro256PlusPlus,
    /// Cached second Box–Muller variate.
    spare_normal: Option<f32>,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DeterministicRng {
            rng: Xoshiro256PlusPlus::from_seed(seed),
            spare_normal: None,
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.rng.next_f32()
    }

    /// The next 64 uniformly random bits (escape hatch for callers that
    /// need raw integers rather than a distribution).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform_range requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        self.rng.next_below(n as u64) as usize
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// A `rows x cols` matrix of i.i.d. `N(0, std_dev^2)` entries.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std_dev: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.normal() * std_dev)
    }

    /// `k` distinct indices sampled uniformly from `[0, n)`, sorted
    /// ascending. `k` is clamped to `n`.
    pub fn distinct_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        // Floyd's algorithm: O(k) expected insertions.
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Convenience constructor for a raw seeded [`Xoshiro256PlusPlus`], for
/// callers that want the bit stream without the distribution helpers.
pub fn seeded_rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::from_seed(seed)
}

/// A random matrix with orthonormal rows (`rows <= cols` required):
/// Gaussian rows orthonormalised by modified Gram–Schmidt, so
/// `(x M)·(y M) = x·y` exactly for any `x, y` — a distortion-free
/// embedding of a `rows`-dimensional subspace into `cols` dimensions.
///
/// # Panics
///
/// Panics if `rows > cols` or either is zero.
pub fn random_orthonormal_rows(rng: &mut DeterministicRng, rows: usize, cols: usize) -> Matrix {
    assert!(
        rows > 0 && cols >= rows,
        "need 0 < rows <= cols, got {rows}x{cols}"
    );
    let mut m = rng.normal_matrix(rows, cols, 1.0);
    for i in 0..rows {
        // Subtract projections onto previous rows, twice for stability.
        for _pass in 0..2 {
            for p in 0..i {
                let dot: f32 = m.row(i).iter().zip(m.row(p)).map(|(a, b)| a * b).sum();
                let prev: Vec<f32> = m.row(p).to_vec();
                for (x, &pv) in m.row_mut(i).iter_mut().zip(&prev) {
                    *x -= dot * pv;
                }
            }
        }
        let norm: f32 = m.row(i).iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-6 {
            for x in m.row_mut(i) {
                *x /= norm;
            }
        } else {
            // Degenerate draw (measure zero): fall back to a basis vector.
            let row = m.row_mut(i);
            row.fill(0.0);
            row[i % cols] = 1.0;
        }
    }
    m
}

/// A random unit vector of dimension `d`.
///
/// Falls back to the first basis vector in the (measure-zero) case of an
/// all-zero draw.
pub fn unit_vector(rng: &mut DeterministicRng, d: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..d).map(|_| rng.normal()).collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    } else if d > 0 {
        v[0] = 1.0;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.normal(), b.normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let va: Vec<f32> = (0..10).map(|_| a.uniform()).collect();
        let vb: Vec<f32> = (0..10).map(|_| b.uniform()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DeterministicRng::new(7);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = DeterministicRng::new(3);
        let xs: Vec<f32> = (0..20_000).map(|_| r.normal()).collect();
        let m = crate::mean(&xs);
        let v = crate::variance(&xs);
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "variance {v}");
    }

    #[test]
    fn distinct_indices_are_distinct_and_sorted() {
        let mut r = DeterministicRng::new(11);
        for _ in 0..50 {
            let idx = r.distinct_indices(100, 20);
            assert_eq!(idx.len(), 20);
            assert!(idx.windows(2).all(|w| w[0] < w[1]));
            assert!(idx.iter().all(|&i| i < 100));
        }
        assert_eq!(r.distinct_indices(5, 9).len(), 5);
        assert!(r.distinct_indices(0, 3).is_empty());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DeterministicRng::new(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn orthonormal_rows_preserve_dot_products() {
        let mut r = DeterministicRng::new(21);
        let m = random_orthonormal_rows(&mut r, 8, 16);
        // rows orthonormal
        for i in 0..8 {
            for j in 0..8 {
                let dot: f32 = m.row(i).iter().zip(m.row(j)).map(|(a, b)| a * b).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-4, "({i},{j}): {dot}");
            }
        }
        // arbitrary vectors' dot products preserved
        let x: Vec<f32> = (0..8).map(|_| r.normal()).collect();
        let y: Vec<f32> = (0..8).map(|_| r.normal()).collect();
        let proj = |v: &[f32]| -> Vec<f32> {
            (0..16)
                .map(|c| (0..8).map(|r_| v[r_] * m.get(r_, c)).sum())
                .collect()
        };
        let px = proj(&x);
        let py = proj(&y);
        let d0: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let d1: f32 = px.iter().zip(&py).map(|(a, b)| a * b).sum();
        assert!((d0 - d1).abs() < 1e-3, "{d0} vs {d1}");
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn orthonormal_rows_rejects_wide() {
        let mut r = DeterministicRng::new(22);
        let _ = random_orthonormal_rows(&mut r, 9, 8);
    }

    #[test]
    fn unit_vector_has_unit_norm() {
        let mut r = DeterministicRng::new(9);
        let v = unit_vector(&mut r, 16);
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normal_matrix_shape_and_scale() {
        let mut r = DeterministicRng::new(13);
        let m = r.normal_matrix(40, 50, 0.5);
        assert_eq!(m.shape(), (40, 50));
        let v = crate::variance(m.as_slice());
        assert!((v - 0.25).abs() < 0.02, "variance {v}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DeterministicRng::new(17);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.1)));
    }
}
