//! # sa-tensor
//!
//! Dense math substrate for the SampleAttention reproduction.
//!
//! This crate provides the small set of numerical primitives every other
//! crate in the workspace builds on: a row-major [`Matrix`] of `f32`,
//! blocked matrix multiplication, numerically stable (and *online*)
//! softmax, row/column reductions, selection primitives (arg-sort, top-k,
//! `searchsorted`), strided row sampling, and deterministic random
//! generation helpers.
//!
//! Everything is allocation-conscious, and the large-matrix entry points
//! (`matmul`, `matmul_transb`, `softmax_rows_in_place`, `col_sum`) are
//! data-parallel over independent rows/columns via the hermetic scoped
//! worker pool in [`pool`]. Parallel execution is bit-deterministic with
//! respect to the serial path — see the [`pool`] module docs for the
//! contract — and the worker count is controlled by the `SA_THREADS`
//! environment variable (default: `std::thread::available_parallelism`).
//!
//! ## Example
//!
//! ```
//! use sa_tensor::{Matrix, matmul_transb, softmax_rows_in_place};
//!
//! # fn main() -> Result<(), sa_tensor::TensorError> {
//! let q = Matrix::from_fn(2, 4, |i, j| (i + j) as f32 * 0.1);
//! let k = Matrix::from_fn(3, 4, |i, j| (i * j) as f32 * 0.1);
//! let mut scores = matmul_transb(&q, &k)?; // 2x3 = Q K^T
//! softmax_rows_in_place(&mut scores);
//! assert!((scores.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod cancel;
pub mod check;
mod error;
pub mod fault;
mod matrix;
mod matmul;
pub mod pool;
mod reduce;
mod rng;
mod sample;
mod select;
mod softmax;
mod stats;
mod tilepack;
pub mod xoshiro;

pub use cancel::CancelToken;
pub use error::{SaError, TensorError};
pub use matrix::Matrix;
pub use matmul::{matmul, matmul_transb, matvec, GEMM_BLOCK};
pub use reduce::{
    col_mean, col_sum, row_l1_norms, row_max, row_min, row_sum, scale_rows_in_place,
};
pub use rng::{random_orthonormal_rows, seeded_rng, unit_vector, DeterministicRng};
pub use xoshiro::{splitmix64, Xoshiro256PlusPlus};
pub use sample::{stride_sample_indices, StrideSample};
pub use select::{
    argsort_desc, prefix_sum, searchsorted_left, searchsorted_right, top_k_indices,
    top_k_threshold_count,
};
pub use softmax::{
    log_sum_exp, online_softmax_update, softmax_row, softmax_rows, softmax_rows_in_place,
    OnlineSoftmaxState,
};
pub use stats::{cosine_similarity, l1_distance, l1_norm, max_abs_diff, mean, mse, variance};
pub use tilepack::TilePack;
