use std::fmt;

/// Unified error taxonomy for the attention pipeline.
///
/// All fallible public functions in `sa-tensor` (and, via the
/// `TensorError` / `KernelError` aliases, in `sa-kernels` and the
/// pipeline crates above) return `Result<_, SaError>`. The first three
/// variants are argument-validation errors; `NonFinite`,
/// `DegenerateMask`, `AlphaUnsatisfied` and `WorkerPanic` are *health*
/// errors raised by the numerical sentinels and the worker pool, and are
/// the inputs to the graceful-degradation policy (see `sa-core`'s
/// `HealthPolicy`). The remaining variants belong to the serving layer:
/// `Cancelled` / `DeadlineExceeded` report cooperative cancellation with
/// partial-progress stats, and `Overloaded` / `BudgetExceeded` are
/// admission-control rejections. None of the serving variants is a
/// health error — a cancelled request must surface as cancelled, never
/// be absorbed into a dense fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum SaError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// The operation being performed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A dimension argument was zero or otherwise out of the valid range.
    InvalidDimension {
        /// The operation being performed.
        op: &'static str,
        /// Human-readable description of the offending argument.
        what: String,
    },
    /// An index was out of bounds for the matrix it addressed.
    IndexOutOfBounds {
        /// The operation being performed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay under.
        bound: usize,
    },
    /// A numerical-health sentinel found NaN/Inf values at a stage
    /// boundary.
    NonFinite {
        /// The pipeline stage where the values were observed
        /// (e.g. `"inputs"`, `"sampled_scores"`, `"attention_output"`).
        stage: &'static str,
        /// The head index, when the failure is attributed to one head.
        head: Option<usize>,
        /// Number of non-finite entries observed.
        count: usize,
    },
    /// A discovered or merged sparsity mask was unusable (e.g. zero
    /// live entries while the causal region is non-empty, or zero
    /// stage-1 score mass).
    DegenerateMask {
        /// The pipeline stage that produced the mask.
        stage: &'static str,
        /// Human-readable description of the degeneracy.
        what: String,
    },
    /// Stage 2 could not cover the requested CRA threshold `alpha`
    /// within the configured tolerance (Def. 2 in the paper).
    AlphaUnsatisfied {
        /// Attention mass actually covered by the selected KV set.
        covered: f32,
        /// The configured CRA threshold.
        alpha: f32,
        /// The head index, when attributed to one head.
        head: Option<usize>,
    },
    /// A worker thread panicked inside a pool primitive; the panic was
    /// caught at the chunk boundary instead of aborting the process.
    WorkerPanic {
        /// The pool call site (e.g. `"sparse_flash_attention"`).
        site: &'static str,
        /// The panic payload rendered as a string.
        message: String,
    },
    /// The caller cancelled the operation through a
    /// [`CancelToken`](crate::cancel::CancelToken); the work stopped
    /// cooperatively at the next chunk boundary.
    Cancelled {
        /// The call site that observed the cancellation.
        site: &'static str,
        /// Chunks fully processed before the cancellation was observed.
        completed: usize,
        /// Total chunks the operation was split into.
        total: usize,
    },
    /// A [`CancelToken`](crate::cancel::CancelToken) deadline (measured
    /// on the `sa_trace` clock) expired; the work stopped cooperatively
    /// at the next chunk boundary.
    DeadlineExceeded {
        /// The call site that observed the expiry.
        site: &'static str,
        /// Chunks fully processed before the expiry was observed.
        completed: usize,
        /// Total chunks the operation was split into.
        total: usize,
    },
    /// A serving admission check rejected the request because too many
    /// requests were already in flight or queued.
    Overloaded {
        /// Requests in flight or queued at rejection time.
        inflight: usize,
        /// The configured admission limit.
        max_inflight: usize,
    },
    /// A serving admission check rejected the request because its
    /// projected memory footprint exceeds the configured budget.
    BudgetExceeded {
        /// Projected bytes the request would need.
        required_bytes: u64,
        /// The configured budget in bytes.
        budget_bytes: u64,
    },
    /// A checkpoint's restore-time checksum disagreed with the one
    /// recorded at snapshot time: the KV bytes were corrupted between
    /// snapshot and restore (bit flips, truncation, version skew). The
    /// session must be rebuilt from scratch — restoring corrupted KV
    /// state would propagate silently wrong attention outputs.
    CorruptCheckpoint {
        /// Checksum recorded when the snapshot was taken.
        expected: u64,
        /// Checksum recomputed over the staged bytes at restore time.
        actual: u64,
    },
    /// A per-tenant quality floor shed the request: serving it would
    /// require degrading below the tenant's minimum ladder rung (or
    /// would overflow the tenant's budget of uncertified-rung tokens),
    /// and the near-lossless contract forbids trading quality below the
    /// configured floor. Like the admission rejections, the request
    /// never ran the model.
    QualityFloor {
        /// The tenant whose floor blocked the request.
        tenant: u64,
        /// What the floor refused to trade away.
        what: String,
    },
}

/// Historical name for [`SaError`]; kept so every pre-existing
/// `Result<_, TensorError>` signature keeps compiling unchanged.
pub type TensorError = SaError;

impl SaError {
    /// True for the health-sentinel variants that the degradation
    /// policy may convert into a dense per-head fallback; false for
    /// argument-validation errors, which always propagate.
    pub fn is_health_error(&self) -> bool {
        matches!(
            self,
            SaError::NonFinite { .. }
                | SaError::DegenerateMask { .. }
                | SaError::AlphaUnsatisfied { .. }
                | SaError::WorkerPanic { .. }
        )
    }

    /// True for the cooperative-cancellation variants (`Cancelled`,
    /// `DeadlineExceeded`). These always propagate — the degradation
    /// policy must never convert a cancellation into a fallback, and the
    /// serving retry loop must never retry one.
    pub fn is_cancellation(&self) -> bool {
        matches!(
            self,
            SaError::Cancelled { .. } | SaError::DeadlineExceeded { .. }
        )
    }

    /// True for admission-control rejections (`Overloaded`,
    /// `BudgetExceeded`, `QualityFloor`): the request never started, so
    /// there is no partial state to clean up.
    pub fn is_rejection(&self) -> bool {
        matches!(
            self,
            SaError::Overloaded { .. }
                | SaError::BudgetExceeded { .. }
                | SaError::QualityFloor { .. }
        )
    }

    /// Attributes the error to `head`, for variants that carry a head
    /// index; other variants pass through unchanged.
    pub fn with_head(self, h: usize) -> Self {
        match self {
            SaError::NonFinite { stage, count, .. } => SaError::NonFinite {
                stage,
                head: Some(h),
                count,
            },
            SaError::AlphaUnsatisfied { covered, alpha, .. } => SaError::AlphaUnsatisfied {
                covered,
                alpha,
                head: Some(h),
            },
            other => other,
        }
    }
}

impl fmt::Display for SaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SaError::InvalidDimension { op, what } => {
                write!(f, "invalid dimension in {op}: {what}")
            }
            SaError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "index {index} out of bounds (< {bound}) in {op}")
            }
            SaError::NonFinite { stage, head, count } => match head {
                Some(h) => write!(f, "{count} non-finite value(s) at {stage} (head {h})"),
                None => write!(f, "{count} non-finite value(s) at {stage}"),
            },
            SaError::DegenerateMask { stage, what } => {
                write!(f, "degenerate mask at {stage}: {what}")
            }
            SaError::AlphaUnsatisfied { covered, alpha, head } => match head {
                Some(h) => write!(
                    f,
                    "CRA {covered} below alpha {alpha} beyond tolerance (head {h})"
                ),
                None => write!(f, "CRA {covered} below alpha {alpha} beyond tolerance"),
            },
            SaError::WorkerPanic { site, message } => {
                write!(f, "worker panicked in {site}: {message}")
            }
            SaError::Cancelled { site, completed, total } => {
                write!(f, "cancelled at {site} after {completed}/{total} chunks")
            }
            SaError::DeadlineExceeded { site, completed, total } => {
                write!(f, "deadline exceeded at {site} after {completed}/{total} chunks")
            }
            SaError::Overloaded { inflight, max_inflight } => {
                write!(f, "overloaded: {inflight} requests in flight (limit {max_inflight})")
            }
            SaError::BudgetExceeded { required_bytes, budget_bytes } => {
                write!(
                    f,
                    "memory budget exceeded: {required_bytes} bytes required, {budget_bytes} budgeted"
                )
            }
            SaError::CorruptCheckpoint { expected, actual } => {
                write!(
                    f,
                    "corrupt checkpoint: checksum {actual:#018x} != recorded {expected:#018x}"
                )
            }
            SaError::QualityFloor { tenant, what } => {
                write!(f, "quality floor for tenant {tenant}: {what}")
            }
        }
    }
}

impl std::error::Error for SaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_invalid_dimension() {
        let e = TensorError::InvalidDimension {
            op: "softmax",
            what: "zero columns".to_string(),
        };
        assert!(e.to_string().contains("softmax"));
        assert!(e.to_string().contains("zero columns"));
    }

    #[test]
    fn display_index_oob() {
        let e = TensorError::IndexOutOfBounds {
            op: "row",
            index: 9,
            bound: 4,
        };
        assert_eq!(e.to_string(), "index 9 out of bounds (< 4) in row");
    }

    #[test]
    fn display_health_variants() {
        let e = SaError::NonFinite {
            stage: "sampled_scores",
            head: Some(3),
            count: 7,
        };
        assert_eq!(e.to_string(), "7 non-finite value(s) at sampled_scores (head 3)");
        let e = SaError::DegenerateMask {
            stage: "mask_merge",
            what: "zero live entries".to_string(),
        };
        assert!(e.to_string().contains("mask_merge"));
        let e = SaError::AlphaUnsatisfied {
            covered: 0.5,
            alpha: 0.95,
            head: None,
        };
        assert!(e.to_string().contains("0.95"));
        let e = SaError::WorkerPanic {
            site: "flash_attention",
            message: "boom".to_string(),
        };
        assert!(e.to_string().contains("flash_attention"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn health_classification() {
        assert!(!SaError::InvalidDimension {
            op: "x",
            what: String::new()
        }
        .is_health_error());
        assert!(SaError::NonFinite {
            stage: "s",
            head: None,
            count: 1
        }
        .is_health_error());
        assert!(SaError::WorkerPanic {
            site: "s",
            message: String::new()
        }
        .is_health_error());
    }

    #[test]
    fn with_head_attributes_where_supported() {
        let e = SaError::NonFinite {
            stage: "s",
            head: None,
            count: 2,
        }
        .with_head(4);
        assert_eq!(
            e,
            SaError::NonFinite {
                stage: "s",
                head: Some(4),
                count: 2
            }
        );
        let e = SaError::AlphaUnsatisfied {
            covered: 0.1,
            alpha: 0.9,
            head: None,
        }
        .with_head(1);
        assert!(matches!(e, SaError::AlphaUnsatisfied { head: Some(1), .. }));
        let e = SaError::IndexOutOfBounds {
            op: "row",
            index: 1,
            bound: 2,
        };
        assert_eq!(e.clone().with_head(9), e);
    }

    #[test]
    fn display_serving_variants() {
        let e = SaError::Cancelled {
            site: "prefill_chunked",
            completed: 3,
            total: 8,
        };
        assert_eq!(e.to_string(), "cancelled at prefill_chunked after 3/8 chunks");
        let e = SaError::DeadlineExceeded {
            site: "layer_heads",
            completed: 0,
            total: 4,
        };
        assert!(e.to_string().contains("deadline exceeded"));
        assert!(e.to_string().contains("0/4"));
        let e = SaError::Overloaded {
            inflight: 9,
            max_inflight: 8,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("limit 8"));
        let e = SaError::BudgetExceeded {
            required_bytes: 1024,
            budget_bytes: 512,
        };
        assert!(e.to_string().contains("1024"));
        assert!(e.to_string().contains("512"));
    }

    #[test]
    fn serving_variants_are_not_health_errors() {
        // A cancellation or rejection must propagate — the dense-fallback
        // policy only applies to numerical-health failures.
        let cancelled = SaError::Cancelled {
            site: "s",
            completed: 1,
            total: 2,
        };
        let deadline = SaError::DeadlineExceeded {
            site: "s",
            completed: 1,
            total: 2,
        };
        let overloaded = SaError::Overloaded {
            inflight: 1,
            max_inflight: 1,
        };
        let budget = SaError::BudgetExceeded {
            required_bytes: 2,
            budget_bytes: 1,
        };
        for e in [&cancelled, &deadline, &overloaded, &budget] {
            assert!(!e.is_health_error(), "{e}");
        }
        assert!(cancelled.is_cancellation());
        assert!(deadline.is_cancellation());
        assert!(!overloaded.is_cancellation());
        assert!(overloaded.is_rejection());
        assert!(budget.is_rejection());
        assert!(!cancelled.is_rejection());
        assert!(!SaError::WorkerPanic {
            site: "s",
            message: String::new()
        }
        .is_cancellation());
    }

    #[test]
    fn corrupt_checkpoint_is_typed_and_never_degraded_away() {
        let e = SaError::CorruptCheckpoint {
            expected: 0xAB,
            actual: 0xCD,
        };
        assert!(e.to_string().contains("corrupt checkpoint"), "{e}");
        assert!(e.to_string().contains("0x00000000000000cd"), "{e}");
        // Corruption is neither a health error (no dense fallback may
        // absorb it), nor a cancellation, nor an admission rejection:
        // it always propagates to the restore caller, which falls back
        // to rebuilding the session from scratch.
        assert!(!e.is_health_error());
        assert!(!e.is_cancellation());
        assert!(!e.is_rejection());
    }

    #[test]
    fn quality_floor_is_a_rejection() {
        let e = SaError::QualityFloor {
            tenant: 2,
            what: "WindowOnly below floor Tight".to_string(),
        };
        assert!(e.to_string().contains("quality floor"), "{e}");
        assert!(e.to_string().contains("tenant 2"), "{e}");
        // A floor shed is an admission-style rejection: the request
        // never ran, and it must not be absorbed into a dense fallback
        // or mistaken for a cancellation.
        assert!(e.is_rejection());
        assert!(!e.is_health_error());
        assert!(!e.is_cancellation());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
