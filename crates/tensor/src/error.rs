use std::fmt;

/// Error type for shape and argument validation in `sa-tensor`.
///
/// All fallible public functions in this crate return
/// `Result<_, TensorError>`; the error carries enough context to state
/// which operation rejected which shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// The operation being performed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A dimension argument was zero or otherwise out of the valid range.
    InvalidDimension {
        /// The operation being performed.
        op: &'static str,
        /// Human-readable description of the offending argument.
        what: String,
    },
    /// An index was out of bounds for the matrix it addressed.
    IndexOutOfBounds {
        /// The operation being performed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay under.
        bound: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidDimension { op, what } => {
                write!(f, "invalid dimension in {op}: {what}")
            }
            TensorError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "index {index} out of bounds (< {bound}) in {op}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_invalid_dimension() {
        let e = TensorError::InvalidDimension {
            op: "softmax",
            what: "zero columns".to_string(),
        };
        assert!(e.to_string().contains("softmax"));
        assert!(e.to_string().contains("zero columns"));
    }

    #[test]
    fn display_index_oob() {
        let e = TensorError::IndexOutOfBounds {
            op: "row",
            index: 9,
            bound: 4,
        };
        assert_eq!(e.to_string(), "index 9 out of bounds (< 4) in row");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
