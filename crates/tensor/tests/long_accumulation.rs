//! Long-length accumulation regression tests.
//!
//! At paper-scale S (≥ 128k) an f32 running sum loses low-order mass —
//! enough to move stage-2's `searchsorted` α-threshold. These tests pin
//! the fix: `col_sum`, `prefix_sum`, `softmax_row`'s normaliser, and
//! `log_sum_exp` accumulate in f64 (outputs stay f32), so at long
//! lengths they must agree with an f64 reference to f32 round-off —
//! tolerances a serial f32 accumulator demonstrably violates.

use sa_tensor::{col_sum, log_sum_exp, prefix_sum, softmax_row, DeterministicRng, Matrix};

/// Long enough that sequential f32 accumulation drifts well past 1e-6
/// relative error on same-sign inputs.
const LONG: usize = 200_000;

fn long_values() -> Vec<f32> {
    let mut rng = DeterministicRng::new(0x10ac);
    (0..LONG).map(|_| rng.uniform_range(0.05, 0.15)).collect()
}

/// Demonstrates the bug class: naive f32 accumulation of the same data
/// diverges from the f64 reference by orders of magnitude more than the
/// tolerance the fixed routines are held to below.
#[test]
fn f32_reference_accumulator_actually_drifts() {
    let xs = long_values();
    let f64_sum: f64 = xs.iter().map(|&x| f64::from(x)).sum();
    let f32_sum: f32 = xs.iter().sum();
    let drift = (f64::from(f32_sum) - f64_sum).abs() / f64_sum;
    assert!(
        drift > 1e-6,
        "expected visible f32 drift at n={LONG}, got {drift:e}"
    );
}

#[test]
fn col_sum_matches_f64_reference_at_long_length() {
    let cols = 3;
    let xs = long_values();
    let m = Matrix::from_fn(LONG, cols, |i, j| xs[i] * (j + 1) as f32);
    let got = col_sum(&m);
    for (j, &g) in got.iter().enumerate() {
        let want: f64 = (0..LONG).map(|i| f64::from(m.get(i, j))).sum();
        let rel = (f64::from(g) - want).abs() / want;
        assert!(rel < 1e-6, "col {j}: rel error {rel:e}");
    }
}

#[test]
fn prefix_sum_matches_f64_reference_at_long_length() {
    let xs = long_values();
    let got = prefix_sum(&xs);
    assert_eq!(got.len(), LONG);
    // Check the tail (where drift accumulates) and a few interior points.
    let mut acc = 0.0f64;
    let mut reference = Vec::with_capacity(LONG);
    for &x in &xs {
        acc += f64::from(x);
        reference.push(acc);
    }
    for &i in &[LONG / 4, LONG / 2, LONG - 1] {
        let rel = (f64::from(got[i]) - reference[i]).abs() / reference[i];
        assert!(rel < 1e-6, "prefix[{i}]: rel error {rel:e}");
    }
}

#[test]
fn softmax_row_normaliser_matches_f64_reference_at_long_length() {
    // Equal logits: every probability must be 1/n to f32 round-off. An
    // f32 normaliser sum mis-sizes the denominator at this length.
    let mut row = vec![0.5f32; LONG];
    softmax_row(&mut row);
    let uniform = 1.0 / LONG as f64;
    for (i, &p) in row.iter().enumerate() {
        let rel = (f64::from(p) - uniform).abs() / uniform;
        assert!(rel < 1e-6, "p[{i}] = {p:e}, rel error {rel:e}");
    }
    // And the distribution still sums to 1 (checked in f64).
    let total: f64 = row.iter().map(|&p| f64::from(p)).sum();
    assert!((total - 1.0).abs() < 1e-4, "total {total}");
}

#[test]
fn log_sum_exp_matches_f64_reference_at_long_length() {
    // All-zero logits: exact answer is ln(n).
    let xs = vec![0.0f32; LONG];
    let got = log_sum_exp(&xs);
    let want = (LONG as f64).ln();
    let rel = (f64::from(got) - want).abs() / want;
    assert!(rel < 1e-6, "got {got}, want {want}, rel error {rel:e}");

    // Mixed-magnitude logits against a full f64 recomputation.
    let mut rng = DeterministicRng::new(0x15e);
    let ys: Vec<f32> = (0..LONG).map(|_| rng.uniform_range(-3.0, 3.0)).collect();
    let got = log_sum_exp(&ys);
    let max = ys.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let sum: f64 = ys.iter().map(|&y| f64::from(y - max).exp()).sum();
    let want = f64::from(max) + sum.ln();
    assert!(
        (f64::from(got) - want).abs() / want.abs() < 1e-6,
        "got {got}, want {want}"
    );
}
