//! Property-based tests of the tensor substrate's algebraic invariants,
//! driven by the in-repo harness ([`sa_tensor::check`]).

use sa_tensor::check::run_cases;
use sa_tensor::{
    argsort_desc, matmul, matmul_transb, prefix_sum, searchsorted_left, searchsorted_right,
    softmax_row, softmax_rows, top_k_indices, top_k_threshold_count, DeterministicRng, Matrix,
    StrideSample,
};

fn small_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = DeterministicRng::new(seed);
    rng.normal_matrix(rows, cols, 1.0)
}

/// (A B)ᵀ = Bᵀ Aᵀ.
#[test]
fn matmul_transpose_identity() {
    run_cases("matmul_transpose_identity", |g| {
        let (m, k, n) = (g.usize_in(1, 12), g.usize_in(1, 12), g.usize_in(1, 12));
        let seed = g.u64_in(0, 1000);
        let a = small_matrix(m, k, seed);
        let b = small_matrix(k, n, seed ^ 1);
        let left = matmul(&a, &b).unwrap().transpose();
        let right = matmul(&b.transpose(), &a.transpose()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    });
}

/// A Bᵀ computed by matmul_transb equals the explicit transpose path.
#[test]
fn transb_equals_explicit() {
    run_cases("transb_equals_explicit", |g| {
        let (m, k, n) = (g.usize_in(1, 12), g.usize_in(1, 12), g.usize_in(1, 12));
        let seed = g.u64_in(0, 1000);
        let a = small_matrix(m, k, seed);
        let b = small_matrix(n, k, seed ^ 2);
        let fast = matmul_transb(&a, &b).unwrap();
        let slow = matmul(&a, &b.transpose()).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    });
}

/// Transpose is an involution.
#[test]
fn transpose_involution() {
    run_cases("transpose_involution", |g| {
        let (m, n) = (g.usize_in(0, 16), g.usize_in(0, 16));
        let a = small_matrix(m, n, g.u64_in(0, 1000));
        assert_eq!(a.transpose().transpose(), a);
    });
}

/// Softmax rows are probability distributions, invariant to shifts,
/// and monotone in the inputs.
#[test]
fn softmax_row_properties() {
    run_cases("softmax_row_properties", |g| {
        let mut xs = g.vec_f32(-30.0, 30.0, 1, 40);
        let shift = g.f32_in(-100.0, 100.0);
        let mut shifted: Vec<f32> = xs.iter().map(|x| x + shift).collect();
        softmax_row(&mut xs);
        softmax_row(&mut shifted);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(xs.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        for (a, b) in xs.iter().zip(&shifted) {
            assert!((a - b).abs() < 1e-4);
        }
    });
}

/// Row softmax of a matrix treats rows independently.
#[test]
fn softmax_rows_independent() {
    run_cases("softmax_rows_independent", |g| {
        let (rows, cols) = (g.usize_in(1, 8), g.usize_in(1, 12));
        let m = small_matrix(rows, cols, g.u64_in(0, 1000));
        let whole = softmax_rows(&m);
        for i in 0..rows {
            let mut row = m.row(i).to_vec();
            softmax_row(&mut row);
            for (a, b) in whole.row(i).iter().zip(&row) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    });
}

/// argsort produces a permutation sorted descending.
#[test]
fn argsort_is_sorted_permutation() {
    run_cases("argsort_is_sorted_permutation", |g| {
        let xs = g.vec_f32(-50.0, 50.0, 0, 60);
        let idx = argsort_desc(&xs);
        assert_eq!(idx.len(), xs.len());
        let mut seen = idx.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..xs.len()).collect::<Vec<_>>());
        for w in idx.windows(2) {
            assert!(xs[w[0]] >= xs[w[1]]);
        }
    });
}

/// top-k agrees with the argsort prefix as a multiset of values.
#[test]
fn top_k_matches_sort_prefix() {
    run_cases("top_k_matches_sort_prefix", |g| {
        let xs = g.vec_f32(-50.0, 50.0, 0, 60);
        let k = g.usize_in(0, 70);
        let got: Vec<f32> = top_k_indices(&xs, k).iter().map(|&i| xs[i]).collect();
        let want: Vec<f32> = argsort_desc(&xs).iter().take(k).map(|&i| xs[i]).collect();
        assert_eq!(got, want);
    });
}

/// Threshold count: the top-count sum reaches the target, and one
/// fewer element would not.
#[test]
fn threshold_count_minimal() {
    run_cases("threshold_count_minimal", |g| {
        let xs = g.vec_f32(0.0, 10.0, 1, 50);
        let threshold = g.f32_in(0.05, 0.999);
        let count = top_k_threshold_count(&xs, threshold);
        let total: f32 = xs.iter().sum();
        if total > 0.0 {
            let order = argsort_desc(&xs);
            let top_sum: f32 = order.iter().take(count).map(|&i| xs[i]).sum();
            assert!(top_sum >= threshold * total - 1e-3);
            if count > 1 {
                let smaller: f32 = order.iter().take(count - 1).map(|&i| xs[i]).sum();
                assert!(smaller < threshold * total + 1e-3);
            }
        }
    });
}

/// Prefix sums are monotone for non-negative inputs and end at the
/// total.
#[test]
fn prefix_sum_monotone() {
    run_cases("prefix_sum_monotone", |g| {
        let xs = g.vec_f32(0.0, 5.0, 0, 50);
        let ps = prefix_sum(&xs);
        assert_eq!(ps.len(), xs.len());
        for w in ps.windows(2) {
            assert!(w[1] >= w[0] - 1e-6);
        }
        if let Some(&last) = ps.last() {
            let total: f32 = xs.iter().sum();
            assert!((last - total).abs() < 1e-3);
        }
    });
}

/// searchsorted returns the partition points it promises.
#[test]
fn searchsorted_partition_points() {
    run_cases("searchsorted_partition_points", |g| {
        let mut xs = g.vec_f32(-20.0, 20.0, 0, 40);
        let value = g.f32_in(-25.0, 25.0);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let l = searchsorted_left(&xs, value);
        let r = searchsorted_right(&xs, value);
        assert!(l <= r);
        assert!(xs[..l].iter().all(|&x| x < value));
        assert!(xs[l..].iter().all(|&x| x >= value));
        assert!(xs[..r].iter().all(|&x| x <= value));
        assert!(xs[r..].iter().all(|&x| x > value));
    });
}

/// Stride samples are strictly increasing, in range, include the last
/// row, and hit the requested ratio approximately.
#[test]
fn stride_sample_invariants() {
    run_cases("stride_sample_invariants", |g| {
        let n = g.usize_in(1, 2000);
        let ratio = g.f32_in(0.001, 1.0);
        let s = StrideSample::by_ratio(n, ratio).unwrap();
        assert!(!s.is_empty());
        assert!(s.indices().windows(2).all(|w| w[0] < w[1]));
        assert!(s.indices().iter().all(|&i| i < n));
        assert_eq!(*s.indices().last().unwrap(), n - 1);
        let achieved = s.ratio();
        assert!(achieved + 1e-6 >= ratio.min(1.0) - 2.0 / n as f32);
    });
}

/// gather_rows + slice_rows round-trip.
#[test]
fn gather_slice_consistency() {
    run_cases("gather_slice_consistency", |g| {
        let (rows, cols) = (g.usize_in(1, 20), g.usize_in(1, 8));
        let m = small_matrix(rows, cols, g.u64_in(0, 1000));
        let all: Vec<usize> = (0..rows).collect();
        assert_eq!(m.gather_rows(&all).unwrap(), m.clone());
        let half = rows / 2;
        let s = m.slice_rows(0, half).unwrap();
        let g2 = m.gather_rows(&(0..half).collect::<Vec<_>>()).unwrap();
        assert_eq!(s, g2);
    });
}
