//! Property-based tests of the tensor substrate's algebraic invariants.

use proptest::prelude::*;
use sa_tensor::{
    argsort_desc, matmul, matmul_transb, prefix_sum, searchsorted_left, searchsorted_right,
    softmax_row, softmax_rows, top_k_indices, top_k_threshold_count, DeterministicRng, Matrix,
    StrideSample,
};

fn small_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = DeterministicRng::new(seed);
    rng.normal_matrix(rows, cols, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A B)ᵀ = Bᵀ Aᵀ.
    #[test]
    fn matmul_transpose_identity(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let a = small_matrix(m, k, seed);
        let b = small_matrix(k, n, seed ^ 1);
        let left = matmul(&a, &b).unwrap().transpose();
        let right = matmul(&b.transpose(), &a.transpose()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// A Bᵀ computed by matmul_transb equals the explicit transpose path.
    #[test]
    fn transb_equals_explicit(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let a = small_matrix(m, k, seed);
        let b = small_matrix(n, k, seed ^ 2);
        let fast = matmul_transb(&a, &b).unwrap();
        let slow = matmul(&a, &b.transpose()).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(m in 0usize..16, n in 0usize..16, seed in 0u64..1000) {
        let a = small_matrix(m, n, seed);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// Softmax rows are probability distributions, invariant to shifts,
    /// and monotone in the inputs.
    #[test]
    fn softmax_row_properties(
        mut xs in proptest::collection::vec(-30.0f32..30.0, 1..40),
        shift in -100.0f32..100.0,
    ) {
        let mut shifted: Vec<f32> = xs.iter().map(|x| x + shift).collect();
        softmax_row(&mut xs);
        softmax_row(&mut shifted);
        let sum: f32 = xs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(xs.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        for (a, b) in xs.iter().zip(&shifted) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Row softmax of a matrix treats rows independently.
    #[test]
    fn softmax_rows_independent(rows in 1usize..8, cols in 1usize..12, seed in 0u64..1000) {
        let m = small_matrix(rows, cols, seed);
        let whole = softmax_rows(&m);
        for i in 0..rows {
            let mut row = m.row(i).to_vec();
            softmax_row(&mut row);
            for (a, b) in whole.row(i).iter().zip(&row) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }

    /// argsort produces a permutation sorted descending.
    #[test]
    fn argsort_is_sorted_permutation(xs in proptest::collection::vec(-50.0f32..50.0, 0..60)) {
        let idx = argsort_desc(&xs);
        prop_assert_eq!(idx.len(), xs.len());
        let mut seen = idx.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..xs.len()).collect::<Vec<_>>());
        for w in idx.windows(2) {
            prop_assert!(xs[w[0]] >= xs[w[1]]);
        }
    }

    /// top-k agrees with the argsort prefix as a multiset of values.
    #[test]
    fn top_k_matches_sort_prefix(
        xs in proptest::collection::vec(-50.0f32..50.0, 0..60),
        k in 0usize..70,
    ) {
        let got: Vec<f32> = top_k_indices(&xs, k).iter().map(|&i| xs[i]).collect();
        let want: Vec<f32> = argsort_desc(&xs).iter().take(k).map(|&i| xs[i]).collect();
        prop_assert_eq!(got, want);
    }

    /// Threshold count: the top-count sum reaches the target, and one
    /// fewer element would not.
    #[test]
    fn threshold_count_minimal(
        xs in proptest::collection::vec(0.0f32..10.0, 1..50),
        threshold in 0.05f32..0.999,
    ) {
        let count = top_k_threshold_count(&xs, threshold);
        let total: f32 = xs.iter().sum();
        if total > 0.0 {
            let order = argsort_desc(&xs);
            let top_sum: f32 = order.iter().take(count).map(|&i| xs[i]).sum();
            prop_assert!(top_sum >= threshold * total - 1e-3);
            if count > 1 {
                let smaller: f32 = order.iter().take(count - 1).map(|&i| xs[i]).sum();
                prop_assert!(smaller < threshold * total + 1e-3);
            }
        }
    }

    /// Prefix sums are monotone for non-negative inputs and end at the
    /// total.
    #[test]
    fn prefix_sum_monotone(xs in proptest::collection::vec(0.0f32..5.0, 0..50)) {
        let ps = prefix_sum(&xs);
        prop_assert_eq!(ps.len(), xs.len());
        for w in ps.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6);
        }
        if let Some(&last) = ps.last() {
            let total: f32 = xs.iter().sum();
            prop_assert!((last - total).abs() < 1e-3);
        }
    }

    /// searchsorted returns the partition points it promises.
    #[test]
    fn searchsorted_partition_points(
        mut xs in proptest::collection::vec(-20.0f32..20.0, 0..40),
        value in -25.0f32..25.0,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let l = searchsorted_left(&xs, value);
        let r = searchsorted_right(&xs, value);
        prop_assert!(l <= r);
        prop_assert!(xs[..l].iter().all(|&x| x < value));
        prop_assert!(xs[l..].iter().all(|&x| x >= value));
        prop_assert!(xs[..r].iter().all(|&x| x <= value));
        prop_assert!(xs[r..].iter().all(|&x| x > value));
    }

    /// Stride samples are strictly increasing, in range, include the last
    /// row, and hit the requested ratio approximately.
    #[test]
    fn stride_sample_invariants(n in 1usize..2000, ratio in 0.001f32..1.0) {
        let s = StrideSample::by_ratio(n, ratio).unwrap();
        prop_assert!(!s.is_empty());
        prop_assert!(s.indices().windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.indices().iter().all(|&i| i < n));
        prop_assert_eq!(*s.indices().last().unwrap(), n - 1);
        let achieved = s.ratio();
        prop_assert!(achieved + 1e-6 >= ratio.min(1.0) - 2.0 / n as f32);
    }

    /// gather_rows + slice_rows round-trip.
    #[test]
    fn gather_slice_consistency(rows in 1usize..20, cols in 1usize..8, seed in 0u64..1000) {
        let m = small_matrix(rows, cols, seed);
        let all: Vec<usize> = (0..rows).collect();
        prop_assert_eq!(m.gather_rows(&all).unwrap(), m.clone());
        let half = rows / 2;
        let s = m.slice_rows(0, half).unwrap();
        let g = m.gather_rows(&(0..half).collect::<Vec<_>>()).unwrap();
        prop_assert_eq!(s, g);
    }
}
