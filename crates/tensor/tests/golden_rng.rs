//! Golden tests pinning the exact `DeterministicRng` output stream.
//!
//! The constants below were captured from the in-repo xoshiro256++
//! implementation (seed 42) and must never change: every figure and
//! table in the repo is seeded, so a drifting stream silently changes
//! every result while all structural tests keep passing. If a refactor
//! trips these tests, the refactor is wrong — not the constants.
//!
//! Floats are pinned as IEEE-754 bit patterns (`to_bits`), not decimal
//! literals, so the comparison is exact on every platform.

use sa_tensor::{DeterministicRng, Xoshiro256PlusPlus};

/// First 32 draws of `uniform()` from seed 42, as `f32::to_bits`.
const GOLDEN_UNIFORM: [u32; 32] = [
    0x3F50764D, 0x3EA33C82, 0x3F7BE07C, 0x3F337D9F, 0x3F4B231C, 0x3F168D9F, 0x3E005C60,
    0x3F1AE94E, 0x3E54B3CC, 0x3F6EEFD6, 0x3F0F3DFA, 0x3F599B8E, 0x3F2E14E7, 0x3D8E65F8,
    0x3ECE5F9E, 0x3F0BC6E8, 0x3E59EAEC, 0x3D4E2540, 0x3F139E7A, 0x3EEF0996, 0x3E259598,
    0x3F5CDA5B, 0x3F270DE5, 0x3F0686E9, 0x3F50DAFD, 0x3E1225AC, 0x3EDA2E5C, 0x3F72EDA4,
    0x3F05FF42, 0x3F5F321E, 0x3DAD0580, 0x3F231844,
];

/// First 32 draws of `normal()` from seed 42, as `f32::to_bits`.
const GOLDEN_NORMAL: [u32; 32] = [
    0xBF44DCB5, 0x3FD54360, 0xBF5E5271, 0xC02F4E3C, 0xBFC1679F, 0xBF6F0AEA, 0xBED1423D,
    0xBEA29366, 0x3F1F991B, 0xBE8E150B, 0x3F40BDD6, 0xBF849736, 0x3FAF14CE, 0x3F23838B,
    0xBF7943FA, 0xBE9440B6, 0x3F28511D, 0x3E5C4B91, 0xBFA4337F, 0x3E8ABB30, 0x3EC5CBDC,
    0xBEE6FB2E, 0xBFB7BCB2, 0xBE6D81FA, 0x3F92F6D9, 0x3FB7F75F, 0x3F800454, 0xBEAA2A13,
    0x3F57FEC2, 0xBF60B1EA, 0xBE8C21C5, 0xBEA337D0,
];

/// First 32 draws of `index(1000)` from seed 42.
const GOLDEN_INDEX: [usize; 32] = [
    814, 318, 983, 701, 793, 588, 125, 605, 207, 933, 559, 850, 680, 69, 403, 546, 212, 50,
    576, 466, 161, 862, 652, 525, 815, 142, 426, 948, 523, 871, 84, 637,
];

/// First 8 raw `next_u64()` words of the seed-42 xoshiro256++ stream.
const GOLDEN_RAW: [u64; 8] = [
    0xD0764D4F4476689F,
    0x519E4174576F3791,
    0xFBE07CFB0C24ED8C,
    0xB37D9F600CD835B8,
    0xCB231C3874846A73,
    0x968D9F004E50DE7D,
    0x201718FF221A3556,
    0x9AE94E070ED8CB46,
];

#[test]
fn uniform_stream_is_pinned() {
    let mut r = DeterministicRng::new(42);
    for (i, &want) in GOLDEN_UNIFORM.iter().enumerate() {
        let got = r.uniform().to_bits();
        assert_eq!(got, want, "uniform draw {i}: {got:#010X} != {want:#010X}");
    }
}

#[test]
fn normal_stream_is_pinned() {
    let mut r = DeterministicRng::new(42);
    for (i, &want) in GOLDEN_NORMAL.iter().enumerate() {
        let got = r.normal().to_bits();
        assert_eq!(got, want, "normal draw {i}: {got:#010X} != {want:#010X}");
    }
}

#[test]
fn index_stream_is_pinned() {
    let mut r = DeterministicRng::new(42);
    for (i, &want) in GOLDEN_INDEX.iter().enumerate() {
        let got = r.index(1000);
        assert_eq!(got, want, "index draw {i}");
    }
}

#[test]
fn raw_word_stream_is_pinned() {
    let mut r = Xoshiro256PlusPlus::from_seed(42);
    for (i, &want) in GOLDEN_RAW.iter().enumerate() {
        let got = r.next_u64();
        assert_eq!(got, want, "raw draw {i}: {got:#018X} != {want:#018X}");
    }
    // And DeterministicRng exposes the identical word stream.
    let mut d = DeterministicRng::new(42);
    assert_eq!(d.next_u64(), GOLDEN_RAW[0]);
}

#[test]
fn uniform_is_top_24_bits_of_raw() {
    // Structural link between the two pinned streams: each uniform draw
    // is the top 24 bits of the corresponding raw word, scaled by 2^-24.
    for (&word, &bits) in GOLDEN_RAW.iter().zip(&GOLDEN_UNIFORM) {
        let expect = ((word >> 40) as f32) / (1u64 << 24) as f32;
        assert_eq!(expect.to_bits(), bits);
    }
}

/// Regenerator for the constants above (kept `#[ignore]`d): run
/// `cargo test -p sa-tensor --test golden_rng -- --ignored --nocapture`
/// and paste the output — but only if the stream is *supposed* to change,
/// which it never is.
#[test]
#[ignore]
fn print_golden() {
    let mut r = DeterministicRng::new(42);
    let u: Vec<String> = (0..32)
        .map(|_| format!("0x{:08X}", r.uniform().to_bits()))
        .collect();
    println!("UNIFORM: [{}]", u.join(", "));
    let mut r = DeterministicRng::new(42);
    let n: Vec<String> = (0..32)
        .map(|_| format!("0x{:08X}", r.normal().to_bits()))
        .collect();
    println!("NORMAL: [{}]", n.join(", "));
    let mut r = DeterministicRng::new(42);
    let i: Vec<String> = (0..32).map(|_| format!("{}", r.index(1000))).collect();
    println!("INDEX: [{}]", i.join(", "));
    let mut r = DeterministicRng::new(42);
    let w: Vec<String> = (0..8).map(|_| format!("0x{:016X}", r.next_u64())).collect();
    println!("RAW: [{}]", w.join(", "));
}
