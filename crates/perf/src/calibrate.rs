//! Calibration against the paper's published Table 4.
//!
//! Table 4 reports TTFT and full-attention time for ChatGLM2-6B served
//! with text-generation-inference on 8×A100 (TP=4, PP=2) from 32K to 1M
//! tokens. Absolute times depend on a serving stack we do not have, but
//! the *attention share* of TTFT — the quantity the paper uses Table 4 to
//! argue — is a stack-independent ratio our roofline should reproduce.


use crate::ttft::{AttentionKind, TtftModel};

/// Published Table 4 rows: `(sequence length, TTFT ms, attention ms)`.
pub const PAPER_TABLE4: [(usize, f64, f64); 6] = [
    (32_768, 1_273.4, 410.4),
    (65_536, 2_917.3, 1_538.1),
    (131_072, 7_756.5, 4_403.9),
    (262_144, 23_403.7, 16_839.5),
    (524_288, 51_084.3, 43_477.0),
    (1_048_576, 169_653.0, 148_774.1),
];

/// One calibration row: paper vs. model.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationRow {
    /// Sequence length.
    pub seq_len: usize,
    /// Paper TTFT (ms).
    pub paper_ttft_ms: f64,
    /// Paper attention share of TTFT.
    pub paper_attention_share: f64,
    /// Model TTFT (ms).
    pub model_ttft_ms: f64,
    /// Model attention share of TTFT.
    pub model_attention_share: f64,
}

sa_json::impl_json_struct!(CalibrationRow {
    seq_len,
    paper_ttft_ms,
    paper_attention_share,
    model_ttft_ms,
    model_attention_share
});

/// Runs the calibration: evaluates the TTFT model at each Table 4 length
/// and pairs it with the published numbers.
pub fn calibrate_against_table4(model: &TtftModel) -> Vec<CalibrationRow> {
    PAPER_TABLE4
        .iter()
        .map(|&(s, ttft_ms, attn_ms)| {
            // The paper's serving stack chunks attention along the
            // sequence (Appendix A.6), i.e. flash-style memory behaviour.
            let b = model.ttft(s, AttentionKind::Flash);
            CalibrationRow {
                seq_len: s,
                paper_ttft_ms: ttft_ms,
                paper_attention_share: attn_ms / ttft_ms,
                model_ttft_ms: b.total_s() * 1e3,
                model_attention_share: b.attention_share(),
            }
        })
        .collect()
}

/// Mean absolute error of the attention share across the table, in
/// percentage points.
pub fn attention_share_mae(rows: &[CalibrationRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter()
        .map(|r| (r.paper_attention_share - r.model_attention_share).abs())
        .sum::<f64>()
        / rows.len() as f64
        * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_track_the_paper_trend() {
        let model = TtftModel::paper_serving();
        let rows = calibrate_against_table4(&model);
        assert_eq!(rows.len(), 6);
        // Monotone increase, ~30 % at 32K rising towards ~90 % at 1M.
        for w in rows.windows(2) {
            assert!(
                w[1].model_attention_share >= w[0].model_attention_share,
                "{rows:?}"
            );
        }
        let mae = attention_share_mae(&rows);
        assert!(mae < 20.0, "attention-share MAE {mae} pp");
    }

    #[test]
    fn paper_shares_as_published() {
        // The published percents (32.2 … 87.7) should follow from the
        // table constants.
        let first = PAPER_TABLE4[0];
        assert!((first.2 / first.1 - 0.322).abs() < 0.01);
        let last = PAPER_TABLE4[5];
        assert!((last.2 / last.1 - 0.877).abs() < 0.01);
    }

    #[test]
    fn mae_empty_rows() {
        assert_eq!(attention_share_mae(&[]), 0.0);
    }
}
