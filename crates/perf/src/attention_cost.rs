//! Closed-form attention cost functions.
//!
//! These mirror, formula for formula, the counts instrumented in the
//! `sa-kernels` implementations — so they can be evaluated at shapes far
//! too large to execute (the paper's 1M-token points) while agreeing
//! exactly with measured `CostReport`s at small shapes (a property the
//! tests check).

use sa_kernels::CostReport;

/// Live causal pairs for a square `s x s` problem.
fn causal_pairs(s: u64) -> u64 {
    s * (s + 1) / 2
}

/// Per-head cost of the naive SDPA kernel (materialises the score
/// matrix; 3 unfused kernels). Mirrors `sa_kernels::full_attention`.
pub fn sdpa_cost(s: usize, d: usize) -> CostReport {
    let s = s as u64;
    let d = d as u64;
    let pairs = causal_pairs(s);
    let flops = pairs * (2 * d + 4 + 2 * d);
    let bytes_read = 4 * (s * d * 3) + 2 * 4 * pairs;
    let bytes_written = 4 * pairs + 4 * s * d;
    let mut c = CostReport::launch(flops, bytes_read, bytes_written);
    c.kernel_launches = 3;
    c
}

/// Per-head cost of the FlashAttention-style fused kernel with tile size
/// `block_rows`. Mirrors `sa_kernels::flash_attention` (K/V tiles re-read
/// once per query block).
pub fn flash_cost(s: usize, d: usize, block_rows: usize) -> CostReport {
    let s_u = s as u64;
    let d_u = d as u64;
    let pairs = causal_pairs(s_u);
    let flops = pairs * (2 * d_u + 4 + 2 * d_u);
    // Sum over query blocks of the causally visible K/V rows.
    let mut kv_reads: u64 = 0;
    let mut q0 = 0usize;
    while q0 < s {
        let q1 = (q0 + block_rows).min(s);
        let visible = q1 as u64; // block sees keys 0..q1
        kv_reads += visible * 2 * d_u;
        q0 = q1;
    }
    let bytes_read = 4 * (s_u * d_u) + 4 * kv_reads;
    let bytes_written = 4 * s_u * d_u;
    CostReport::launch(flops, bytes_read, bytes_written)
}

/// Per-head cost of SampleAttention's stage-1 fused sampling kernel at
/// sampling ratio `r_row`. Mirrors `sa_core::sampling`.
pub fn sampling_cost(s: usize, d: usize, r_row: f64) -> CostReport {
    let s_u = s as u64;
    let d_u = d as u64;
    let sampled_rows = ((s as f64 * r_row).ceil() as u64).clamp(1, s_u);
    // Strided rows are uniformly spread: visible ≈ mean of causal widths.
    let live_pairs = sampled_rows * (s_u + 1) / 2;
    let flops = live_pairs * (2 * d_u + 5);
    let bytes_read = 4 * sampled_rows * d_u + (4 * live_pairs * d_u).div_ceil(128);
    let bytes_written = 4 * s_u;
    CostReport::launch(flops, bytes_read, bytes_written)
}

/// Per-head cost of SampleAttention's stage-2 filtering (sort /
/// prefix-sum / searchsorted / gather). Mirrors `sa_core::filtering`,
/// plus the latency floor of the small-operator pipeline: sort passes,
/// top-k, `searchsorted`, and index gather are launch/sync-latency-bound
/// on a GPU (the paper's §4.3 motivates fusing stage 1 precisely because
/// "a series of small operators" dominates at short lengths — stage 2's
/// remaining small ops keep a fixed cost of a few hundred microseconds
/// per layer, which is why Figure 5(b)'s sampling share *decreases* with
/// sequence length).
pub fn filtering_cost(s: usize) -> CostReport {
    let s_u = s as u64;
    let logn = (s as f64).log2().max(1.0) as u64;
    let flops = s_u * (logn + 2);
    let bytes = 4 * s_u;
    let mut c = CostReport::launch(flops, 2 * bytes, bytes);
    // ~8 small ops, each with several launch/sync latencies.
    c.kernel_launches = 40;
    c
}

/// Per-head cost of the block-sparse kernel at mask density `density`
/// (live fraction of the causal triangle). Mirrors
/// `sa_kernels::sparse_flash_attention`.
pub fn sparse_flash_cost(s: usize, d: usize, density: f64) -> CostReport {
    let s_u = s as u64;
    let d_u = d as u64;
    let live_pairs = (causal_pairs(s_u) as f64 * density.clamp(0.0, 1.0)).round() as u64;
    let flops = live_pairs * (2 * d_u + 4 + 2 * d_u);
    let bytes_read = 4 * s_u * d_u + (4 * live_pairs * 2 * d_u).div_ceil(128);
    let bytes_written = 4 * s_u * d_u;
    CostReport::launch(flops, bytes_read, bytes_written)
}

/// Full SampleAttention per-head cost: sampling + filtering + sparse
/// compute.
pub fn sample_attention_cost(s: usize, d: usize, density: f64, r_row: f64) -> CostReport {
    sampling_cost(s, d, r_row) + filtering_cost(s) + sparse_flash_cost(s, d, density)
}

/// Scales a per-head cost to `heads` heads (one fused launch in practice;
/// launches are not multiplied).
pub fn scale_heads(cost: CostReport, heads: usize) -> CostReport {
    CostReport {
        flops: cost.flops * heads as u64,
        bytes_read: cost.bytes_read * heads as u64,
        bytes_written: cost.bytes_written * heads as u64,
        kernel_launches: cost.kernel_launches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::{flash_attention, full_attention, sparse_flash_attention, FlashParams, StructuredMask};
    use sa_tensor::DeterministicRng;

    fn qkv(s: usize, d: usize) -> (sa_tensor::Matrix, sa_tensor::Matrix, sa_tensor::Matrix) {
        let mut rng = DeterministicRng::new(1);
        (
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
        )
    }

    #[test]
    fn sdpa_matches_measured() {
        let (q, k, v) = qkv(100, 16);
        let measured = full_attention(&q, &k, &v, true).unwrap().cost;
        let analytic = sdpa_cost(100, 16);
        assert_eq!(analytic.flops, measured.flops);
        assert_eq!(analytic.bytes_read, measured.bytes_read);
        assert_eq!(analytic.bytes_written, measured.bytes_written);
    }

    #[test]
    fn flash_matches_measured() {
        let (q, k, v) = qkv(130, 8);
        let params = FlashParams { block_rows: 32, block_cols: 32 };
        let measured = flash_attention(&q, &k, &v, true, params).unwrap().cost;
        let analytic = flash_cost(130, 8, 32);
        assert_eq!(analytic.flops, measured.flops);
        // KV tile reads: the kernel reads ceil(visible/bc)*bc... our
        // analytic uses exact visible; allow small slack from tile
        // rounding.
        let rel = (analytic.bytes_read as f64 - measured.bytes_read as f64).abs()
            / measured.bytes_read as f64;
        assert!(rel < 0.15, "relative byte error {rel}");
    }

    #[test]
    fn sparse_matches_measured_dense_case() {
        let (q, k, v) = qkv(90, 8);
        let mask = StructuredMask::dense_causal(90, 90);
        let measured = sparse_flash_attention(&q, &k, &v, &mask).unwrap().cost;
        let analytic = sparse_flash_cost(90, 8, 1.0);
        assert_eq!(analytic.flops, measured.flops);
        assert_eq!(analytic.bytes_read, measured.bytes_read);
    }

    #[test]
    fn sample_attention_cheaper_than_flash_when_sparse() {
        let flash = flash_cost(100_000, 128, 128);
        let sample = sample_attention_cost(100_000, 128, 0.05, 0.05);
        assert!(sample.flops < flash.flops / 3);
        assert!(sample.bytes_total() < flash.bytes_total());
    }

    #[test]
    fn sampling_is_r_row_fraction_of_full_scores() {
        // Stage 1 computes ~r_row of the full score matrix's work.
        let full = sampling_cost(8_192, 128, 1.0).flops as f64;
        let sampled = sampling_cost(8_192, 128, 0.05).flops as f64;
        let ratio = sampled / full;
        assert!((ratio - 0.05).abs() < 0.005, "ratio {ratio}");
    }

    #[test]
    fn scale_heads_multiplies_work_not_launches() {
        let c = sdpa_cost(64, 16);
        let scaled = scale_heads(c, 32);
        assert_eq!(scaled.flops, c.flops * 32);
        assert_eq!(scaled.kernel_launches, c.kernel_launches);
    }

    #[test]
    fn density_clamped() {
        let a = sparse_flash_cost(64, 8, 2.0);
        let b = sparse_flash_cost(64, 8, 1.0);
        assert_eq!(a.flops, b.flops);
    }
}
