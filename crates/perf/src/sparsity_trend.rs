//! Sparsity-vs-length trend (the paper's Table 5), with interpolation and
//! extrapolation for the latency projections.
//!
//! The paper measures the average sparsity degree `SD(α)` of ChatGLM2-6B
//! on Needle-in-a-Haystack prompts from 4K to 128K, and notes that each
//! doubling of length drops the *density* (`1 − SD`) by roughly 20 %.
//! Figures 5–6 implicitly use this trend when extrapolating to 1M. This
//! module encodes the published table and provides `density(alpha, s)`:
//!
//! - in-range lengths: log₂-linear interpolation between table rows;
//! - beyond 128K: geometric extrapolation with the per-doubling ratio
//!   observed in the table's last rows;
//! - off-grid `α`: power-law interpolation in `(1 − α)` (the table's
//!   columns are well fit by `density ∝ (1 − α)^0.68`).

use sa_json::{FromJson, Json, JsonError, ToJson};

/// Published Table 5 rows: `(sequence length, SD at α = 0.90, 0.95, 0.98)`
/// in percent.
pub const PAPER_TABLE5: [(usize, f64, f64, f64); 6] = [
    (4_096, 91.27, 88.00, 79.17),
    (8_192, 93.68, 90.74, 83.43),
    (16_384, 95.84, 92.52, 86.37),
    (32_768, 96.34, 93.88, 88.68),
    (65_536, 96.91, 94.89, 90.70),
    (131_072, 97.44, 95.84, 92.43),
];

/// The α grid of [`PAPER_TABLE5`].
pub const TABLE5_ALPHAS: [f64; 3] = [0.90, 0.95, 0.98];

/// Sparsity/density trend model derived from Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparsityTrend;

// A fieldless struct serializes as `null`, matching the previous derive.
impl ToJson for SparsityTrend {
    fn to_json(&self) -> Json {
        Json::Null
    }
}

impl FromJson for SparsityTrend {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(SparsityTrend),
            other => Err(JsonError::new(format!(
                "SparsityTrend: expected null, got {}",
                other.kind()
            ))),
        }
    }
}

impl SparsityTrend {
    /// Creates the trend model (stateless; the data is the published
    /// table).
    pub fn paper() -> Self {
        SparsityTrend
    }

    /// Mask density (live fraction of the causal triangle, in `[0, 1]`)
    /// for CRA threshold `alpha` at sequence length `s`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1)` or `s == 0`.
    pub fn density(&self, alpha: f64, s: usize) -> f64 {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1), got {alpha}");
        assert!(s > 0, "sequence length must be nonzero");
        // Column densities at the three published alphas.
        let cols: Vec<f64> = (0..3).map(|c| density_at_length(c, s)).collect();
        interp_alpha(alpha, &cols)
    }

    /// Sparsity degree `SD(alpha) = 1 - density` at length `s`.
    pub fn sparsity_degree(&self, alpha: f64, s: usize) -> f64 {
        1.0 - self.density(alpha, s)
    }
}

/// Density for table column `col` (0 → α=.90, 1 → .95, 2 → .98) at
/// length `s`, interpolating/extrapolating in log₂(s).
fn density_at_length(col: usize, s: usize) -> f64 {
    let sd = |row: &(usize, f64, f64, f64)| match col {
        0 => row.1,
        1 => row.2,
        _ => row.3,
    };
    let density = |row: &(usize, f64, f64, f64)| (100.0 - sd(row)) / 100.0;
    let x = (s as f64).log2();
    let first = &PAPER_TABLE5[0];
    let last = &PAPER_TABLE5[PAPER_TABLE5.len() - 1];
    if s <= first.0 {
        // Below the table: extrapolate the first interval's slope upward
        // (denser at shorter lengths), clamped to 1.
        let second = &PAPER_TABLE5[1];
        let ratio = density(first) / density(second); // > 1 per octave
        let octaves = (first.0 as f64).log2() - x;
        return (density(first) * ratio.powf(octaves)).min(1.0);
    }
    if s >= last.0 {
        // Beyond 128K: geometric extrapolation with the mean per-doubling
        // ratio of the last two intervals.
        let n = PAPER_TABLE5.len();
        let r1 = density(&PAPER_TABLE5[n - 1]) / density(&PAPER_TABLE5[n - 2]);
        let r2 = density(&PAPER_TABLE5[n - 2]) / density(&PAPER_TABLE5[n - 3]);
        let ratio = ((r1 * r2).sqrt()).clamp(0.5, 1.0);
        let octaves = x - (last.0 as f64).log2();
        return density(last) * ratio.powf(octaves);
    }
    // In-range: log2-linear interpolation.
    for w in PAPER_TABLE5.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if s >= a.0 && s <= b.0 {
            let xa = (a.0 as f64).log2();
            let xb = (b.0 as f64).log2();
            let t = (x - xa) / (xb - xa);
            return density(a) * (1.0 - t) + density(b) * t;
        }
    }
    unreachable!("length {s} not covered by interpolation");
}

/// Power-law interpolation across α: fit `ln density` linearly in
/// `ln(1 - α)` through the three published columns (least squares), then
/// evaluate at the requested α.
fn interp_alpha(alpha: f64, col_densities: &[f64]) -> f64 {
    let xs: Vec<f64> = TABLE5_ALPHAS.iter().map(|&a| (1.0 - a).ln()).collect();
    let ys: Vec<f64> = col_densities.iter().map(|&d| d.max(1e-6).ln()).collect();
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let x = (1.0 - alpha).ln();
    (intercept + slope * x).exp().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_rows_closely() {
        let t = SparsityTrend::paper();
        // At grid alphas/lengths the power-law fit should land within
        // ~15% relative of the published densities.
        for &(s, sd90, sd95, sd98) in &PAPER_TABLE5 {
            for (alpha, sd) in [(0.90, sd90), (0.95, sd95), (0.98, sd98)] {
                let want = (100.0 - sd) / 100.0;
                let got = t.density(alpha, s);
                let rel = (got - want).abs() / want;
                assert!(rel < 0.15, "alpha {alpha} s {s}: got {got}, want {want}");
            }
        }
    }

    #[test]
    fn density_decreases_with_length() {
        let t = SparsityTrend::paper();
        let mut prev = f64::INFINITY;
        for s in [4_096, 16_384, 131_072, 524_288, 1_048_576] {
            let d = t.density(0.95, s);
            assert!(d < prev, "density not decreasing at {s}");
            prev = d;
        }
    }

    #[test]
    fn density_increases_with_alpha() {
        let t = SparsityTrend::paper();
        let d80 = t.density(0.80, 98_304);
        let d95 = t.density(0.95, 98_304);
        let d99 = t.density(0.99, 98_304);
        assert!(d80 < d95 && d95 < d99, "{d80} {d95} {d99}");
    }

    #[test]
    fn one_million_extrapolation_sane() {
        let t = SparsityTrend::paper();
        let d = t.density(0.95, 1_048_576);
        // 128K density is 4.16 %; 3 more doublings at ~0.8 → ~2.1 %.
        assert!(d > 0.005 && d < 0.04, "1M density {d}");
    }

    #[test]
    fn short_lengths_denser() {
        let t = SparsityTrend::paper();
        let d = t.density(0.95, 1024);
        assert!(d > t.density(0.95, 4096));
        assert!(d <= 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_one_rejected() {
        let _ = SparsityTrend::paper().density(1.0, 4096);
    }
}
