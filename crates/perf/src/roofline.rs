use sa_kernels::CostReport;

use crate::HardwareModel;

/// Numeric precision the (simulated) GPU kernel runs in.
///
/// `CostReport` byte counts are in f32 units (the CPU element size);
/// the roofline rescales traffic for the GPU precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 16-bit floats (the paper's models run fp16/bf16).
    Fp16,
    /// 32-bit floats.
    Fp32,
}

impl Precision {
    /// Traffic scale factor relative to the f32-denominated counts.
    pub fn byte_scale(&self) -> f64 {
        match self {
            Precision::Fp16 => 0.5,
            Precision::Fp32 => 1.0,
        }
    }
}

/// Roofline execution time of a kernel (or a fused sequence of kernels)
/// described by `cost`, in seconds.
///
/// `max(compute time, memory time) + launch overheads`.
pub fn kernel_time(cost: &CostReport, hw: &HardwareModel, precision: Precision) -> f64 {
    let compute = cost.flops as f64 / hw.effective_flops();
    let memory = cost.bytes_total() as f64 * precision.byte_scale() / hw.effective_bandwidth();
    compute.max(memory) + cost.kernel_launches as f64 * hw.kernel_launch_s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareModel {
        HardwareModel::a100_80gb()
    }

    #[test]
    fn compute_bound_kernel() {
        // High arithmetic intensity: time set by FLOPs.
        let cost = CostReport::launch(1_000_000_000_000, 1_000_000, 1_000_000);
        let t = kernel_time(&cost, &hw(), Precision::Fp16);
        let expect = 1e12 / hw().effective_flops() + hw().kernel_launch_s;
        assert!((t - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn memory_bound_kernel() {
        // Low intensity: time set by bytes.
        let cost = CostReport::launch(1_000, 4_000_000_000, 0);
        let t = kernel_time(&cost, &hw(), Precision::Fp16);
        let expect = 2e9 / hw().effective_bandwidth() + hw().kernel_launch_s;
        assert!((t - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn fp32_doubles_memory_time() {
        let cost = CostReport::launch(0, 4_000_000_000, 0);
        let t16 = kernel_time(&cost, &hw(), Precision::Fp16);
        let t32 = kernel_time(&cost, &hw(), Precision::Fp32);
        let l = hw().kernel_launch_s;
        assert!(((t32 - l) / (t16 - l) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn launch_overhead_counts() {
        let mut cost = CostReport::launch(0, 0, 0);
        cost.kernel_launches = 100;
        let t = kernel_time(&cost, &hw(), Precision::Fp16);
        assert!((t - 100.0 * hw().kernel_launch_s).abs() < 1e-12);
    }

    #[test]
    fn empty_cost_zero_time() {
        let cost = CostReport::new();
        assert_eq!(kernel_time(&cost, &hw(), Precision::Fp16), 0.0);
    }
}
