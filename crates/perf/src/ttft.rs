//! Whole-model prefill latency (TTFT) model.
//!
//! Assembles per-layer costs — QKV/output projections, attention
//! (pluggable kind), SwiGLU MLP, norms, TP collectives — into the
//! time-to-first-token for a full forward pass, reproducing the paper's
//! Figure 5(c), Figure 6(b) and Table 4.

use sa_kernels::CostReport;
use sa_json::{FromJson, Json, JsonError, ToJson};

use crate::attention_cost::{
    filtering_cost, sample_attention_cost, sampling_cost, scale_heads, flash_cost, sdpa_cost,
    sparse_flash_cost,
};

/// Effective-work multiplier for the block-sparse kernel relative to the
/// dense flash kernel's per-element efficiency. Gathered (non-contiguous)
/// K/V access, per-head variable stripe counts, and small irregular tiles
/// keep real sparse kernels well below dense throughput; the value is
/// calibrated so the attention speedup at 96K/α=0.95 lands at the paper's
/// measured 2.20× (Figure 5a).
const SPARSE_KERNEL_INEFFICIENCY: f64 = 8.0;
use crate::{kernel_time, HardwareModel, Parallelism, Precision, SparsityTrend};

/// Full-scale transformer geometry for latency modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelGeometry {
    /// Number of transformer layers.
    pub layers: usize,
    /// Query heads per layer.
    pub q_heads: usize,
    /// Key/value heads (GQA/MQA).
    pub kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN inner width.
    pub ffn_dim: usize,
}

sa_json::impl_json_struct!(ModelGeometry {
    layers,
    q_heads,
    kv_heads,
    head_dim,
    ffn_dim
});

impl ModelGeometry {
    /// ChatGLM2-6B: 28 layers × 32 heads × d128 (hidden 4096),
    /// multi-query attention with 2 KV heads, FFN 13696.
    pub fn chatglm2_6b() -> Self {
        ModelGeometry {
            layers: 28,
            q_heads: 32,
            kv_heads: 2,
            head_dim: 128,
            ffn_dim: 13_696,
        }
    }

    /// InternLM2-7B: 32 layers × 32 heads × d128, 8 KV heads, FFN 14336.
    pub fn internlm2_7b() -> Self {
        ModelGeometry {
            layers: 32,
            q_heads: 32,
            kv_heads: 8,
            head_dim: 128,
            ffn_dim: 14_336,
        }
    }

    /// Hidden width (`q_heads * head_dim`).
    pub fn hidden(&self) -> usize {
        self.q_heads * self.head_dim
    }
}

/// Which attention implementation the prefill uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttentionKind {
    /// PyTorch-style unfused scaled-dot-product attention.
    Sdpa,
    /// FlashAttention-style fused kernel.
    Flash,
    /// SampleAttention at the given CRA threshold (density follows the
    /// paper's Table 5 trend).
    SampleAttention {
        /// CRA threshold `α`.
        alpha: f64,
        /// Stage-1 sampling ratio.
        sample_ratio: f64,
    },
}

// Externally tagged, matching the previous derive: `"Sdpa"`/`"Flash"` for
// the unit variants, `{"SampleAttention":{"alpha":..,"sample_ratio":..}}`
// for the struct variant.
impl ToJson for AttentionKind {
    fn to_json(&self) -> Json {
        match self {
            AttentionKind::Sdpa => Json::Str("Sdpa".to_string()),
            AttentionKind::Flash => Json::Str("Flash".to_string()),
            AttentionKind::SampleAttention { alpha, sample_ratio } => Json::Object(vec![(
                "SampleAttention".to_string(),
                Json::Object(vec![
                    ("alpha".to_string(), alpha.to_json()),
                    ("sample_ratio".to_string(), sample_ratio.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for AttentionKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Sdpa") => return Ok(AttentionKind::Sdpa),
            Some("Flash") => return Ok(AttentionKind::Flash),
            Some(other) => {
                return Err(JsonError::new(format!(
                    "AttentionKind: unknown variant `{other}`"
                )))
            }
            None => {}
        }
        let payload = v.get("SampleAttention").ok_or_else(|| {
            JsonError::new(format!(
                "AttentionKind: expected variant string or SampleAttention object, got {}",
                v.kind()
            ))
        })?;
        let field = |name: &str| {
            payload
                .get(name)
                .ok_or_else(|| {
                    JsonError::new(format!("AttentionKind::SampleAttention: missing `{name}`"))
                })
                .and_then(f64::from_json)
        };
        Ok(AttentionKind::SampleAttention {
            alpha: field("alpha")?,
            sample_ratio: field("sample_ratio")?,
        })
    }
}

/// TTFT decomposition in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TtftBreakdown {
    /// Total attention time (incl. mask discovery for SampleAttention).
    pub attention_s: f64,
    /// SampleAttention mask-discovery share of `attention_s` (0 for dense
    /// kinds) — the Figure 5(b) quantity.
    pub sampling_s: f64,
    /// QKV + output projections.
    pub projections_s: f64,
    /// SwiGLU MLP.
    pub mlp_s: f64,
    /// Norms, residual adds, TP collectives.
    pub other_s: f64,
}

sa_json::impl_json_struct!(TtftBreakdown {
    attention_s,
    sampling_s,
    projections_s,
    mlp_s,
    other_s
});

impl TtftBreakdown {
    /// Total TTFT.
    pub fn total_s(&self) -> f64 {
        self.attention_s + self.projections_s + self.mlp_s + self.other_s
    }

    /// Attention share of total (the paper's Table 4 "Percent" column).
    pub fn attention_share(&self) -> f64 {
        self.attention_s / self.total_s()
    }
}

/// The TTFT model: geometry + hardware + parallelism.
#[derive(Debug, Clone, Copy)]
pub struct TtftModel {
    geometry: ModelGeometry,
    hardware: HardwareModel,
    parallelism: Parallelism,
    trend: SparsityTrend,
}

impl TtftModel {
    /// Creates the model.
    pub fn new(geometry: ModelGeometry, hardware: HardwareModel, parallelism: Parallelism) -> Self {
        TtftModel {
            geometry,
            hardware,
            parallelism,
            trend: SparsityTrend::paper(),
        }
    }

    /// The paper's micro-benchmark setup: ChatGLM2-6B on one A100.
    pub fn paper_microbench() -> Self {
        Self::new(
            ModelGeometry::chatglm2_6b(),
            HardwareModel::a100_80gb(),
            Parallelism::single(),
        )
    }

    /// The paper's serving setup: ChatGLM2-6B on 8×A100, TP=4/PP=2.
    pub fn paper_serving() -> Self {
        Self::new(
            ModelGeometry::chatglm2_6b(),
            HardwareModel::a100_80gb(),
            Parallelism::paper_serving(),
        )
    }

    /// The model geometry.
    pub fn geometry(&self) -> &ModelGeometry {
        &self.geometry
    }

    /// Per-layer attention cost for `kind` at sequence length `s`
    /// (all heads), plus the discovery-overhead sub-cost.
    pub fn attention_cost(&self, s: usize, kind: AttentionKind) -> (CostReport, CostReport) {
        let d = self.geometry.head_dim;
        let h = self.geometry.q_heads;
        match kind {
            AttentionKind::Sdpa => (scale_heads(sdpa_cost(s, d), h), CostReport::new()),
            AttentionKind::Flash => (scale_heads(flash_cost(s, d, 128), h), CostReport::new()),
            AttentionKind::SampleAttention { alpha, sample_ratio } => {
                let density = self.trend.density(alpha, s);
                // Effective density folds in the sparse kernel's gather
                // inefficiency (but never exceeds dense work).
                let effective = (density * SPARSE_KERNEL_INEFFICIENCY).min(1.0);
                let sparse = sparse_flash_cost(s, d, effective);
                let overhead = sampling_cost(s, d, sample_ratio) + filtering_cost(s);
                let _ = sample_attention_cost; // exact-cost variant kept for analysis
                (scale_heads(sparse + overhead, h), scale_heads(overhead, h))
            }
        }
    }

    /// Attention-only latency for one full forward (all layers), seconds.
    pub fn attention_latency(&self, s: usize, kind: AttentionKind) -> f64 {
        let (cost, _) = self.attention_cost(s, kind);
        let per_layer =
            kernel_time(&cost, &self.hardware, Precision::Fp16) / self.parallelism.per_layer_speedup();
        per_layer * self.geometry.layers as f64
    }

    /// Full TTFT breakdown at sequence length `s`.
    pub fn ttft(&self, s: usize, kind: AttentionKind) -> TtftBreakdown {
        let g = &self.geometry;
        let hidden = g.hidden() as u64;
        let kv_dim = (g.kv_heads * g.head_dim) as u64;
        let s_u = s as u64;
        let tp = self.parallelism.per_layer_speedup();

        // Attention (+ discovery overhead).
        let (attn_cost, overhead_cost) = self.attention_cost(s, kind);
        let attention_s =
            kernel_time(&attn_cost, &self.hardware, Precision::Fp16) / tp * g.layers as f64;
        let sampling_s =
            kernel_time(&overhead_cost, &self.hardware, Precision::Fp16) / tp * g.layers as f64;

        // Projections: QKV (hidden → hidden + 2·kv_dim) and output
        // (hidden → hidden).
        let proj_flops = 2 * s_u * hidden * (hidden + 2 * kv_dim) + 2 * s_u * hidden * hidden;
        let proj_bytes = 4 * (s_u * hidden * 2 + hidden * (hidden + 2 * kv_dim) + hidden * hidden);
        let proj = CostReport::launch(proj_flops, proj_bytes, 4 * s_u * hidden);
        let projections_s =
            kernel_time(&proj, &self.hardware, Precision::Fp16) / tp * g.layers as f64;

        // SwiGLU MLP: three GEMMs hidden↔ffn.
        let ffn = g.ffn_dim as u64;
        let mlp_flops = 2 * s_u * hidden * ffn * 3 + 5 * s_u * ffn;
        let mlp_bytes = 4 * (s_u * hidden * 2 + 3 * hidden * ffn);
        let mlp = CostReport::launch(mlp_flops, mlp_bytes, 4 * s_u * hidden);
        let mlp_s = kernel_time(&mlp, &self.hardware, Precision::Fp16) / tp * g.layers as f64;

        // Other: 2 RMSNorms + residual adds (memory-bound sweeps of the
        // activations) and, under TP, 2 all-reduces of s×hidden per layer
        // over NVLink (~300 GB/s effective per GPU pair).
        let norm_bytes = 4 * s_u * hidden * 6;
        let norms = CostReport::launch(10 * s_u * hidden, norm_bytes, 4 * s_u * hidden);
        let mut other_s = kernel_time(&norms, &self.hardware, Precision::Fp16) / tp;
        if self.parallelism.tensor_parallel > 1 {
            let allreduce_bytes = 2.0 * (s_u * hidden) as f64 * 2.0; // fp16, 2 collectives
            other_s += 2.0 * allreduce_bytes / 300e9;
        }
        other_s *= g.layers as f64;

        TtftBreakdown {
            attention_s,
            sampling_s,
            projections_s,
            mlp_s,
            other_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_share_grows_with_length() {
        let m = TtftModel::paper_serving();
        let shares: Vec<f64> = [32_768usize, 131_072, 1_048_576]
            .iter()
            .map(|&s| m.ttft(s, AttentionKind::Flash).attention_share())
            .collect();
        assert!(shares[0] < shares[1] && shares[1] < shares[2], "{shares:?}");
        // Table 4: ~32 % at 32K, ~88 % at 1M (SDPA-style full attention in
        // TGI). Our fused flash baseline stays in the same regime.
        assert!(shares[0] > 0.1 && shares[0] < 0.6, "{shares:?}");
        assert!(shares[2] > 0.7, "{shares:?}");
    }

    #[test]
    fn sample_attention_beats_flash_at_long_lengths() {
        let m = TtftModel::paper_microbench();
        let kind = AttentionKind::SampleAttention { alpha: 0.95, sample_ratio: 0.05 };
        let s = 98_304; // 96K
        let flash = m.attention_latency(s, AttentionKind::Flash);
        let sample = m.attention_latency(s, kind);
        let speedup = flash / sample;
        // Paper: 2.20× at 96K for alpha=0.95.
        assert!(speedup > 1.5 && speedup < 4.0, "speedup {speedup}");
    }

    #[test]
    fn lower_alpha_faster() {
        let m = TtftModel::paper_microbench();
        let s = 98_304;
        let a95 = m.attention_latency(s, AttentionKind::SampleAttention { alpha: 0.95, sample_ratio: 0.05 });
        let a80 = m.attention_latency(s, AttentionKind::SampleAttention { alpha: 0.80, sample_ratio: 0.05 });
        assert!(a80 < a95);
    }

    #[test]
    fn short_sequences_no_advantage() {
        // Figure 5(a): no speedup at short lengths (sampling overhead).
        let m = TtftModel::paper_microbench();
        let s = 4_096;
        let flash = m.attention_latency(s, AttentionKind::Flash);
        let sample = m.attention_latency(
            s,
            AttentionKind::SampleAttention { alpha: 0.95, sample_ratio: 0.05 },
        );
        let speedup = flash / sample;
        assert!(speedup < 1.7, "unexpectedly large speedup {speedup} at 4K");
    }

    #[test]
    fn sdpa_slower_than_flash() {
        let m = TtftModel::paper_microbench();
        let s = 65_536;
        assert!(m.attention_latency(s, AttentionKind::Sdpa) > m.attention_latency(s, AttentionKind::Flash));
    }

    #[test]
    fn breakdown_components_positive() {
        let m = TtftModel::paper_serving();
        let b = m.ttft(32_768, AttentionKind::Flash);
        assert!(b.attention_s > 0.0);
        assert!(b.projections_s > 0.0);
        assert!(b.mlp_s > 0.0);
        assert!(b.other_s > 0.0);
        assert_eq!(b.sampling_s, 0.0);
        assert!(b.total_s() > b.attention_s);
    }

    #[test]
    fn sampling_share_shrinks_with_length() {
        // Figure 5(b): the proportion of time spent on sampling decreases
        // as sequences grow.
        let m = TtftModel::paper_microbench();
        let kind = AttentionKind::SampleAttention { alpha: 0.95, sample_ratio: 0.05 };
        let share = |s: usize| {
            let b = m.ttft(s, kind);
            b.sampling_s / b.attention_s
        };
        let s8k = share(8_192);
        let s96k = share(98_304);
        assert!(s8k > s96k, "share at 8K {s8k} vs 96K {s96k}");
        assert!(s8k < 1.0 && s96k > 0.0);
    }

    #[test]
    fn sampling_overhead_positive_for_sample_attention() {
        let m = TtftModel::paper_microbench();
        let b = m.ttft(
            32_768,
            AttentionKind::SampleAttention { alpha: 0.95, sample_ratio: 0.05 },
        );
        assert!(b.sampling_s > 0.0);
        assert!(b.sampling_s < b.attention_s);
    }

    #[test]
    fn geometry_constants() {
        assert_eq!(ModelGeometry::chatglm2_6b().hidden(), 4096);
        assert_eq!(ModelGeometry::internlm2_7b().layers, 32);
    }
}
