//! Serving-memory model (Appendix A.6).
//!
//! The paper reports that "requests with ultra-long sequences (>=128K) or
//! large batch sizes will cause memory issues" in its serving integration,
//! and that a chunked prefill was used for memory efficiency. This module
//! quantifies exactly that: per-request activation and KV-cache footprints
//! against the A100's 80 GB, for monolithic vs. chunked prefill and for
//! dense vs. SDPA-style attention (whose quadratic score matrix is the
//! first thing to blow up).

use sa_json::{FromJson, Json, JsonError, ToJson};

use crate::ttft::ModelGeometry;

/// Byte-level memory footprint of one prefill request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryFootprint {
    /// Model weights (fp16).
    pub weights_bytes: u64,
    /// KV cache for the full sequence (fp16, all layers).
    pub kv_cache_bytes: u64,
    /// Peak activation bytes during prefill.
    pub activation_bytes: u64,
    /// Score-matrix bytes (0 for flash/chunked kernels).
    pub score_matrix_bytes: u64,
}

sa_json::impl_json_struct!(MemoryFootprint {
    weights_bytes,
    kv_cache_bytes,
    activation_bytes,
    score_matrix_bytes
});

impl MemoryFootprint {
    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.weights_bytes + self.kv_cache_bytes + self.activation_bytes + self.score_matrix_bytes
    }

    /// Whether the request fits in `capacity_bytes` of device memory.
    pub fn fits(&self, capacity_bytes: u64) -> bool {
        self.total_bytes() <= capacity_bytes
    }
}

/// Prefill execution styles with different memory behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillStyle {
    /// Unfused attention materialising the `S x S` score matrix per head.
    SdpaMonolithic,
    /// Fused flash-style attention, whole prompt at once.
    FlashMonolithic,
    /// Fused attention in sequence chunks of the given size.
    Chunked(usize),
}

// Externally tagged, matching the previous derive: unit variants are bare
// strings, the newtype variant is `{"Chunked": n}`.
impl ToJson for PrefillStyle {
    fn to_json(&self) -> Json {
        match self {
            PrefillStyle::SdpaMonolithic => Json::Str("SdpaMonolithic".to_string()),
            PrefillStyle::FlashMonolithic => Json::Str("FlashMonolithic".to_string()),
            PrefillStyle::Chunked(n) => {
                Json::Object(vec![("Chunked".to_string(), n.to_json())])
            }
        }
    }
}

impl FromJson for PrefillStyle {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("SdpaMonolithic") => return Ok(PrefillStyle::SdpaMonolithic),
            Some("FlashMonolithic") => return Ok(PrefillStyle::FlashMonolithic),
            Some(other) => {
                return Err(JsonError::new(format!(
                    "PrefillStyle: unknown variant `{other}`"
                )))
            }
            None => {}
        }
        match v.get("Chunked") {
            Some(n) => Ok(PrefillStyle::Chunked(
                usize::from_json(n).map_err(|e| e.in_context("PrefillStyle::Chunked"))?,
            )),
            None => Err(JsonError::new(format!(
                "PrefillStyle: expected variant string or {{\"Chunked\": n}}, got {}",
                v.kind()
            ))),
        }
    }
}

/// Computes the footprint of a `batch x seq_len` prefill for `geometry`
/// on a single device holding `1/tensor_parallel` of the model.
pub fn prefill_footprint(
    geometry: &ModelGeometry,
    seq_len: usize,
    batch: usize,
    tensor_parallel: usize,
    style: PrefillStyle,
) -> MemoryFootprint {
    let tp = tensor_parallel.max(1) as u64;
    let hidden = geometry.hidden() as u64;
    let layers = geometry.layers as u64;
    let ffn = geometry.ffn_dim as u64;
    let kv_dim = (geometry.kv_heads * geometry.head_dim) as u64;
    let s = seq_len as u64;
    let b = batch as u64;
    let fp16 = 2u64;

    // Weights: qkv + out + 3 MLP mats per layer (+ embeddings ignored).
    let per_layer_weights = hidden * (hidden + 2 * kv_dim) + hidden * hidden + 3 * hidden * ffn;
    let weights_bytes = layers * per_layer_weights * fp16 / tp;

    // KV cache: 2 (K and V) per layer per position.
    let kv_cache_bytes = 2 * layers * b * s * kv_dim * fp16 / tp;

    // Activations: residual stream + the widest intermediate (FFN) for the
    // rows being processed at once.
    let rows = match style {
        PrefillStyle::Chunked(c) => (c as u64).min(s),
        _ => s,
    };
    let activation_bytes = b * rows * (hidden + ffn) * fp16 / tp;

    // SDPA materialises per-head S x visible scores (batch x heads).
    let score_matrix_bytes = match style {
        PrefillStyle::SdpaMonolithic => {
            b * (geometry.q_heads as u64 / tp) * s * s * fp16
        }
        _ => 0,
    };

    MemoryFootprint {
        weights_bytes,
        kv_cache_bytes,
        activation_bytes,
        score_matrix_bytes,
    }
}

/// The longest power-of-two sequence that fits in `capacity_bytes` under
/// the given style (batch 1). Returns `None` if even 1K does not fit.
pub fn max_context(
    geometry: &ModelGeometry,
    tensor_parallel: usize,
    capacity_bytes: u64,
    style: PrefillStyle,
) -> Option<usize> {
    let mut best = None;
    let mut s = 1024usize;
    while s <= 16 * 1024 * 1024 {
        let fp = prefill_footprint(geometry, s, 1, tensor_parallel, style);
        if fp.fits(capacity_bytes) {
            best = Some(s);
        } else {
            break;
        }
        s *= 2;
    }
    best
}

/// A100-80GB capacity in bytes.
pub const A100_BYTES: u64 = 80 * 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> ModelGeometry {
        ModelGeometry::chatglm2_6b()
    }

    #[test]
    fn sdpa_blows_up_before_flash() {
        // The appendix's ">=128K causes memory issues": SDPA's quadratic
        // score matrix exhausts 80 GB far earlier than flash attention.
        let sdpa = max_context(&geo(), 1, A100_BYTES, PrefillStyle::SdpaMonolithic).unwrap();
        let flash = max_context(&geo(), 1, A100_BYTES, PrefillStyle::FlashMonolithic).unwrap();
        assert!(sdpa < flash, "sdpa {sdpa} vs flash {flash}");
        assert!(sdpa <= 65_536, "sdpa fits {sdpa} — should OOM early");
    }

    #[test]
    fn chunking_extends_max_context() {
        let mono = max_context(&geo(), 4, A100_BYTES, PrefillStyle::FlashMonolithic).unwrap();
        let chunked = max_context(&geo(), 4, A100_BYTES, PrefillStyle::Chunked(8192)).unwrap();
        assert!(chunked >= mono);
        // With TP=4 and chunking, 1M tokens are reachable (the paper's
        // Table 4 runs 1M on 8 GPUs with chunking).
        assert!(chunked >= 1_048_576, "chunked max {chunked}");
    }

    #[test]
    fn kv_cache_grows_linearly() {
        let a = prefill_footprint(&geo(), 32_768, 1, 1, PrefillStyle::FlashMonolithic);
        let b = prefill_footprint(&geo(), 65_536, 1, 1, PrefillStyle::FlashMonolithic);
        assert_eq!(b.kv_cache_bytes, 2 * a.kv_cache_bytes);
    }

    #[test]
    fn batch_scales_kv_and_activations() {
        let b1 = prefill_footprint(&geo(), 16_384, 1, 1, PrefillStyle::FlashMonolithic);
        let b4 = prefill_footprint(&geo(), 16_384, 4, 1, PrefillStyle::FlashMonolithic);
        assert_eq!(b4.kv_cache_bytes, 4 * b1.kv_cache_bytes);
        assert_eq!(b4.weights_bytes, b1.weights_bytes);
        assert!(!b4.fits(b1.total_bytes()));
    }

    #[test]
    fn weights_order_of_magnitude() {
        // ChatGLM2-6B weights ≈ 12 GB in fp16 (6B params x 2 bytes);
        // our per-layer accounting covers the transformer blocks (~11 GB).
        let fp = prefill_footprint(&geo(), 1024, 1, 1, PrefillStyle::FlashMonolithic);
        let gb = fp.weights_bytes as f64 / 1e9;
        assert!((8.0..14.0).contains(&gb), "weights {gb} GB");
    }
}
