//! # sa-perf
//!
//! Analytical A100 performance model for the latency reproductions.
//!
//! The paper's §5.4 latency results (Figures 5–6, Table 4) were measured
//! on NVIDIA A100 GPUs running fused CUDA/Triton kernels. No GPU exists in
//! this environment, so latency is reproduced the way the paper itself
//! extrapolates beyond 128K: analytically. The model is a classic
//! roofline —
//!
//! ```text
//! t_kernel = max(flops / (peak_flops · eff), bytes / (hbm_bw · eff_mem))
//!            + launches · t_launch
//! ```
//!
//! — fed with the *exact* FLOP/byte counts that the CPU kernels in
//! `sa-kernels` report ([`sa_kernels::CostReport`]), or with closed-form
//! cost functions ([`attention_cost`]) when evaluating shapes too large to
//! run (1M tokens). Because every method's cost is counted by the same
//! rules, latency *ratios* (speedups, crossover points, the attention
//! share of TTFT) are faithful even though absolute milliseconds differ
//! from the authors' testbed.
//!
//! [`ttft`] assembles whole-model prefill latency (attention + GEMMs +
//! MLP + norms, with tensor/pipeline parallelism) for the Table 4
//! breakdown, and [`calibrate`] checks the model's attention-share curve
//! against the paper's published Table 4 anchors.

pub mod attention_cost;
pub mod calibrate;
mod hardware;
pub mod memory;
mod roofline;
pub mod sparsity_trend;
pub mod ttft;

pub use hardware::{HardwareModel, Parallelism};
pub use memory::{max_context, prefill_footprint, MemoryFootprint, PrefillStyle};
pub use roofline::{kernel_time, Precision};
pub use sparsity_trend::SparsityTrend;
pub use ttft::{TtftBreakdown, TtftModel};
