/// A GPU hardware description for the roofline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareModel {
    /// Peak dense fp16 tensor-core throughput in FLOP/s.
    pub peak_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// Achievable fraction of peak FLOPs for attention-like kernels.
    pub compute_efficiency: f64,
    /// Achievable fraction of peak bandwidth.
    pub memory_efficiency: f64,
    /// Per-kernel launch overhead in seconds.
    pub kernel_launch_s: f64,
}

sa_json::impl_json_struct!(HardwareModel {
    peak_flops,
    hbm_bandwidth,
    compute_efficiency,
    memory_efficiency,
    kernel_launch_s
});

impl HardwareModel {
    /// An NVIDIA A100-SXM4-80GB: 312 TFLOP/s fp16, 2039 GB/s HBM2e.
    ///
    /// Efficiency factors reflect well-tuned fused kernels
    /// (FlashAttention-class) rather than theoretical peaks.
    pub fn a100_80gb() -> Self {
        HardwareModel {
            peak_flops: 312e12,
            hbm_bandwidth: 2.039e12,
            compute_efficiency: 0.55,
            memory_efficiency: 0.80,
            kernel_launch_s: 6e-6,
        }
    }

    /// Effective compute throughput (FLOP/s).
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.compute_efficiency
    }

    /// Effective memory bandwidth (bytes/s).
    pub fn effective_bandwidth(&self) -> f64 {
        self.hbm_bandwidth * self.memory_efficiency
    }
}

/// Tensor/pipeline parallel configuration (the paper's Table 4 uses
/// TP=4, PP=2 over 8 GPUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Tensor-parallel degree (splits each layer's work).
    pub tensor_parallel: usize,
    /// Pipeline-parallel degree (splits layers into stages).
    pub pipeline_parallel: usize,
}

sa_json::impl_json_struct!(Parallelism {
    tensor_parallel,
    pipeline_parallel
});

impl Parallelism {
    /// Single-GPU execution.
    pub fn single() -> Self {
        Parallelism {
            tensor_parallel: 1,
            pipeline_parallel: 1,
        }
    }

    /// The paper's serving configuration: TP=4, PP=2.
    pub fn paper_serving() -> Self {
        Parallelism {
            tensor_parallel: 4,
            pipeline_parallel: 2,
        }
    }

    /// Total GPUs used.
    pub fn num_gpus(&self) -> usize {
        self.tensor_parallel * self.pipeline_parallel
    }

    /// Effective per-layer speedup factor (TP splits each layer; PP does
    /// not speed up a single request's prefill latency beyond overlap,
    /// which we conservatively ignore — matching the paper's observation
    /// that TTFT is dominated by per-layer compute).
    pub fn per_layer_speedup(&self) -> f64 {
        self.tensor_parallel as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_sane() {
        let hw = HardwareModel::a100_80gb();
        assert!(hw.effective_flops() > 1e14);
        assert!(hw.effective_bandwidth() > 1e12);
        assert!(hw.effective_flops() < hw.peak_flops);
    }

    #[test]
    fn parallelism() {
        assert_eq!(Parallelism::single().num_gpus(), 1);
        let p = Parallelism::paper_serving();
        assert_eq!(p.num_gpus(), 8);
        assert_eq!(p.per_layer_speedup(), 4.0);
    }

    #[test]
    fn json_round_trip() {
        let hw = HardwareModel::a100_80gb();
        let s = sa_json::to_string(&hw);
        let back: HardwareModel = sa_json::from_str(&s).unwrap();
        assert_eq!(hw, back);
    }
}
