//! Shared row-gathered attention kernel for the dynamic baselines
//! (HyperAttention, Hash-Sparse, oracle top-k): each query row attends to
//! an arbitrary per-row set of key indices.

use sa_kernels::{score_scale, AttentionOutput, CostReport};
use sa_tensor::{online_softmax_update, Matrix, OnlineSoftmaxState, TensorError};

/// Computes attention where query row `i` attends exactly to
/// `row_indices(i)` (caller guarantees causality). Rows with an empty
/// index set produce zeros.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent Q/K/V shapes,
/// or [`TensorError::IndexOutOfBounds`] if an index exceeds `s_k`.
pub(crate) fn gathered_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mut row_indices: impl FnMut(usize) -> Vec<usize>,
) -> Result<(AttentionOutput, u64), TensorError> {
    if q.cols() != k.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "gathered_attention(q,k)",
            lhs: q.shape(),
            rhs: k.shape(),
        });
    }
    if k.rows() != v.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "gathered_attention(k,v)",
            lhs: k.shape(),
            rhs: v.shape(),
        });
    }
    let (s_q, d) = q.shape();
    let s_k = k.rows();
    let dv = v.cols();
    let scale = score_scale(d);

    let mut output = Matrix::zeros(s_q, dv);
    let mut live_pairs: u64 = 0;
    let mut scores = Vec::new();

    for i in 0..s_q {
        let indices = row_indices(i);
        if indices.is_empty() {
            continue;
        }
        if let Some(&bad) = indices.iter().find(|&&j| j >= s_k) {
            return Err(TensorError::IndexOutOfBounds {
                op: "gathered_attention",
                index: bad,
                bound: s_k,
            });
        }
        let q_row = q.row(i);
        scores.clear();
        scores.extend(indices.iter().map(|&j| {
            q_row.iter().zip(k.row(j)).map(|(a, b)| a * b).sum::<f32>() * scale
        }));
        let mut state = OnlineSoftmaxState::new(dv);
        online_softmax_update(&mut state, &scores, |t| v.row(indices[t]));
        output.row_mut(i).copy_from_slice(&state.finish());
        live_pairs += indices.len() as u64;
    }

    let flops = live_pairs * (2 * d as u64 + 4 + 2 * dv as u64);
    let bytes_read = 4 * (s_q * d) as u64 + 4 * live_pairs * (d + dv) as u64;
    let bytes_written = 4 * (s_q * dv) as u64;
    let cost = CostReport::launch(flops, bytes_read, bytes_written);
    Ok((AttentionOutput { output, cost }, live_pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::full_attention;
    use sa_tensor::{max_abs_diff, DeterministicRng};

    #[test]
    fn all_causal_indices_matches_full() {
        let mut rng = DeterministicRng::new(1);
        let q = rng.normal_matrix(24, 8, 1.0);
        let k = rng.normal_matrix(24, 8, 1.0);
        let v = rng.normal_matrix(24, 8, 1.0);
        let (got, pairs) = gathered_attention(&q, &k, &v, |i| (0..=i).collect()).unwrap();
        let want = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(got.output.as_slice(), want.output.as_slice()) < 1e-4);
        assert_eq!(pairs, 24 * 25 / 2);
    }

    #[test]
    fn empty_rows_are_zero() {
        let mut rng = DeterministicRng::new(2);
        let q = rng.normal_matrix(4, 4, 1.0);
        let k = rng.normal_matrix(4, 4, 1.0);
        let v = rng.normal_matrix(4, 4, 1.0);
        let (got, pairs) =
            gathered_attention(&q, &k, &v, |i| if i == 2 { vec![0, 1] } else { vec![] }).unwrap();
        assert!(got.output.row(0).iter().all(|&x| x == 0.0));
        assert!(got.output.row(2).iter().any(|&x| x != 0.0));
        assert_eq!(pairs, 2);
    }

    #[test]
    fn out_of_bounds_index_rejected() {
        let q = Matrix::zeros(2, 4);
        let k = Matrix::zeros(2, 4);
        let v = Matrix::zeros(2, 4);
        assert!(gathered_attention(&q, &k, &v, |_| vec![5]).is_err());
    }
}
