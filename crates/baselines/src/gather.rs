//! Shared row-gathered attention kernel for the dynamic baselines
//! (HyperAttention, Hash-Sparse, oracle top-k): each query row attends to
//! an arbitrary per-row set of key indices.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sa_kernels::{score_scale, AttentionOutput, CostReport};
use sa_tensor::{online_softmax_update, pool, Matrix, OnlineSoftmaxState, TensorError};

/// Computes attention where query row `i` attends exactly to
/// `row_indices(i)` (caller guarantees causality). Rows with an empty
/// index set produce zeros.
///
/// Rows are independent, so row chunks run on the worker pool with
/// bit-identical per-row arithmetic; `row_indices` therefore has to be
/// `Fn + Sync` (every baseline's index rule is a pure function of
/// construction-time state).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent Q/K/V shapes,
/// or [`TensorError::IndexOutOfBounds`] if an index exceeds `s_k` (the
/// smallest offending row reports, independent of scheduling).
pub(crate) fn gathered_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    row_indices: impl Fn(usize) -> Vec<usize> + Sync,
) -> Result<(AttentionOutput, u64), TensorError> {
    if q.cols() != k.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "gathered_attention(q,k)",
            lhs: q.shape(),
            rhs: k.shape(),
        });
    }
    if k.rows() != v.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "gathered_attention(k,v)",
            lhs: k.shape(),
            rhs: v.shape(),
        });
    }
    let (s_q, d) = q.shape();
    let s_k = k.rows();
    let dv = v.cols();
    let scale = score_scale(d);

    let mut output = Matrix::zeros(s_q, dv);
    let live_pairs = AtomicU64::new(0);
    // First out-of-bounds error by row index, so the reported error does
    // not depend on which thread hit its row first.
    let first_error: Mutex<Option<(usize, usize)>> = Mutex::new(None);

    if s_q > 0 && dv > 0 {
        let grain_rows = pool::row_grain(s_k.max(1) * (d + dv));
        pool::parallel_for_rows(output.as_mut_slice(), dv, grain_rows, |row0, chunk| {
            let mut scores = Vec::new();
            let mut chunk_pairs: u64 = 0;
            for (local_i, out_row) in chunk.chunks_mut(dv).enumerate() {
                let i = row0 + local_i;
                let indices = row_indices(i);
                if indices.is_empty() {
                    continue;
                }
                if let Some(&bad) = indices.iter().find(|&&j| j >= s_k) {
                    let mut slot = first_error.lock().expect("error slot poisoned");
                    if slot.map_or(true, |(row, _)| i < row) {
                        *slot = Some((i, bad));
                    }
                    continue;
                }
                let q_row = q.row(i);
                scores.clear();
                scores.extend(indices.iter().map(|&j| {
                    q_row.iter().zip(k.row(j)).map(|(a, b)| a * b).sum::<f32>() * scale
                }));
                let mut state = OnlineSoftmaxState::new(dv);
                online_softmax_update(&mut state, &scores, |t| v.row(indices[t]));
                out_row.copy_from_slice(&state.finish());
                chunk_pairs += indices.len() as u64;
            }
            live_pairs.fetch_add(chunk_pairs, Ordering::Relaxed);
        });
    }
    if let Some((_, bad)) = first_error.into_inner().expect("error slot poisoned") {
        return Err(TensorError::IndexOutOfBounds {
            op: "gathered_attention",
            index: bad,
            bound: s_k,
        });
    }
    let live_pairs = live_pairs.into_inner();

    let flops = live_pairs * (2 * d as u64 + 4 + 2 * dv as u64);
    let bytes_read = 4 * (s_q * d) as u64 + 4 * live_pairs * (d + dv) as u64;
    let bytes_written = 4 * (s_q * dv) as u64;
    let cost = CostReport::launch(flops, bytes_read, bytes_written);
    Ok((AttentionOutput { output, cost }, live_pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::full_attention;
    use sa_tensor::{max_abs_diff, DeterministicRng};

    #[test]
    fn all_causal_indices_matches_full() {
        let mut rng = DeterministicRng::new(1);
        let q = rng.normal_matrix(24, 8, 1.0);
        let k = rng.normal_matrix(24, 8, 1.0);
        let v = rng.normal_matrix(24, 8, 1.0);
        let (got, pairs) = gathered_attention(&q, &k, &v, |i| (0..=i).collect()).unwrap();
        let want = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(got.output.as_slice(), want.output.as_slice()) < 1e-4);
        assert_eq!(pairs, 24 * 25 / 2);
    }

    #[test]
    fn empty_rows_are_zero() {
        let mut rng = DeterministicRng::new(2);
        let q = rng.normal_matrix(4, 4, 1.0);
        let k = rng.normal_matrix(4, 4, 1.0);
        let v = rng.normal_matrix(4, 4, 1.0);
        let (got, pairs) =
            gathered_attention(&q, &k, &v, |i| if i == 2 { vec![0, 1] } else { vec![] }).unwrap();
        assert!(got.output.row(0).iter().all(|&x| x == 0.0));
        assert!(got.output.row(2).iter().any(|&x| x != 0.0));
        assert_eq!(pairs, 2);
    }

    #[test]
    fn out_of_bounds_index_rejected() {
        let q = Matrix::zeros(2, 4);
        let k = Matrix::zeros(2, 4);
        let v = Matrix::zeros(2, 4);
        assert!(gathered_attention(&q, &k, &v, |_| vec![5]).is_err());
    }
}
