//! # sa-baselines
//!
//! The baseline sparse-attention methods the paper compares against
//! (§5.2):
//!
//! - [`FullAttention`] — dense causal attention via the flash kernel; the
//!   gold standard.
//! - [`BigBird`] — static window + global tokens + random columns
//!   (Zaheer et al., 2020).
//! - [`StreamingLlm`] — attention sinks (first few tokens) + a fixed
//!   window (Xiao et al., 2023).
//! - [`HyperAttention`] — LSH bucketing plus uniformly sampled columns
//!   (Han et al., 2023).
//! - [`HashSparse`] — hash-bucketed sparse flash attention (Pagliardini
//!   et al., 2023).
//! - [`WindowOnly`] — pure sliding window (ablation helper).
//! - [`OracleTopK`] — per-row exact top-k selection computed from the full
//!   score matrix; an accuracy *upper bound* that is unaffordable at
//!   runtime (requires materialising `P`), used for analysis.
//! - [`SampleAttentionMethod`] — adapter putting `sa-core`'s
//!   SampleAttention behind the same [`AttentionMethod`] interface.
//!
//! All methods implement [`AttentionMethod`], produce a [`MethodOutput`]
//! with output, cost, and achieved mask density, and are evaluated
//! head-by-head exactly like SampleAttention so the accuracy comparisons
//! in Table 2 / Figure 4 are apples-to-apples.

mod bigbird;
mod full;
mod gather;
mod hash_sparse;
mod hyper_attention;
pub mod lsh;
mod method;
mod oracle;
mod sample_adapter;
mod streaming;
mod window;

pub use bigbird::BigBird;
pub use full::FullAttention;
pub use hash_sparse::HashSparse;
pub use hyper_attention::HyperAttention;
pub use method::{AttentionMethod, MethodOutput};
pub use oracle::OracleTopK;
pub use sample_adapter::SampleAttentionMethod;
pub use streaming::StreamingLlm;
pub use window::WindowOnly;
