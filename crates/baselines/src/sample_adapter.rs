//! Adapter exposing `sa-core`'s SampleAttention through the common
//! [`AttentionMethod`] interface used by the evaluation harnesses.

use sa_core::{SampleAttention, SampleAttentionConfig};
use sa_tensor::{Matrix, TensorError};

use crate::{AttentionMethod, MethodOutput};

/// SampleAttention as an [`AttentionMethod`].
#[derive(Debug, Clone)]
pub struct SampleAttentionMethod {
    inner: SampleAttention,
    label: String,
}

impl SampleAttentionMethod {
    /// Wraps a configured SampleAttention; the label carries the α value
    /// the paper's tables show (e.g. `SampleAttention(α=0.95)`).
    pub fn new(config: SampleAttentionConfig) -> Self {
        let label = format!("SampleAttention(alpha={:.2})", config.cra_threshold);
        SampleAttentionMethod {
            inner: SampleAttention::new(config),
            label,
        }
    }

    /// The paper's default operating point.
    pub fn paper_default() -> Self {
        Self::new(SampleAttentionConfig::paper_default())
    }

    /// Access to the wrapped operator.
    pub fn inner(&self) -> &SampleAttention {
        &self.inner
    }
}

impl AttentionMethod for SampleAttentionMethod {
    fn name(&self) -> &str {
        &self.label
    }

    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError> {
        let out = self.inner.forward(q, k, v).map_err(|e| match e {
            sa_core::SampleAttentionError::Tensor(t) => t,
            other => TensorError::InvalidDimension {
                op: "SampleAttentionMethod::forward",
                what: other.to_string(),
            },
        })?;
        Ok(MethodOutput {
            output: out.output,
            cost: out.stats.total_cost(),
            density: out.stats.mask_density,
            alpha_satisfied: out.stats.alpha_satisfied,
            fell_back: out.stats.fell_back(),
            fallback_reason: out.stats.fallback_reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::DeterministicRng;

    #[test]
    fn adapter_forwards_and_labels() {
        let mut rng = DeterministicRng::new(1);
        let q = rng.normal_matrix(64, 8, 1.0);
        let k = rng.normal_matrix(64, 8, 1.0);
        let v = rng.normal_matrix(64, 8, 1.0);
        let m = SampleAttentionMethod::paper_default();
        assert_eq!(m.name(), "SampleAttention(alpha=0.95)");
        let out = m.forward(&q, &k, &v).unwrap();
        assert_eq!(out.output.shape(), (64, 8));
        assert!(out.density > 0.0);
        assert!(out.cost.flops > 0);
    }
}
