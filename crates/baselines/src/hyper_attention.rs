//! HyperAttention: LSH-identified heavy entries + uniform column sampling.
//!
//! Following Han et al. (2023), heavy score entries are located by hashing
//! queries and keys with a shared sign-random-projection LSH (similar
//! vectors collide), and the remainder of the softmax mass is estimated
//! from uniformly sampled columns. The paper's comparison sets both the
//! bucket size and the number of sampled columns to 256; scaled problems
//! use proportional values via [`HyperAttention::scaled`].

use sa_kernels::causal_pairs;
use sa_tensor::{Matrix, TensorError};

use crate::gather::gathered_attention;
use crate::lsh::SignRandomProjection;
use crate::{AttentionMethod, MethodOutput};

/// HyperAttention-style sparse attention.
#[derive(Debug, Clone)]
pub struct HyperAttention {
    bucket_size: usize,
    num_sampled_cols: usize,
    num_planes: usize,
    seed: u64,
}

impl HyperAttention {
    /// The paper's comparison settings (bucket size 256, 256 sampled
    /// columns) with 6 hyperplanes.
    pub fn paper_config(seed: u64) -> Self {
        HyperAttention {
            bucket_size: 256,
            num_sampled_cols: 256,
            num_planes: 6,
            seed,
        }
    }

    /// Settings scaled to a target sequence length: bucket size and
    /// sampled columns are `s / 16` (the paper's 256 at 4K), at least 4.
    pub fn scaled(s: usize, seed: u64) -> Self {
        let b = (s / 16).max(4);
        HyperAttention {
            bucket_size: b,
            num_sampled_cols: b,
            num_planes: 6,
            seed,
        }
    }

    /// Creates with explicit settings.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] for zero bucket size or
    /// an invalid plane count.
    pub fn new(
        bucket_size: usize,
        num_sampled_cols: usize,
        num_planes: usize,
        seed: u64,
    ) -> Result<Self, TensorError> {
        if bucket_size == 0 {
            return Err(TensorError::InvalidDimension {
                op: "HyperAttention::new",
                what: "bucket_size must be >= 1".to_string(),
            });
        }
        if num_planes == 0 || num_planes > 30 {
            return Err(TensorError::InvalidDimension {
                op: "HyperAttention::new",
                what: format!("num_planes must be in 1..=30, got {num_planes}"),
            });
        }
        Ok(HyperAttention {
            bucket_size,
            num_sampled_cols,
            num_planes,
            seed,
        })
    }
}

impl AttentionMethod for HyperAttention {
    fn name(&self) -> &str {
        "HyperAttention"
    }

    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError> {
        if q.cols() != k.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "HyperAttention::forward",
                lhs: q.shape(),
                rhs: k.shape(),
            });
        }
        let s_q = q.rows();
        let s_k = k.rows();
        let hasher = SignRandomProjection::new(q.cols(), self.num_planes, self.seed);
        let q_hashes = hasher.hash_rows(q);
        let k_hashes = hasher.hash_rows(k);

        // Per key-bucket row lists (keys sorted ascending already).
        let mut key_buckets: Vec<Vec<usize>> = vec![Vec::new(); hasher.num_buckets()];
        for (j, &h) in k_hashes.iter().enumerate() {
            key_buckets[h].push(j);
        }

        let diag_off = s_k as isize - s_q as isize;
        let (out, live_pairs) = gathered_attention(q, k, v, |i| {
            let end = i as isize + diag_off;
            if end < 0 {
                return Vec::new();
            }
            let end = (end as usize).min(s_k - 1);
            let mut indices: Vec<usize> = Vec::new();
            // Heavy entries: causal keys colliding with this query,
            // nearest-first, capped at bucket_size.
            let bucket = &key_buckets[q_hashes[i]];
            let cut = bucket.partition_point(|&j| j <= end);
            indices.extend(bucket[..cut].iter().rev().take(self.bucket_size));
            // Uniformly sampled causal columns for the residual estimate.
            let n = self.num_sampled_cols.min(end + 1);
            if n > 0 {
                let stride = (end + 1) as f64 / n as f64;
                indices.extend((0..n).map(|t| (t as f64 * stride) as usize));
            }
            // Self-attention is always kept.
            indices.push(end);
            indices.sort_unstable();
            indices.dedup();
            indices
        })?;

        let causal = causal_pairs(s_q, s_k).max(1);
        Ok(MethodOutput {
            output: out.output,
            cost: out.cost,
            density: live_pairs as f64 / causal as f64,
            alpha_satisfied: true,
            fell_back: false,
            fallback_reason: sa_core::FallbackReason::None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::full_attention;
    use sa_tensor::{cosine_similarity, DeterministicRng};

    fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
        )
    }

    #[test]
    fn forward_shape_and_density() {
        let (q, k, v) = qkv(128, 8, 1);
        let m = HyperAttention::new(8, 8, 4, 0).unwrap();
        let out = m.forward(&q, &k, &v).unwrap();
        assert_eq!(out.output.shape(), (128, 8));
        assert!(out.density > 0.0 && out.density < 1.0, "{}", out.density);
    }

    #[test]
    fn generous_budget_approaches_full() {
        let (q, k, v) = qkv(64, 8, 2);
        let m = HyperAttention::new(64, 64, 4, 0).unwrap();
        let out = m.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let sim = cosine_similarity(out.output.as_slice(), exact.output.as_slice());
        assert!(sim > 0.999, "sim {sim}");
    }

    #[test]
    fn tight_budget_degrades() {
        let (q, k, v) = qkv(256, 8, 3);
        let m = HyperAttention::new(2, 2, 6, 0).unwrap();
        let out = m.forward(&q, &k, &v).unwrap();
        assert!(out.density < 0.1);
    }

    #[test]
    fn deterministic_across_calls() {
        let (q, k, v) = qkv(64, 8, 4);
        let m = HyperAttention::paper_config(9);
        let a = m.forward(&q, &k, &v).unwrap();
        let b = m.forward(&q, &k, &v).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn validation() {
        assert!(HyperAttention::new(0, 4, 4, 0).is_err());
        assert!(HyperAttention::new(4, 4, 0, 0).is_err());
        let (q, _, v) = qkv(8, 8, 5);
        let k_bad = Matrix::zeros(8, 6);
        assert!(HyperAttention::paper_config(0).forward(&q, &k_bad, &v).is_err());
    }

    #[test]
    fn scaled_config_tracks_length() {
        let a = HyperAttention::scaled(4096, 0);
        assert_eq!(a.bucket_size, 256);
        let b = HyperAttention::scaled(64, 0);
        assert_eq!(b.bucket_size, 4);
    }
}
