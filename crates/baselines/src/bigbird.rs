//! BigBird: static window + global tokens + random columns.
//!
//! The paper's configuration (§5.2): window ratio 8 %, global ratio 8 %.
//! Global tokens are the first `⌈r_g·S⌉` positions (every query attends to
//! them and they attend to everything — in causal prefill only the former
//! matters); random columns are drawn once per forward from the
//! construction seed.

use sa_kernels::{sparse_flash_attention, StructuredMask};
use sa_tensor::{DeterministicRng, Matrix, TensorError};

use crate::{AttentionMethod, MethodOutput};

/// BigBird sparse attention (static structured pattern).
#[derive(Debug, Clone)]
pub struct BigBird {
    window_ratio: f32,
    global_ratio: f32,
    random_ratio: f32,
    seed: u64,
}

impl BigBird {
    /// Creates BigBird with the paper's comparison settings
    /// (window 8 %, global 8 %, no extra random columns).
    pub fn paper_config(seed: u64) -> Self {
        BigBird {
            window_ratio: 0.08,
            global_ratio: 0.08,
            random_ratio: 0.0,
            seed,
        }
    }

    /// Creates BigBird with explicit ratios.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if any ratio is outside
    /// `[0, 1]`.
    pub fn new(
        window_ratio: f32,
        global_ratio: f32,
        random_ratio: f32,
        seed: u64,
    ) -> Result<Self, TensorError> {
        for (name, r) in [
            ("window_ratio", window_ratio),
            ("global_ratio", global_ratio),
            ("random_ratio", random_ratio),
        ] {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return Err(TensorError::InvalidDimension {
                    op: "BigBird::new",
                    what: format!("{name} must be in [0, 1], got {r}"),
                });
            }
        }
        Ok(BigBird {
            window_ratio,
            global_ratio,
            random_ratio,
            seed,
        })
    }

    /// Builds the static BigBird mask for an `s_q x s_k` problem.
    pub fn build_mask(&self, s_q: usize, s_k: usize) -> StructuredMask {
        let globals = (self.global_ratio * s_k as f32).ceil() as usize;
        let window = (self.window_ratio * s_k as f32).ceil() as usize;
        let n_random = (self.random_ratio * s_k as f32).ceil() as usize;
        let mut rng = DeterministicRng::new(self.seed);
        let random_cols = rng.distinct_indices(s_k, n_random);
        StructuredMask::builder(s_q, s_k)
            .window(window.max(1))
            .sinks(globals)
            .columns(random_cols)
            .build()
            .expect("random columns are in range")
    }
}

impl AttentionMethod for BigBird {
    fn name(&self) -> &str {
        "BigBird"
    }

    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError> {
        let mask = self.build_mask(q.rows(), k.rows());
        let out = sparse_flash_attention(q, k, v, &mask)?;
        Ok(MethodOutput {
            output: out.output,
            cost: out.cost,
            density: mask.density(),
            alpha_satisfied: true,
            fell_back: false,
            fallback_reason: sa_core::FallbackReason::None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::DeterministicRng;

    #[test]
    fn mask_contains_globals_window_and_randoms() {
        let bb = BigBird::new(0.1, 0.05, 0.05, 7).unwrap();
        let mask = bb.build_mask(100, 100);
        // globals: first 5 columns
        for g in 0..5 {
            assert!(mask.is_allowed(99, g));
        }
        // window: 10 tokens
        assert!(mask.is_allowed(99, 95));
        assert!(mask.density() < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = BigBird::new(0.05, 0.02, 0.1, 42).unwrap().build_mask(64, 64);
        let b = BigBird::new(0.05, 0.02, 0.1, 42).unwrap().build_mask(64, 64);
        assert_eq!(a, b);
        let c = BigBird::new(0.05, 0.02, 0.1, 43).unwrap().build_mask(64, 64);
        assert_ne!(a.extra_columns(), c.extra_columns());
    }

    #[test]
    fn forward_shape_and_density() {
        let mut rng = DeterministicRng::new(1);
        let q = rng.normal_matrix(80, 8, 1.0);
        let k = rng.normal_matrix(80, 8, 1.0);
        let v = rng.normal_matrix(80, 8, 1.0);
        let out = BigBird::paper_config(0).forward(&q, &k, &v).unwrap();
        assert_eq!(out.output.shape(), (80, 8));
        assert!(out.density > 0.0 && out.density < 1.0);
    }

    #[test]
    fn invalid_ratios_rejected() {
        assert!(BigBird::new(1.5, 0.0, 0.0, 0).is_err());
        assert!(BigBird::new(0.1, -0.1, 0.0, 0).is_err());
        assert!(BigBird::new(0.1, 0.0, f32::NAN, 0).is_err());
    }
}
