//! Pure sliding-window attention (ablation helper).

use sa_kernels::{sparse_flash_attention, StructuredMask};
use sa_tensor::{Matrix, TensorError};

use crate::{AttentionMethod, MethodOutput};

/// Window-only sparse attention: each query sees its last
/// `⌈window_ratio · S_k⌉` keys.
#[derive(Debug, Clone)]
pub struct WindowOnly {
    window_ratio: f32,
}

impl WindowOnly {
    /// Creates the method.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if the ratio is outside
    /// `(0, 1]`.
    pub fn new(window_ratio: f32) -> Result<Self, TensorError> {
        if !(window_ratio > 0.0 && window_ratio <= 1.0) {
            return Err(TensorError::InvalidDimension {
                op: "WindowOnly::new",
                what: format!("window_ratio must be in (0, 1], got {window_ratio}"),
            });
        }
        Ok(WindowOnly { window_ratio })
    }

    /// Builds the window mask.
    pub fn build_mask(&self, s_q: usize, s_k: usize) -> StructuredMask {
        let window = ((self.window_ratio * s_k as f32).ceil() as usize).max(1);
        StructuredMask::builder(s_q, s_k)
            .window(window)
            .build()
            .expect("no explicit columns")
    }
}

impl AttentionMethod for WindowOnly {
    fn name(&self) -> &str {
        "WindowOnly"
    }

    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError> {
        let mask = self.build_mask(q.rows(), k.rows());
        let out = sparse_flash_attention(q, k, v, &mask)?;
        Ok(MethodOutput {
            output: out.output,
            cost: out.cost,
            density: mask.density(),
            alpha_satisfied: true,
            fell_back: false,
            fallback_reason: sa_core::FallbackReason::None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::DeterministicRng;

    #[test]
    fn window_only_mask() {
        let m = WindowOnly::new(0.1).unwrap().build_mask(50, 50);
        assert!(m.is_allowed(49, 45));
        assert!(!m.is_allowed(49, 0));
        assert_eq!(m.extra_columns().len(), 0);
    }

    #[test]
    fn forward_and_validation() {
        let mut rng = DeterministicRng::new(3);
        let q = rng.normal_matrix(32, 4, 1.0);
        let k = rng.normal_matrix(32, 4, 1.0);
        let v = rng.normal_matrix(32, 4, 1.0);
        let out = WindowOnly::new(0.25).unwrap().forward(&q, &k, &v).unwrap();
        assert_eq!(out.output.shape(), (32, 4));
        assert!(WindowOnly::new(0.0).is_err());
        assert!(WindowOnly::new(1.5).is_err());
    }
}
