//! The common interface every attention method implements.

use sa_kernels::CostReport;
use sa_tensor::{Matrix, TensorError};

/// Output of one attention-method invocation on one head.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// The `(S_q, d_v)` attention output.
    pub output: Matrix,
    /// Exact algorithmic cost (mask discovery + sparse compute).
    pub cost: CostReport,
    /// Fraction of the causal score triangle actually computed
    /// (1.0 for full attention).
    pub density: f64,
    /// Whether the method reached its configured coverage target.
    /// Baselines with no coverage notion report `true`; SampleAttention
    /// reports stage-2's `alpha_satisfied`.
    pub alpha_satisfied: bool,
    /// Whether the head transparently degraded to a dense fallback
    /// (SampleAttention's [`HealthPolicy::FallbackDense`] path; always
    /// `false` for the fixed-pattern baselines).
    ///
    /// [`HealthPolicy::FallbackDense`]: sa_core::HealthPolicy::FallbackDense
    pub fell_back: bool,
    /// Why the head degraded ([`FallbackReason::None`] when it did not;
    /// always `None` for the fixed-pattern baselines).
    ///
    /// [`FallbackReason::None`]: sa_core::FallbackReason::None
    pub fallback_reason: sa_core::FallbackReason,
}

/// A prefill attention method: maps one head's Q/K/V to an output.
///
/// Implementations must be deterministic for a fixed construction (any
/// randomness — BigBird's random columns, LSH hyperplanes — is drawn at
/// construction time from a caller-provided seed), so that accuracy
/// comparisons are reproducible.
///
/// The trait is object-safe: the evaluation harnesses iterate over
/// `Vec<Box<dyn AttentionMethod>>`.
///
/// `Send + Sync` is a supertrait so the model layers can fan one method
/// out across per-head worker threads (all state is fixed at
/// construction, so implementations are shared-reference safe by
/// design).
pub trait AttentionMethod: Send + Sync {
    /// Human-readable method name as used in the paper's tables.
    fn name(&self) -> &str;

    /// Computes attention for one head.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatches between `q`, `k`,
    /// and `v`.
    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError>;

    /// Computes attention for the head identified by `(layer, head)`.
    ///
    /// The model layers call this entry point so wrappers that route
    /// individual heads differently — the serving layer's per-head
    /// quality quarantine — can override it. The default implementation
    /// ignores the identity and delegates to
    /// [`forward`](Self::forward), so plain methods behave identically
    /// on both entry points.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatches between `q`, `k`,
    /// and `v`.
    fn forward_head(
        &self,
        layer: usize,
        head: usize,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
    ) -> Result<MethodOutput, TensorError> {
        let _ = (layer, head);
        self.forward(q, k, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl AttentionMethod for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn forward(&self, q: &Matrix, _: &Matrix, _: &Matrix) -> Result<MethodOutput, TensorError> {
            Ok(MethodOutput {
                output: q.clone(),
                cost: CostReport::new(),
                density: 0.0,
                alpha_satisfied: true,
                fell_back: false,
                fallback_reason: sa_core::FallbackReason::None,
            })
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let methods: Vec<Box<dyn AttentionMethod>> = vec![Box::new(Dummy)];
        let q = Matrix::zeros(2, 2);
        let out = methods[0].forward(&q, &q, &q).unwrap();
        assert_eq!(out.output.shape(), (2, 2));
        assert_eq!(methods[0].name(), "dummy");
    }
}
