//! Hash-Sparse: hash-bucketed causal attention (Pagliardini et al., 2023).
//!
//! Queries and keys are hashed into a fixed number of buckets; each query
//! attends only to causal keys in its own bucket (plus itself). The
//! paper's comparison uses 16 buckets. With random LLM activations the
//! buckets miss most genuinely heavy entries, which is why this baseline
//! degrades hardest in Table 2.

use sa_kernels::causal_pairs;
use sa_tensor::{Matrix, TensorError};

use crate::gather::gathered_attention;
use crate::lsh::SignRandomProjection;
use crate::{AttentionMethod, MethodOutput};

/// Hash-bucketed sparse attention.
#[derive(Debug, Clone)]
pub struct HashSparse {
    num_planes: usize,
    seed: u64,
}

impl HashSparse {
    /// The paper's comparison settings: 16 buckets (4 hyperplanes).
    pub fn paper_config(seed: u64) -> Self {
        HashSparse {
            num_planes: 4,
            seed,
        }
    }

    /// Creates with an explicit bucket count, rounded up to a power of
    /// two.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `num_buckets < 2` or
    /// exceeds `2^30`.
    pub fn with_buckets(num_buckets: usize, seed: u64) -> Result<Self, TensorError> {
        if !(2..=(1 << 30)).contains(&num_buckets) {
            return Err(TensorError::InvalidDimension {
                op: "HashSparse::with_buckets",
                what: format!("num_buckets must be in 2..=2^30, got {num_buckets}"),
            });
        }
        let num_planes = (usize::BITS - (num_buckets - 1).leading_zeros()) as usize;
        Ok(HashSparse {
            num_planes: num_planes.max(1),
            seed,
        })
    }

    /// Number of hash buckets.
    pub fn num_buckets(&self) -> usize {
        1 << self.num_planes
    }
}

impl AttentionMethod for HashSparse {
    fn name(&self) -> &str {
        "Hash-Sparse"
    }

    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError> {
        if q.cols() != k.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "HashSparse::forward",
                lhs: q.shape(),
                rhs: k.shape(),
            });
        }
        let s_q = q.rows();
        let s_k = k.rows();
        let hasher = SignRandomProjection::new(q.cols(), self.num_planes, self.seed);
        let q_hashes = hasher.hash_rows(q);
        let k_hashes = hasher.hash_rows(k);
        let mut key_buckets: Vec<Vec<usize>> = vec![Vec::new(); hasher.num_buckets()];
        for (j, &h) in k_hashes.iter().enumerate() {
            key_buckets[h].push(j);
        }

        let diag_off = s_k as isize - s_q as isize;
        let (out, live_pairs) = gathered_attention(q, k, v, |i| {
            let end = i as isize + diag_off;
            if end < 0 {
                return Vec::new();
            }
            let end = (end as usize).min(s_k - 1);
            let bucket = &key_buckets[q_hashes[i]];
            let cut = bucket.partition_point(|&j| j <= end);
            let mut indices: Vec<usize> = bucket[..cut].to_vec();
            if indices.last() != Some(&end) {
                indices.push(end); // self-attention always kept
            }
            indices
        })?;

        let causal = causal_pairs(s_q, s_k).max(1);
        Ok(MethodOutput {
            output: out.output,
            cost: out.cost,
            density: live_pairs as f64 / causal as f64,
            alpha_satisfied: true,
            fell_back: false,
            fallback_reason: sa_core::FallbackReason::None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::full_attention;
    use sa_tensor::{cosine_similarity, DeterministicRng};

    fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
        )
    }

    #[test]
    fn bucket_rounding() {
        assert_eq!(HashSparse::with_buckets(16, 0).unwrap().num_buckets(), 16);
        assert_eq!(HashSparse::with_buckets(9, 0).unwrap().num_buckets(), 16);
        assert_eq!(HashSparse::with_buckets(2, 0).unwrap().num_buckets(), 2);
        assert!(HashSparse::with_buckets(1, 0).is_err());
        assert_eq!(HashSparse::paper_config(0).num_buckets(), 16);
    }

    #[test]
    fn forward_shape_density_under_one_over_buckets_ish() {
        let (q, k, v) = qkv(256, 8, 1);
        let m = HashSparse::paper_config(2);
        let out = m.forward(&q, &k, &v).unwrap();
        assert_eq!(out.output.shape(), (256, 8));
        // Random vectors spread across 16 buckets → density ≈ 1/16 plus the
        // forced diagonal; comfortably below 0.3.
        assert!(out.density < 0.3, "density {}", out.density);
    }

    #[test]
    fn two_buckets_closer_to_full_than_many() {
        let (q, k, v) = qkv(128, 8, 3);
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let few = HashSparse::with_buckets(2, 1).unwrap().forward(&q, &k, &v).unwrap();
        let many = HashSparse::with_buckets(64, 1).unwrap().forward(&q, &k, &v).unwrap();
        let sim_few = cosine_similarity(few.output.as_slice(), exact.output.as_slice());
        let sim_many = cosine_similarity(many.output.as_slice(), exact.output.as_slice());
        assert!(sim_few > sim_many, "{sim_few} vs {sim_many}");
    }

    #[test]
    fn no_empty_rows() {
        let (q, k, v) = qkv(64, 8, 4);
        let out = HashSparse::paper_config(5).forward(&q, &k, &v).unwrap();
        for i in 0..64 {
            assert!(out.output.row(i).iter().any(|&x| x != 0.0), "row {i} empty");
        }
    }

    #[test]
    fn deterministic() {
        let (q, k, v) = qkv(64, 8, 6);
        let m = HashSparse::paper_config(7);
        assert_eq!(m.forward(&q, &k, &v).unwrap().output, m.forward(&q, &k, &v).unwrap().output);
    }
}
