//! Dense causal attention (the gold baseline).

use sa_kernels::{flash_attention, FlashParams};
use sa_tensor::{Matrix, TensorError};

use crate::{AttentionMethod, MethodOutput};

/// Full attention via the flash kernel — the paper's accuracy gold
/// standard and the latency baseline (FlashAttention2).
#[derive(Debug, Clone, Default)]
pub struct FullAttention {
    params: FlashParams,
}

impl FullAttention {
    /// Creates the baseline with default tile sizes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the baseline with explicit tile sizes.
    pub fn with_params(params: FlashParams) -> Self {
        FullAttention { params }
    }
}

impl AttentionMethod for FullAttention {
    fn name(&self) -> &str {
        "FullAttention"
    }

    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError> {
        let out = flash_attention(q, k, v, true, self.params)?;
        Ok(MethodOutput {
            output: out.output,
            cost: out.cost,
            density: 1.0,
            alpha_satisfied: true,
            fell_back: false,
            fallback_reason: sa_core::FallbackReason::None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::full_attention;
    use sa_tensor::{max_abs_diff, DeterministicRng};

    #[test]
    fn matches_reference() {
        let mut rng = DeterministicRng::new(1);
        let q = rng.normal_matrix(32, 8, 1.0);
        let k = rng.normal_matrix(32, 8, 1.0);
        let v = rng.normal_matrix(32, 8, 1.0);
        let m = FullAttention::new();
        let got = m.forward(&q, &k, &v).unwrap();
        let want = full_attention(&q, &k, &v, true).unwrap();
        assert!(max_abs_diff(got.output.as_slice(), want.output.as_slice()) < 1e-4);
        assert_eq!(got.density, 1.0);
        assert_eq!(m.name(), "FullAttention");
    }
}
