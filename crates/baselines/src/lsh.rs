//! Locality-sensitive hashing utilities shared by [`crate::HyperAttention`]
//! and [`crate::HashSparse`].
//!
//! Sign-random-projection LSH: each row is hashed to a bucket id by the
//! signs of its dot products with `num_planes` random hyperplanes. Rows
//! with high cosine similarity collide with high probability.

use sa_tensor::{DeterministicRng, Matrix};

/// A sign-random-projection hasher.
#[derive(Debug, Clone)]
pub struct SignRandomProjection {
    /// `(num_planes, d)` hyperplane normals.
    planes: Matrix,
}

impl SignRandomProjection {
    /// Draws `num_planes` random hyperplanes in dimension `d` from the
    /// seed. `2^num_planes` buckets result.
    ///
    /// # Panics
    ///
    /// Panics if `num_planes == 0` or `num_planes > 30`.
    pub fn new(d: usize, num_planes: usize, seed: u64) -> Self {
        assert!(
            num_planes > 0 && num_planes <= 30,
            "num_planes must be in 1..=30, got {num_planes}"
        );
        let mut rng = DeterministicRng::new(seed);
        SignRandomProjection {
            planes: rng.normal_matrix(num_planes, d, 1.0),
        }
    }

    /// Number of hyperplanes.
    pub fn num_planes(&self) -> usize {
        self.planes.rows()
    }

    /// Number of distinct buckets (`2^num_planes`).
    pub fn num_buckets(&self) -> usize {
        1 << self.planes.rows()
    }

    /// Hashes one vector to its bucket id.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the hasher's dimension.
    pub fn hash(&self, x: &[f32]) -> usize {
        assert_eq!(x.len(), self.planes.cols(), "hash dimension mismatch");
        let mut id = 0usize;
        for p in 0..self.planes.rows() {
            let dot: f32 = self.planes.row(p).iter().zip(x).map(|(a, b)| a * b).sum();
            if dot >= 0.0 {
                id |= 1 << p;
            }
        }
        id
    }

    /// Hashes every row of a matrix.
    pub fn hash_rows(&self, m: &Matrix) -> Vec<usize> {
        (0..m.rows()).map(|i| self.hash(m.row(i))).collect()
    }
}

/// Groups row indices by bucket id: `buckets[b]` lists the rows hashed to
/// `b`. Buckets are indexed densely `0..num_buckets`.
pub fn bucketize(hashes: &[usize], num_buckets: usize) -> Vec<Vec<usize>> {
    let mut buckets = vec![Vec::new(); num_buckets];
    for (row, &h) in hashes.iter().enumerate() {
        buckets[h % num_buckets].push(row);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::DeterministicRng;

    #[test]
    fn identical_vectors_collide() {
        let h = SignRandomProjection::new(8, 4, 1);
        let x = vec![0.3, -1.0, 0.5, 2.0, -0.2, 0.8, 1.1, -0.7];
        assert_eq!(h.hash(&x), h.hash(&x));
    }

    #[test]
    fn opposite_vectors_diverge() {
        let h = SignRandomProjection::new(8, 6, 2);
        let x = vec![1.0f32; 8];
        let y: Vec<f32> = x.iter().map(|v| -v).collect();
        // Opposite vectors flip every sign → complementary bucket ids.
        assert_eq!(h.hash(&x) ^ h.hash(&y), h.num_buckets() - 1);
    }

    #[test]
    fn similar_vectors_collide_often() {
        let mut rng = DeterministicRng::new(3);
        let h = SignRandomProjection::new(16, 4, 4);
        let mut collisions = 0;
        let trials = 200;
        for _ in 0..trials {
            let x: Vec<f32> = (0..16).map(|_| rng.normal()).collect();
            let y: Vec<f32> = x.iter().map(|v| v + 0.05 * rng.normal()).collect();
            if h.hash(&x) == h.hash(&y) {
                collisions += 1;
            }
        }
        assert!(collisions > trials / 2, "only {collisions}/{trials} collisions");
    }

    #[test]
    fn bucket_count_and_range() {
        let h = SignRandomProjection::new(4, 5, 5);
        assert_eq!(h.num_buckets(), 32);
        assert_eq!(h.num_planes(), 5);
        let mut rng = DeterministicRng::new(6);
        let m = rng.normal_matrix(100, 4, 1.0);
        for id in h.hash_rows(&m) {
            assert!(id < 32);
        }
    }

    #[test]
    fn bucketize_partitions_rows() {
        let hashes = vec![0, 1, 0, 3, 1];
        let buckets = bucketize(&hashes, 4);
        assert_eq!(buckets[0], vec![0, 2]);
        assert_eq!(buckets[1], vec![1, 4]);
        assert!(buckets[2].is_empty());
        assert_eq!(buckets[3], vec![3]);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    #[should_panic(expected = "num_planes")]
    fn zero_planes_panics() {
        let _ = SignRandomProjection::new(4, 0, 0);
    }
}
