//! StreamingLLM: attention sinks + sliding window.
//!
//! Designed for infinite *decoding*; the paper shows (Table 2) that at the
//! prefill stage its fixed sink+window pattern drops the mid-context
//! information long-context tasks need.

use sa_kernels::{sparse_flash_attention, StructuredMask};
use sa_tensor::{Matrix, TensorError};

use crate::{AttentionMethod, MethodOutput};

/// StreamingLLM-style sparse attention (sinks + window).
#[derive(Debug, Clone)]
pub struct StreamingLlm {
    sink_tokens: usize,
    window_ratio: f32,
}

impl StreamingLlm {
    /// The paper's comparison settings: 4 sink tokens, 8 % window.
    pub fn paper_config() -> Self {
        StreamingLlm {
            sink_tokens: 4,
            window_ratio: 0.08,
        }
    }

    /// Creates with explicit settings.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if the window ratio is
    /// outside `[0, 1]`.
    pub fn new(sink_tokens: usize, window_ratio: f32) -> Result<Self, TensorError> {
        if !(0.0..=1.0).contains(&window_ratio) || !window_ratio.is_finite() {
            return Err(TensorError::InvalidDimension {
                op: "StreamingLlm::new",
                what: format!("window_ratio must be in [0, 1], got {window_ratio}"),
            });
        }
        Ok(StreamingLlm {
            sink_tokens,
            window_ratio,
        })
    }

    /// Builds the sink+window mask.
    pub fn build_mask(&self, s_q: usize, s_k: usize) -> StructuredMask {
        let window = ((self.window_ratio * s_k as f32).ceil() as usize).max(1);
        StructuredMask::builder(s_q, s_k)
            .window(window)
            .sinks(self.sink_tokens)
            .build()
            .expect("no explicit columns")
    }
}

impl AttentionMethod for StreamingLlm {
    fn name(&self) -> &str {
        "StreamingLLM"
    }

    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError> {
        let mask = self.build_mask(q.rows(), k.rows());
        let out = sparse_flash_attention(q, k, v, &mask)?;
        Ok(MethodOutput {
            output: out.output,
            cost: out.cost,
            density: mask.density(),
            alpha_satisfied: true,
            fell_back: false,
            fallback_reason: sa_core::FallbackReason::None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::DeterministicRng;

    #[test]
    fn mask_shape() {
        let m = StreamingLlm::paper_config().build_mask(100, 100);
        assert!(m.is_allowed(99, 0));
        assert!(m.is_allowed(99, 3));
        assert!(!m.is_allowed(99, 50));
        assert!(m.is_allowed(99, 93));
    }

    #[test]
    fn drops_mid_context() {
        // The defining failure mode: mid-sequence keys invisible to late queries.
        let m = StreamingLlm::paper_config().build_mask(1000, 1000);
        assert!(!m.is_allowed(999, 500));
        assert!(m.density() < 0.2);
    }

    #[test]
    fn forward_works() {
        let mut rng = DeterministicRng::new(2);
        let q = rng.normal_matrix(64, 8, 1.0);
        let k = rng.normal_matrix(64, 8, 1.0);
        let v = rng.normal_matrix(64, 8, 1.0);
        let out = StreamingLlm::paper_config().forward(&q, &k, &v).unwrap();
        assert_eq!(out.output.shape(), (64, 8));
        assert_eq!(out.cost.kernel_launches, 1);
    }

    #[test]
    fn invalid_ratio_rejected() {
        assert!(StreamingLlm::new(4, 2.0).is_err());
    }
}
