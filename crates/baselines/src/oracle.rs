//! Oracle per-row top-k attention (accuracy upper bound).
//!
//! Computes the exact probability matrix and keeps, per row, the fewest
//! highest entries covering the CRA threshold — the unstructured optimum
//! of Definition 1. Unaffordable at runtime (quadratic memory), but the
//! analysis benches use it to quantify how close SampleAttention's
//! structured approximation gets to the information-theoretic best mask.

use sa_kernels::causal_pairs;
use sa_kernels::attention_probs;
use sa_tensor::{argsort_desc, Matrix, TensorError};

use crate::gather::gathered_attention;
use crate::{AttentionMethod, MethodOutput};

/// Oracle top-k sparse attention at a CRA threshold `alpha`.
#[derive(Debug, Clone)]
pub struct OracleTopK {
    alpha: f32,
}

impl OracleTopK {
    /// Creates the oracle.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `alpha` is not in
    /// `(0, 1]`.
    pub fn new(alpha: f32) -> Result<Self, TensorError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(TensorError::InvalidDimension {
                op: "OracleTopK::new",
                what: format!("alpha must be in (0, 1], got {alpha}"),
            });
        }
        Ok(OracleTopK { alpha })
    }

    /// The CRA threshold.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl AttentionMethod for OracleTopK {
    fn name(&self) -> &str {
        "OracleTopK"
    }

    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError> {
        let p = attention_probs(q, k, true)?;
        let s_q = q.rows();
        let s_k = k.rows();
        let (out, live_pairs) = gathered_attention(q, k, v, |i| {
            let row = p.row(i);
            let total: f32 = row.iter().sum();
            if total <= 0.0 {
                return Vec::new();
            }
            let target = self.alpha * total;
            let order = argsort_desc(row);
            let mut acc = 0.0;
            let mut picked = Vec::new();
            for &j in &order {
                picked.push(j);
                acc += row[j];
                if acc >= target {
                    break;
                }
            }
            picked.sort_unstable();
            picked
        })?;
        // The oracle's cost is dominated by materialising P (full
        // quadratic work) before the sparse pass; reflect that honestly.
        let mut cost = out.cost;
        let d = q.cols() as u64;
        let pairs = causal_pairs(s_q, s_k);
        cost.flops += pairs * (2 * d + 4);
        cost.bytes_read += 4 * pairs;
        cost.bytes_written += 4 * pairs;
        cost.kernel_launches += 2;
        let causal = pairs.max(1);
        Ok(MethodOutput {
            output: out.output,
            cost,
            density: live_pairs as f64 / causal as f64,
            alpha_satisfied: true,
            fell_back: false,
            fallback_reason: sa_core::FallbackReason::None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::full_attention;
    use sa_tensor::{cosine_similarity, DeterministicRng};

    fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
        )
    }

    #[test]
    fn near_lossless_at_high_alpha() {
        let (q, k, v) = qkv(96, 8, 1);
        let m = OracleTopK::new(0.99).unwrap();
        let out = m.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let sim = cosine_similarity(out.output.as_slice(), exact.output.as_slice());
        assert!(sim > 0.995, "sim {sim}");
        assert!(out.density < 1.0);
    }

    #[test]
    fn lower_alpha_sparser() {
        let (q, k, v) = qkv(96, 8, 2);
        let d_lo = OracleTopK::new(0.5).unwrap().forward(&q, &k, &v).unwrap().density;
        let d_hi = OracleTopK::new(0.95).unwrap().forward(&q, &k, &v).unwrap().density;
        assert!(d_lo < d_hi, "{d_lo} vs {d_hi}");
    }

    #[test]
    fn oracle_cost_includes_quadratic_discovery() {
        let (q, k, v) = qkv(64, 8, 3);
        let out = OracleTopK::new(0.5).unwrap().forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        assert!(out.cost.flops > exact.cost.flops / 2);
    }

    #[test]
    fn invalid_alpha() {
        assert!(OracleTopK::new(0.0).is_err());
        assert!(OracleTopK::new(1.1).is_err());
    }
}
