//! Decode-phase KV-cache eviction policies.
//!
//! The paper positions SampleAttention as *orthogonal* to KV-cache
//! eviction: "SampleAttention aims to reduce the computation overhead of
//! attention, and is orthogonal and can be combined with existing KV
//! cache eviction approaches [H2O, SparQ, gist tokens] to further reduce
//! memory consumption" (§1). This module implements the two classic
//! eviction families so the combination can actually be exercised:
//!
//! - [`EvictionPolicy::H2o`] — heavy-hitter oracle (Zhang et al., 2024):
//!   keep the `recent` newest entries plus the highest-accumulated-score
//!   "heavy hitters" up to the budget;
//! - [`EvictionPolicy::StreamingSinks`] — StreamingLLM-style: keep the
//!   first `sinks` entries and the newest remainder of the budget.
//!
//! Policies act on a [`crate::LayerKvCache`] per (layer, KV head), using
//! attention scores accumulated during decoding.

use sa_tensor::{Matrix, TensorError};
use sa_json::{FromJson, Json, JsonError, ToJson};

use crate::LayerKvCache;

/// Which entries to keep when the cache exceeds its budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionPolicy {
    /// Never evict (the paper's evaluation setting: uncompressed cache).
    None,
    /// H2O: `recent` newest entries + heavy hitters by accumulated score.
    H2o {
        /// Number of newest entries always kept.
        recent: usize,
    },
    /// StreamingLLM: `sinks` oldest entries + newest remainder.
    StreamingSinks {
        /// Number of initial (sink) entries always kept.
        sinks: usize,
    },
}

// Externally tagged, matching the previous derive: `"None"` for the unit
// variant, `{"H2o":{"recent":n}}` / `{"StreamingSinks":{"sinks":n}}` for
// the payload variants.
impl ToJson for EvictionPolicy {
    fn to_json(&self) -> Json {
        match self {
            EvictionPolicy::None => Json::Str("None".to_string()),
            EvictionPolicy::H2o { recent } => Json::Object(vec![(
                "H2o".to_string(),
                Json::Object(vec![("recent".to_string(), recent.to_json())]),
            )]),
            EvictionPolicy::StreamingSinks { sinks } => Json::Object(vec![(
                "StreamingSinks".to_string(),
                Json::Object(vec![("sinks".to_string(), sinks.to_json())]),
            )]),
        }
    }
}

impl FromJson for EvictionPolicy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some("None") = v.as_str() {
            return Ok(EvictionPolicy::None);
        }
        let fields = match v {
            Json::Object(fields) if fields.len() == 1 => fields,
            _ => {
                return Err(JsonError::new(format!(
                    "EvictionPolicy: expected \"None\" or single-variant object, got {}",
                    v.kind()
                )))
            }
        };
        let (tag, payload) = &fields[0];
        let field = |name: &str| {
            payload
                .get(name)
                .ok_or_else(|| JsonError::new(format!("EvictionPolicy::{tag}: missing `{name}`")))
                .and_then(usize::from_json)
        };
        match tag.as_str() {
            "H2o" => Ok(EvictionPolicy::H2o { recent: field("recent")? }),
            "StreamingSinks" => Ok(EvictionPolicy::StreamingSinks { sinks: field("sinks")? }),
            other => Err(JsonError::new(format!(
                "EvictionPolicy: unknown variant `{other}`"
            ))),
        }
    }
}

/// Eviction configuration: policy + cache budget in entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictionConfig {
    /// The policy to apply.
    pub policy: EvictionPolicy,
    /// Maximum cached entries per (layer, KV head); 0 = unlimited.
    pub budget: usize,
}

sa_json::impl_json_struct!(EvictionConfig { policy, budget });

impl EvictionConfig {
    /// The paper's setting: no eviction.
    pub fn none() -> Self {
        EvictionConfig {
            policy: EvictionPolicy::None,
            budget: 0,
        }
    }

    /// H2O with the given budget, keeping 25 % of it as recency.
    pub fn h2o(budget: usize) -> Self {
        EvictionConfig {
            policy: EvictionPolicy::H2o {
                recent: (budget / 4).max(1),
            },
            budget,
        }
    }

    /// StreamingLLM-style with the given budget and 4 sinks.
    pub fn streaming(budget: usize) -> Self {
        EvictionConfig {
            policy: EvictionPolicy::StreamingSinks { sinks: 4 },
            budget,
        }
    }

    /// Computes the keep-set (sorted cache indices) for a cache of `len`
    /// entries with per-entry accumulated attention `scores`.
    ///
    /// Returns `Ok(None)` when nothing needs evicting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when `scores.len()`
    /// disagrees with `len` — a desynchronized score track would
    /// otherwise rank entries by another head's statistics and corrupt
    /// the cache silently.
    pub fn keep_indices(&self, len: usize, scores: &[f64]) -> Result<Option<Vec<usize>>, TensorError> {
        if scores.len() != len {
            return Err(TensorError::InvalidDimension {
                op: "EvictionConfig::keep_indices",
                what: format!(
                    "score track has {} entries for a cache of {len}",
                    scores.len()
                ),
            });
        }
        if self.budget == 0 || len <= self.budget {
            return Ok(None);
        }
        Ok(match self.policy {
            EvictionPolicy::None => None,
            EvictionPolicy::H2o { recent } => {
                let recent = recent.min(self.budget);
                let heavy_quota = self.budget - recent;
                let recent_start = len - recent;
                // Rank the non-recent entries by accumulated score.
                let mut older: Vec<usize> = (0..recent_start).collect();
                older.sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut keep: Vec<usize> = older.into_iter().take(heavy_quota).collect();
                keep.extend(recent_start..len);
                keep.sort_unstable();
                Some(keep)
            }
            EvictionPolicy::StreamingSinks { sinks } => {
                let sinks = sinks.min(self.budget);
                let recent = self.budget - sinks;
                let mut keep: Vec<usize> = (0..sinks.min(len)).collect();
                keep.extend((len - recent.min(len))..len);
                keep.sort_unstable();
                keep.dedup();
                Some(keep)
            }
        })
    }
}

impl LayerKvCache {
    /// Retains only the given (strictly increasing, in-range) entries in
    /// every head.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any index exceeds the
    /// cache length, or [`TensorError::InvalidDimension`] when the
    /// keep-set is not strictly increasing (duplicate or out-of-order
    /// indices).
    pub fn retain(&mut self, keep: &[usize]) -> Result<(), TensorError> {
        for h in 0..self.num_kv_heads() {
            self.retain_head(h, keep)?;
        }
        Ok(())
    }

    /// Retains only the given entries in one head (H2O evicts per head;
    /// head lengths may diverge afterwards).
    ///
    /// The keep-set must be strictly increasing: a duplicated index would
    /// silently double a KV entry (and desynchronize the position-score
    /// bookkeeping above it), and an out-of-order set would reorder the
    /// cache against RoPE positions — both corruptions used to slip
    /// through and are now typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any index exceeds the
    /// head's cache length, or [`TensorError::InvalidDimension`] for
    /// duplicate or out-of-order indices.
    pub fn retain_head(&mut self, kv_head: usize, keep: &[usize]) -> Result<(), TensorError> {
        let len = self.head_len(kv_head);
        if let Some(&bad) = keep.iter().find(|&&i| i >= len) {
            return Err(TensorError::IndexOutOfBounds {
                op: "LayerKvCache::retain_head",
                index: bad,
                bound: len,
            });
        }
        if let Some(w) = keep.windows(2).find(|w| w[0] >= w[1]) {
            let what = if w[0] == w[1] {
                format!("duplicate keep index {}", w[0])
            } else {
                format!("keep indices out of order: {} before {}", w[0], w[1])
            };
            return Err(TensorError::InvalidDimension {
                op: "LayerKvCache::retain_head",
                what,
            });
        }
        let (k, v) = self.head(kv_head);
        let k_new = gather_rows(k, keep);
        let v_new = gather_rows(v, keep);
        self.replace(kv_head, k_new, v_new);
        Ok(())
    }
}

fn gather_rows(m: &Matrix, idx: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(idx.len(), m.cols());
    for (dst, &src) in idx.iter().enumerate() {
        out.row_mut(dst).copy_from_slice(m.row(src));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_eviction_below_budget() {
        let cfg = EvictionConfig::h2o(10);
        assert!(cfg.keep_indices(10, &vec![0.0; 10]).unwrap().is_none());
        assert!(cfg.keep_indices(5, &vec![0.0; 5]).unwrap().is_none());
        assert!(EvictionConfig::none()
            .keep_indices(100, &vec![0.0; 100])
            .unwrap()
            .is_none());
    }

    #[test]
    fn h2o_keeps_heavy_hitters_and_recents() {
        let cfg = EvictionConfig {
            policy: EvictionPolicy::H2o { recent: 2 },
            budget: 4,
        };
        // entry 1 is the heavy hitter; 8, 9 are recent.
        let mut scores = vec![0.1; 10];
        scores[1] = 9.0;
        scores[5] = 3.0;
        let keep = cfg.keep_indices(10, &scores).unwrap().unwrap();
        assert_eq!(keep, vec![1, 5, 8, 9]);
    }

    #[test]
    fn streaming_keeps_sinks_and_recents() {
        let cfg = EvictionConfig {
            policy: EvictionPolicy::StreamingSinks { sinks: 2 },
            budget: 5,
        };
        let keep = cfg.keep_indices(10, &vec![0.0; 10]).unwrap().unwrap();
        assert_eq!(keep, vec![0, 1, 7, 8, 9]);
    }

    #[test]
    fn mismatched_score_track_is_a_typed_error() {
        // Historically an assert!: a desynchronized score track must
        // surface as a typed error, not a panic.
        let cfg = EvictionConfig::h2o(4);
        let err = cfg.keep_indices(10, &vec![0.0; 9]).unwrap_err();
        match err {
            TensorError::InvalidDimension { op, what } => {
                assert_eq!(op, "EvictionConfig::keep_indices");
                assert!(what.contains('9') && what.contains("10"), "{what}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn keep_sets_from_policies_are_strictly_increasing() {
        // The sets the policies emit always satisfy retain_head's
        // contract, across budgets and score shapes.
        let mut scores: Vec<f64> = (0..50).map(|i| ((i * 37) % 17) as f64).collect();
        scores[13] = 100.0;
        for cfg in [
            EvictionConfig::h2o(8),
            EvictionConfig::h2o(49),
            EvictionConfig::streaming(8),
            EvictionConfig::streaming(3),
        ] {
            if let Some(keep) = cfg.keep_indices(50, &scores).unwrap() {
                assert!(
                    keep.windows(2).all(|w| w[0] < w[1]),
                    "{cfg:?} emitted {keep:?}"
                );
                assert!(keep.len() <= cfg.budget);
                assert!(*keep.last().unwrap() < 50);
            }
        }
    }

    #[test]
    fn retain_gathers_rows() {
        let mut c = LayerKvCache::new(1, 2);
        let k = Matrix::from_fn(4, 2, |i, _| i as f32);
        let v = Matrix::from_fn(4, 2, |i, _| (10 + i) as f32);
        c.append(0, &k, &v).unwrap();
        c.retain(&[0, 3]).unwrap();
        assert_eq!(c.len(), 2);
        let (ck, cv) = c.head(0);
        assert_eq!(ck.get(1, 0), 3.0);
        assert_eq!(cv.get(0, 0), 10.0);
        assert!(c.retain(&[5]).is_err());
    }

    fn four_entry_cache() -> LayerKvCache {
        let mut c = LayerKvCache::new(1, 2);
        let k = Matrix::from_fn(4, 2, |i, _| i as f32);
        let v = Matrix::from_fn(4, 2, |i, _| (10 + i) as f32);
        c.append(0, &k, &v).unwrap();
        c
    }

    #[test]
    fn duplicate_keep_indices_rejected_not_applied() {
        // A duplicated index would silently double a KV entry. The cache
        // must reject it *and* stay untouched.
        let mut c = four_entry_cache();
        let err = c.retain_head(0, &[1, 1, 3]).unwrap_err();
        match err {
            TensorError::InvalidDimension { op, what } => {
                assert_eq!(op, "LayerKvCache::retain_head");
                assert!(what.contains("duplicate"), "{what}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(c.head_len(0), 4, "cache must be untouched on error");
        assert_eq!(c.head(0).0.get(2, 0), 2.0);
    }

    #[test]
    fn out_of_order_keep_indices_rejected_not_applied() {
        // Out-of-order indices would reorder KV entries against their
        // RoPE positions.
        let mut c = four_entry_cache();
        let err = c.retain_head(0, &[3, 0]).unwrap_err();
        match err {
            TensorError::InvalidDimension { op, what } => {
                assert_eq!(op, "LayerKvCache::retain_head");
                assert!(what.contains("out of order"), "{what}");
                assert!(what.contains('3') && what.contains('0'), "{what}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(c.head_len(0), 4);
    }

    #[test]
    fn out_of_range_keep_indices_rejected_not_applied() {
        let mut c = four_entry_cache();
        let err = c.retain_head(0, &[0, 4]).unwrap_err();
        assert!(
            matches!(
                err,
                TensorError::IndexOutOfBounds {
                    op: "LayerKvCache::retain_head",
                    index: 4,
                    bound: 4
                }
            ),
            "{err:?}"
        );
        assert_eq!(c.head_len(0), 4);
    }

    #[test]
    fn empty_keep_set_empties_the_head() {
        let mut c = four_entry_cache();
        c.retain_head(0, &[]).unwrap();
        assert_eq!(c.head_len(0), 0);
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn policy_keep_sets_hold_their_invariants_under_a_seeded_sweep() {
        // Property sweep over seeded (len, budget, recent, sinks, scores)
        // cases: a keep-set never exceeds the budget, is always a valid
        // retain_head argument, and each policy retains what it promises
        // (H2O its recency window and top heavy hitter, StreamingSinks
        // its sinks and newest remainder).
        let mut s = 0x5EED_CAFE_u64;
        for _ in 0..300 {
            let len = 1 + (splitmix(&mut s) % 96) as usize;
            let budget = 1 + (splitmix(&mut s) % 64) as usize;
            let recent = 1 + (splitmix(&mut s) % 16) as usize;
            let sinks = (splitmix(&mut s) % 8) as usize;
            let scores: Vec<f64> = (0..len)
                .map(|_| (splitmix(&mut s) % 1000) as f64 / 10.0)
                .collect();
            for policy in [
                EvictionPolicy::H2o { recent },
                EvictionPolicy::StreamingSinks { sinks },
            ] {
                let cfg = EvictionConfig { policy, budget };
                let Some(keep) = cfg.keep_indices(len, &scores).unwrap() else {
                    assert!(len <= budget, "{cfg:?} skipped eviction at len {len}");
                    continue;
                };
                assert!(len > budget, "{cfg:?} evicted below budget at len {len}");
                assert!(
                    keep.len() <= budget,
                    "{cfg:?} kept {} of budget {budget}",
                    keep.len()
                );
                assert!(
                    keep.windows(2).all(|w| w[0] < w[1]),
                    "{cfg:?} emitted a non-increasing keep-set {keep:?}"
                );
                assert!(keep.iter().all(|&i| i < len), "{cfg:?} kept out-of-range");
                match policy {
                    EvictionPolicy::H2o { recent } => {
                        let r = recent.min(budget);
                        assert!(
                            (len - r..len).all(|i| keep.binary_search(&i).is_ok()),
                            "{cfg:?} dropped a recent entry: {keep:?}"
                        );
                        if budget > r && len > r {
                            let heaviest = (0..len - r)
                                .max_by(|&a, &b| {
                                    scores[a].partial_cmp(&scores[b]).expect("finite scores")
                                })
                                .expect("non-empty older range");
                            assert!(
                                keep.binary_search(&heaviest).is_ok(),
                                "{cfg:?} dropped the heaviest hitter {heaviest}: {keep:?}"
                            );
                        }
                    }
                    EvictionPolicy::StreamingSinks { sinks } => {
                        let sk = sinks.min(budget);
                        assert!(
                            (0..sk.min(len)).all(|i| keep.binary_search(&i).is_ok()),
                            "{cfg:?} dropped a sink: {keep:?}"
                        );
                        let rec = (budget - sk).min(len);
                        assert!(
                            (len - rec..len).all(|i| keep.binary_search(&i).is_ok()),
                            "{cfg:?} dropped a recent entry: {keep:?}"
                        );
                    }
                    EvictionPolicy::None => {}
                }
            }
        }
    }

    #[test]
    fn keep_sets_are_thread_count_invariant() {
        // Eviction ranking must be a pure function of (scores, config) —
        // heavy score ties included — never of the worker-pool width, or
        // decode sessions would diverge across SA_THREADS.
        use sa_tensor::pool;
        let scores: Vec<f64> = (0..64).map(|i| (i % 5) as f64).collect();
        let cfgs = [
            EvictionConfig::h2o(16),
            EvictionConfig::h2o(61),
            EvictionConfig::streaming(12),
        ];
        let compute = || -> Vec<Option<Vec<usize>>> {
            cfgs.iter()
                .map(|c| c.keep_indices(64, &scores).expect("valid score track"))
                .collect()
        };
        let base = pool::with_threads(1, compute);
        assert!(base.iter().all(|k| k.is_some()));
        for t in [2, 4] {
            assert_eq!(
                pool::with_threads(t, compute),
                base,
                "keep-sets diverged at {t} threads"
            );
        }
    }
}
