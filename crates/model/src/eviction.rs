//! Decode-phase KV-cache eviction policies.
//!
//! The paper positions SampleAttention as *orthogonal* to KV-cache
//! eviction: "SampleAttention aims to reduce the computation overhead of
//! attention, and is orthogonal and can be combined with existing KV
//! cache eviction approaches [H2O, SparQ, gist tokens] to further reduce
//! memory consumption" (§1). This module implements the two classic
//! eviction families so the combination can actually be exercised:
//!
//! - [`EvictionPolicy::H2o`] — heavy-hitter oracle (Zhang et al., 2024):
//!   keep the `recent` newest entries plus the highest-accumulated-score
//!   "heavy hitters" up to the budget;
//! - [`EvictionPolicy::StreamingSinks`] — StreamingLLM-style: keep the
//!   first `sinks` entries and the newest remainder of the budget.
//!
//! Policies act on a [`crate::LayerKvCache`] per (layer, KV head), using
//! attention scores accumulated during decoding.

use sa_tensor::{Matrix, TensorError};
use sa_json::{FromJson, Json, JsonError, ToJson};

use crate::LayerKvCache;

/// Which entries to keep when the cache exceeds its budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionPolicy {
    /// Never evict (the paper's evaluation setting: uncompressed cache).
    None,
    /// H2O: `recent` newest entries + heavy hitters by accumulated score.
    H2o {
        /// Number of newest entries always kept.
        recent: usize,
    },
    /// StreamingLLM: `sinks` oldest entries + newest remainder.
    StreamingSinks {
        /// Number of initial (sink) entries always kept.
        sinks: usize,
    },
}

// Externally tagged, matching the previous derive: `"None"` for the unit
// variant, `{"H2o":{"recent":n}}` / `{"StreamingSinks":{"sinks":n}}` for
// the payload variants.
impl ToJson for EvictionPolicy {
    fn to_json(&self) -> Json {
        match self {
            EvictionPolicy::None => Json::Str("None".to_string()),
            EvictionPolicy::H2o { recent } => Json::Object(vec![(
                "H2o".to_string(),
                Json::Object(vec![("recent".to_string(), recent.to_json())]),
            )]),
            EvictionPolicy::StreamingSinks { sinks } => Json::Object(vec![(
                "StreamingSinks".to_string(),
                Json::Object(vec![("sinks".to_string(), sinks.to_json())]),
            )]),
        }
    }
}

impl FromJson for EvictionPolicy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some("None") = v.as_str() {
            return Ok(EvictionPolicy::None);
        }
        let fields = match v {
            Json::Object(fields) if fields.len() == 1 => fields,
            _ => {
                return Err(JsonError::new(format!(
                    "EvictionPolicy: expected \"None\" or single-variant object, got {}",
                    v.kind()
                )))
            }
        };
        let (tag, payload) = &fields[0];
        let field = |name: &str| {
            payload
                .get(name)
                .ok_or_else(|| JsonError::new(format!("EvictionPolicy::{tag}: missing `{name}`")))
                .and_then(usize::from_json)
        };
        match tag.as_str() {
            "H2o" => Ok(EvictionPolicy::H2o { recent: field("recent")? }),
            "StreamingSinks" => Ok(EvictionPolicy::StreamingSinks { sinks: field("sinks")? }),
            other => Err(JsonError::new(format!(
                "EvictionPolicy: unknown variant `{other}`"
            ))),
        }
    }
}

/// Eviction configuration: policy + cache budget in entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictionConfig {
    /// The policy to apply.
    pub policy: EvictionPolicy,
    /// Maximum cached entries per (layer, KV head); 0 = unlimited.
    pub budget: usize,
}

sa_json::impl_json_struct!(EvictionConfig { policy, budget });

impl EvictionConfig {
    /// The paper's setting: no eviction.
    pub fn none() -> Self {
        EvictionConfig {
            policy: EvictionPolicy::None,
            budget: 0,
        }
    }

    /// H2O with the given budget, keeping 25 % of it as recency.
    pub fn h2o(budget: usize) -> Self {
        EvictionConfig {
            policy: EvictionPolicy::H2o {
                recent: (budget / 4).max(1),
            },
            budget,
        }
    }

    /// StreamingLLM-style with the given budget and 4 sinks.
    pub fn streaming(budget: usize) -> Self {
        EvictionConfig {
            policy: EvictionPolicy::StreamingSinks { sinks: 4 },
            budget,
        }
    }

    /// Computes the keep-set (sorted cache indices) for a cache of `len`
    /// entries with per-entry accumulated attention `scores`.
    ///
    /// Returns `None` when nothing needs evicting.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != len`.
    pub fn keep_indices(&self, len: usize, scores: &[f64]) -> Option<Vec<usize>> {
        assert_eq!(scores.len(), len, "score/cache length mismatch");
        if self.budget == 0 || len <= self.budget {
            return None;
        }
        match self.policy {
            EvictionPolicy::None => None,
            EvictionPolicy::H2o { recent } => {
                let recent = recent.min(self.budget);
                let heavy_quota = self.budget - recent;
                let recent_start = len - recent;
                // Rank the non-recent entries by accumulated score.
                let mut older: Vec<usize> = (0..recent_start).collect();
                older.sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut keep: Vec<usize> = older.into_iter().take(heavy_quota).collect();
                keep.extend(recent_start..len);
                keep.sort_unstable();
                Some(keep)
            }
            EvictionPolicy::StreamingSinks { sinks } => {
                let sinks = sinks.min(self.budget);
                let recent = self.budget - sinks;
                let mut keep: Vec<usize> = (0..sinks.min(len)).collect();
                keep.extend((len - recent.min(len))..len);
                keep.sort_unstable();
                keep.dedup();
                Some(keep)
            }
        }
    }
}

impl LayerKvCache {
    /// Retains only the given (sorted, in-range) entries in every head.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any index exceeds the
    /// cache length.
    pub fn retain(&mut self, keep: &[usize]) -> Result<(), TensorError> {
        for h in 0..self.num_kv_heads() {
            self.retain_head(h, keep)?;
        }
        Ok(())
    }

    /// Retains only the given entries in one head (H2O evicts per head;
    /// head lengths may diverge afterwards).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any index exceeds the
    /// head's cache length.
    pub fn retain_head(&mut self, kv_head: usize, keep: &[usize]) -> Result<(), TensorError> {
        let len = self.head_len(kv_head);
        if let Some(&bad) = keep.iter().find(|&&i| i >= len) {
            return Err(TensorError::IndexOutOfBounds {
                op: "LayerKvCache::retain_head",
                index: bad,
                bound: len,
            });
        }
        let (k, v) = self.head(kv_head);
        let k_new = gather_rows(k, keep);
        let v_new = gather_rows(v, keep);
        self.replace(kv_head, k_new, v_new);
        Ok(())
    }
}

fn gather_rows(m: &Matrix, idx: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(idx.len(), m.cols());
    for (dst, &src) in idx.iter().enumerate() {
        out.row_mut(dst).copy_from_slice(m.row(src));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_eviction_below_budget() {
        let cfg = EvictionConfig::h2o(10);
        assert!(cfg.keep_indices(10, &vec![0.0; 10]).is_none());
        assert!(cfg.keep_indices(5, &vec![0.0; 5]).is_none());
        assert!(EvictionConfig::none().keep_indices(100, &vec![0.0; 100]).is_none());
    }

    #[test]
    fn h2o_keeps_heavy_hitters_and_recents() {
        let cfg = EvictionConfig {
            policy: EvictionPolicy::H2o { recent: 2 },
            budget: 4,
        };
        // entry 1 is the heavy hitter; 8, 9 are recent.
        let mut scores = vec![0.1; 10];
        scores[1] = 9.0;
        scores[5] = 3.0;
        let keep = cfg.keep_indices(10, &scores).unwrap();
        assert_eq!(keep, vec![1, 5, 8, 9]);
    }

    #[test]
    fn streaming_keeps_sinks_and_recents() {
        let cfg = EvictionConfig {
            policy: EvictionPolicy::StreamingSinks { sinks: 2 },
            budget: 5,
        };
        let keep = cfg.keep_indices(10, &vec![0.0; 10]).unwrap();
        assert_eq!(keep, vec![0, 1, 7, 8, 9]);
    }

    #[test]
    fn retain_gathers_rows() {
        let mut c = LayerKvCache::new(1, 2);
        let k = Matrix::from_fn(4, 2, |i, _| i as f32);
        let v = Matrix::from_fn(4, 2, |i, _| (10 + i) as f32);
        c.append(0, &k, &v).unwrap();
        c.retain(&[0, 3]).unwrap();
        assert_eq!(c.len(), 2);
        let (ck, cv) = c.head(0);
        assert_eq!(ck.get(1, 0), 3.0);
        assert_eq!(cv.get(0, 0), 10.0);
        assert!(c.retain(&[5]).is_err());
    }
}
