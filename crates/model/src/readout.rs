//! Associative-recall readout: decode attention outputs back to tokens.
//!
//! Tasks plant `marker → payload` token pairs; the induction-style
//! retrieval heads fetch the payload's content embedding into their output
//! at the question position. The readout averages the retrieval heads'
//! content outputs and snaps to the nearest vocabulary embedding. A sparse
//! attention method that dropped the payload's KV produces a different
//! nearest token — task failure, exactly as in the paper's benchmarks.

use sa_tensor::Matrix;

use crate::{HeadReport, TokenEmbedder};

/// Minimum retrieval weight for a head to participate in the readout.
const RETRIEVAL_HEAD_THRESHOLD: f32 = 0.5;

/// Aggregates retrieval-head outputs into answer vectors.
#[derive(Debug, Clone)]
pub struct Readout {
    /// Indices (into the flattened head list) of participating heads.
    retrieval_heads: Vec<usize>,
}

impl Readout {
    /// Builds a readout from the flattened per-head reports of a prefill,
    /// selecting heads with a dominant retrieval component outside layer 0
    /// (layer 0 is deliberately dense/dispersed).
    pub fn from_reports(reports: &[HeadReport]) -> Self {
        let retrieval_heads = reports
            .iter()
            .enumerate()
            .filter(|(_, r)| r.layer > 0 && r.archetype.retrieval >= RETRIEVAL_HEAD_THRESHOLD)
            .map(|(i, _)| i)
            .collect();
        Readout { retrieval_heads }
    }

    /// Number of participating heads.
    pub fn num_heads(&self) -> usize {
        self.retrieval_heads.len()
    }

    /// The answer vector at sequence position `pos`: the mean content
    /// output of the retrieval heads.
    ///
    /// Returns `None` when no retrieval heads exist (degenerate models).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range or `head_contents` does not match
    /// the reports this readout was built from.
    pub fn answer_vector(&self, head_contents: &[Matrix], pos: usize) -> Option<Vec<f32>> {
        if self.retrieval_heads.is_empty() {
            return None;
        }
        let dc = head_contents[self.retrieval_heads[0]].cols();
        let mut acc = vec![0.0f32; dc];
        for &h in &self.retrieval_heads {
            let row = head_contents[h].row(pos);
            for (a, &x) in acc.iter_mut().zip(row) {
                *a += x;
            }
        }
        let inv = 1.0 / self.retrieval_heads.len() as f32;
        for a in &mut acc {
            *a *= inv;
        }
        Some(acc)
    }
}

/// Snaps a content vector to the nearest vocabulary token.
///
/// Returns `(token, cosine_similarity)`.
pub fn decode_nearest_token(embedder: &TokenEmbedder, v: &[f32]) -> (u32, f32) {
    embedder.nearest_token(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeadArchetype, ModelConfig};
    use sa_kernels::CostReport;

    fn report(layer: usize, head: usize, retrieval: f32) -> HeadReport {
        HeadReport {
            layer,
            head,
            archetype: HeadArchetype::from_weights((0.1, 0.1, retrieval, 0.1)),
            density: 1.0,
            alpha_satisfied: true,
            fell_back: false,
            fallback_reason: sa_core::FallbackReason::None,
            cost: CostReport::new(),
        }
    }

    #[test]
    fn selects_only_late_retrieval_heads() {
        let reports = vec![
            report(0, 0, 1.0), // layer 0 → excluded
            report(1, 0, 1.0),
            report(1, 1, 0.0),
            report(2, 0, 0.6),
        ];
        let r = Readout::from_reports(&reports);
        assert_eq!(r.num_heads(), 2);
        assert_eq!(r.retrieval_heads, vec![1, 3]);
    }

    #[test]
    fn answer_vector_averages() {
        let reports = vec![report(1, 0, 1.0), report(1, 1, 1.0)];
        let r = Readout::from_reports(&reports);
        let contents = vec![
            Matrix::from_rows(&[vec![1.0, 0.0]]).unwrap(),
            Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap(),
        ];
        let v = r.answer_vector(&contents, 0).unwrap();
        assert_eq!(v, vec![0.5, 0.5]);
    }

    #[test]
    fn empty_readout_returns_none() {
        let r = Readout::from_reports(&[report(1, 0, 0.0)]);
        assert!(r.answer_vector(&[Matrix::zeros(1, 2)], 0).is_none());
    }

    #[test]
    fn decode_round_trip() {
        let embedder = TokenEmbedder::new(ModelConfig::tiny(1));
        let (tok, sim) = decode_nearest_token(&embedder, embedder.content(42));
        assert_eq!(tok, 42);
        assert!(sim > 0.999);
    }
}
