//! Structured token embeddings.
//!
//! Hidden layout per position:
//! `[content | prev-salient-content | salient-content | positional | flags]`
//!
//! - **content**: a deterministic unit vector per token id (hash-seeded) —
//!   the associative-recall payload space;
//! - **prev-content**: the previous position's content vector, recorded
//!   only when the previous token is *salient* — the substrate's stand-in
//!   for a layer-1 "previous token" head, enabling the induction-style
//!   retrieval circuit in a single attention layer. Gating by salience
//!   mirrors real retrieval heads, which fire on semantically distinctive
//!   tokens rather than on every filler word (an ungated version would
//!   let random filler repetitions dominate the attention mass);
//! - **salient-content**: the position's own content vector when the
//!   token is salient, zero otherwise — retrieval heads issue content
//!   *queries* from this slot, so only distinctive tokens retrieve. This
//!   keeps every ordinary row's stripe distribution identical (pure
//!   salience), which is precisely the high row-wise similarity the
//!   paper's stage-1 sampling relies on;
//! - **positional**: an AR(1) random-walk track whose autocorrelation
//!   decays as `pos_decay^|i-j|`, giving local heads their diagonal
//!   window;
//! - **flags**: `[bos, 1, salience]` — the BOS indicator (sink heads key
//!   on it), a constant bias channel, and a *salience* indicator set for
//!   rare/special tokens (the marker and payload vocabulary bands).
//!   Salient tokens attract elevated attention from every query in
//!   retrieval heads — mirroring the well-documented behaviour of real
//!   LLMs, where semantically anomalous tokens become attention magnets.
//!   This is what gives attention stripes their high *row-wise
//!   similarity*, the empirical premise of the paper's stage-1 sampling.

use sa_tensor::{DeterministicRng, Matrix};

use crate::{ModelConfig, VocabLayout};

/// The reserved beginning-of-sequence token id.
pub const BOS_TOKEN: u32 = 0;

/// Deterministic token embedder for the synthetic transformer.
#[derive(Debug)]
pub struct TokenEmbedder {
    config: ModelConfig,
    /// `(vocab, content_dim)` unit content vectors.
    vocab_content: Matrix,
    /// Band structure used to mark salient tokens.
    layout: VocabLayout,
}

impl TokenEmbedder {
    /// Maximum pairwise cosine similarity tolerated inside the marker and
    /// payload bands. Distinct markers/answers in real vocabularies are
    /// well-separated words; without this, two random markers can be
    /// nearly collinear and retrieval confuses their facts.
    const BAND_MAX_COSINE: f32 = 0.55;

    /// Builds the embedder's vocabulary from the model seed.
    pub fn new(config: ModelConfig) -> Self {
        let mut rng = DeterministicRng::new(config.seed ^ 0x5eed_e4b);
        let layout = VocabLayout::for_vocab(config.vocab_size);
        let mut vocab_content = Matrix::zeros(config.vocab_size, config.content_dim);
        let mut band_members: Vec<usize> = Vec::new();
        for t in 0..config.vocab_size {
            let banded = layout.is_salient(t as u32);
            let mut best: Option<(f32, Vec<f32>)> = None;
            for _attempt in 0..48 {
                let v = sa_tensor::unit_vector(&mut rng, config.content_dim);
                if !banded {
                    best = Some((0.0, v));
                    break;
                }
                let worst = band_members
                    .iter()
                    .map(|&m| sa_tensor::cosine_similarity(&v, vocab_content.row(m)).abs())
                    .fold(0.0f32, f32::max);
                if best.as_ref().is_none_or(|(b, _)| worst < *b) {
                    let done = worst < Self::BAND_MAX_COSINE;
                    best = Some((worst, v));
                    if done {
                        break;
                    }
                }
            }
            let (_, v) = best.expect("at least one candidate drawn");
            vocab_content.row_mut(t).copy_from_slice(&v);
            if banded {
                band_members.push(t);
            }
        }
        TokenEmbedder {
            config,
            vocab_content,
            layout,
        }
    }

    /// The vocabulary band layout.
    pub fn layout(&self) -> &VocabLayout {
        &self.layout
    }

    /// Whether `token` is salient (marker or payload band).
    pub fn is_salient(&self, token: u32) -> bool {
        self.layout.is_salient(token)
    }

    /// The model configuration this embedder was built for.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Content vector of a token id.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    pub fn content(&self, token: u32) -> &[f32] {
        assert!(
            (token as usize) < self.config.vocab_size,
            "token {token} outside vocabulary ({})",
            self.config.vocab_size
        );
        self.vocab_content.row(token as usize)
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.config.vocab_size
    }

    /// Embeds a token sequence into the structured hidden matrix
    /// `(S, hidden_dim)`.
    ///
    /// The positional AR(1) track is re-seeded per call from the model
    /// seed (not the tokens), so positional geometry is shared across
    /// prompts while content varies.
    ///
    /// # Panics
    ///
    /// Panics if any token id is outside the vocabulary.
    pub fn embed(&self, tokens: &[u32]) -> Matrix {
        let c = &self.config;
        let dc = c.content_dim;
        let dp = c.pos_dim;
        let mut hidden = Matrix::zeros(tokens.len(), c.hidden_dim());
        let mut rng = DeterministicRng::new(c.seed ^ 0x9e37_79b9);
        let mut pos_track = vec![0.0f32; dp];
        // Innovation scale keeps the AR(1) track at unit stationary
        // variance: x_i = a x_{i-1} + sqrt(1-a^2) n_i.
        let a = c.pos_decay;
        let innov = (1.0 - a * a).sqrt();

        for (i, &tok) in tokens.iter().enumerate() {
            for v in pos_track.iter_mut() {
                *v = a * *v + innov * rng.normal();
            }
            let row = hidden.row_mut(i);
            let content = self.content(tok).to_vec();
            row[..dc].copy_from_slice(&content);
            if i > 0 && self.layout.is_salient(tokens[i - 1]) {
                let prev = self.content(tokens[i - 1]).to_vec();
                row[dc..2 * dc].copy_from_slice(&prev);
            }
            let salient = self.layout.is_salient(tok);
            if salient {
                row[2 * dc..3 * dc].copy_from_slice(&content);
            }
            row[3 * dc..3 * dc + dp].copy_from_slice(&pos_track);
            row[3 * dc + dp] = if i == 0 || tok == BOS_TOKEN { 1.0 } else { 0.0 };
            row[3 * dc + dp + 1] = 1.0;
            row[3 * dc + dp + 2] = if salient { 1.0 } else { 0.0 };
            // Positions following a salient token are induction targets
            // (fact payloads): the most anomalous positions in the
            // stream, attracting even more attention than lone salient
            // tokens — so stage-2 ranks true facts above decoys at any
            // depth.
            row[3 * dc + dp + 3] =
                if i > 0 && self.layout.is_salient(tokens[i - 1]) { 1.0 } else { 0.0 };
        }
        hidden
    }

    /// Nearest vocabulary token to a content vector, by cosine similarity.
    ///
    /// Returns `(token, similarity)`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != content_dim`.
    pub fn nearest_token(&self, v: &[f32]) -> (u32, f32) {
        self.nearest_token_in(v, 0..self.config.vocab_size as u32)
    }

    /// Nearest token within a candidate id range (constrained decoding, as
    /// benchmark scorers restrict answers to the valid-answer set).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != content_dim`, the range is empty, or it
    /// exceeds the vocabulary.
    pub fn nearest_token_in(&self, v: &[f32], range: std::ops::Range<u32>) -> (u32, f32) {
        assert_eq!(v.len(), self.config.content_dim, "content dim mismatch");
        assert!(
            !range.is_empty() && range.end as usize <= self.config.vocab_size,
            "invalid candidate range {range:?} for vocab {}",
            self.config.vocab_size
        );
        let mut best = (range.start, f32::NEG_INFINITY);
        for t in range {
            let sim = sa_tensor::cosine_similarity(v, self.vocab_content.row(t as usize));
            if sim > best.1 {
                best = (t, sim);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedder() -> TokenEmbedder {
        TokenEmbedder::new(ModelConfig::tiny(42))
    }

    #[test]
    fn content_vectors_are_unit_and_distinct() {
        let e = embedder();
        let a = e.content(1);
        let b = e.content(2);
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((na - 1.0).abs() < 1e-5);
        assert!(sa_tensor::cosine_similarity(a, b).abs() < 0.9);
    }

    #[test]
    fn embed_layout() {
        let e = embedder();
        let dc = e.config().content_dim;
        let dp = e.config().pos_dim;
        let layout = *e.layout();
        let marker = layout.marker(2);
        let filler = layout.filler(0);
        let h = e.embed(&[BOS_TOKEN, marker, filler, filler]);
        assert_eq!(h.shape(), (4, e.config().hidden_dim()));
        // content slot matches vocab
        assert_eq!(&h.row(1)[..dc], e.content(marker));
        // prev slot of position 2 records the salient marker
        assert_eq!(&h.row(2)[dc..2 * dc], e.content(marker));
        // prev slot after a non-salient filler stays zero
        assert!(h.row(3)[dc..2 * dc].iter().all(|&x| x == 0.0));
        // prev slot of position 0 is zero
        assert!(h.row(0)[dc..2 * dc].iter().all(|&x| x == 0.0));
        // salient-content slot: set on the marker row, zero on fillers
        assert_eq!(&h.row(1)[2 * dc..3 * dc], e.content(marker));
        assert!(h.row(2)[2 * dc..3 * dc].iter().all(|&x| x == 0.0));
        // BOS flag set only at position 0
        assert_eq!(h.row(0)[3 * dc + dp], 1.0);
        assert_eq!(h.row(1)[3 * dc + dp], 0.0);
        // bias channel always 1; salience flag set on the marker
        assert!(h.row(2)[3 * dc + dp + 1] == 1.0);
        assert_eq!(h.row(1)[3 * dc + dp + 2], 1.0);
        assert_eq!(h.row(2)[3 * dc + dp + 2], 0.0);
        // prev-salience flag: set right after the marker only
        assert_eq!(h.row(2)[3 * dc + dp + 3], 1.0);
        assert_eq!(h.row(3)[3 * dc + dp + 3], 0.0);
    }

    #[test]
    fn positional_track_locally_correlated() {
        let e = embedder();
        let dc = e.config().content_dim;
        let dp = e.config().pos_dim;
        let tokens: Vec<u32> = (0..200).map(|i| (i % 50 + 1) as u32).collect();
        let h = e.embed(&tokens);
        let pos = |i: usize| &h.row(i)[3 * dc..3 * dc + dp];
        let near = sa_tensor::cosine_similarity(pos(100), pos(101));
        let far = sa_tensor::cosine_similarity(pos(100), pos(180));
        assert!(near > 0.6, "near correlation {near}");
        assert!(far.abs() < near, "far {far} vs near {near}");
    }

    #[test]
    fn nearest_token_round_trips() {
        let e = embedder();
        for t in [1u32, 7, 100] {
            let (got, sim) = e.nearest_token(e.content(t));
            assert_eq!(got, t);
            assert!(sim > 0.999);
        }
    }

    #[test]
    fn banded_tokens_are_well_separated() {
        let e = embedder();
        let layout = *e.layout();
        let mut worst = 0.0f32;
        for i in 0..layout.num_markers() {
            for j in 0..layout.num_payloads() {
                let a = e.content(layout.marker(i));
                let b = e.content(layout.payload(j));
                worst = worst.max(sa_tensor::cosine_similarity(a, b).abs());
            }
        }
        for i in 0..layout.num_markers() {
            for j in (i + 1)..layout.num_markers() {
                let a = e.content(layout.marker(i));
                let b = e.content(layout.marker(j));
                worst = worst.max(sa_tensor::cosine_similarity(a, b).abs());
            }
        }
        // Rejection sampling keeps band members below ~0.55 + slack for
        // the occasional best-effort fallback.
        assert!(worst < 0.70, "worst in-band cosine {worst}");
    }

    #[test]
    fn embedding_is_deterministic() {
        let e1 = embedder();
        let e2 = embedder();
        let t = [1u32, 2, 3, 4];
        assert_eq!(e1.embed(&t), e2.embed(&t));
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn out_of_vocab_panics() {
        let e = embedder();
        let _ = e.content(100_000);
    }
}
