//! One transformer layer: GQA attention (pluggable method) + SwiGLU MLP
//! on a residual stream.

use sa_baselines::AttentionMethod;
use sa_kernels::gqa::GqaLayout;
use sa_kernels::rope::{apply_rope_partial, RopeConfig};
use sa_kernels::CostReport;
use sa_tensor::{matmul, pool, DeterministicRng, Matrix, TensorError};

use crate::{GroupProjections, HeadArchetype, LayerKvCache, ModelConfig, RmsNorm, SwigluMlp};

/// Per-head diagnostics from one prefill forward.
#[derive(Debug, Clone)]
pub struct HeadReport {
    /// Layer index.
    pub layer: usize,
    /// Query-head index within the layer.
    pub head: usize,
    /// The head's archetype mix.
    pub archetype: HeadArchetype,
    /// Live fraction of the causal triangle the method computed.
    pub density: f64,
    /// Whether the method reached its coverage target on this head
    /// (stage-2 `alpha_satisfied` for SampleAttention; `true` for
    /// baselines with no coverage notion).
    pub alpha_satisfied: bool,
    /// Whether this head transparently degraded to a dense fallback.
    pub fell_back: bool,
    /// Why this head degraded ([`FallbackReason::None`] when it did not).
    ///
    /// [`FallbackReason::None`]: sa_core::FallbackReason::None
    pub fallback_reason: sa_core::FallbackReason,
    /// Attention cost for this head (discovery + sparse compute).
    pub cost: CostReport,
}

/// Result of one layer's prefill forward.
#[derive(Debug, Clone)]
pub struct LayerForwardResult {
    /// Updated residual stream `(S, hidden_dim)`.
    pub hidden: Matrix,
    /// Content-space output `(S, content_dim)` of each query head.
    pub head_contents: Vec<Matrix>,
    /// Per-head diagnostics.
    pub head_reports: Vec<HeadReport>,
    /// Total cost of the layer (projections + attention + MLP).
    pub cost: CostReport,
}

/// One synthetic transformer layer.
#[derive(Debug)]
pub struct AttentionLayer {
    layer_index: usize,
    archetypes: Vec<HeadArchetype>,
    groups: Vec<GroupProjections>,
    gqa: GqaLayout,
    rope: RopeConfig,
    rotary_dims: usize,
    residual_gain: f32,
    pre_mlp_norm: RmsNorm,
    mlp: SwigluMlp,
    content_dim: usize,
}

impl AttentionLayer {
    /// Builds layer `layer_index` of a model, drawing weights from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if the config fails
    /// validation.
    pub fn generate(
        config: &ModelConfig,
        layer_index: usize,
        rng: &mut DeterministicRng,
    ) -> Result<Self, TensorError> {
        config.validate()?;
        let gqa = GqaLayout::new(config.num_heads, config.num_kv_heads)?;
        let archetypes: Vec<HeadArchetype> = (0..config.num_heads)
            .map(|h| HeadArchetype::from_weights(config.archetype_weights(layer_index, h)))
            .collect();
        let group_size = gqa.group_size();
        let groups = (0..config.num_kv_heads)
            .map(|g| {
                let slice = &archetypes[g * group_size..(g + 1) * group_size];
                GroupProjections::generate(config, slice, rng)
            })
            .collect();
        let hidden = config.hidden_dim();
        Ok(AttentionLayer {
            layer_index,
            archetypes,
            groups,
            gqa,
            rope: config.preset.rope(),
            rotary_dims: config.head_dim / 2,
            residual_gain: config.residual_gain,
            pre_mlp_norm: RmsNorm::jittered(hidden, rng),
            mlp: SwigluMlp::generate(hidden, 2 * hidden, rng),
            content_dim: config.content_dim,
        })
    }

    /// The layer's index in the model.
    pub fn layer_index(&self) -> usize {
        self.layer_index
    }

    /// Archetype of query head `head`.
    ///
    /// # Panics
    ///
    /// Panics if `head` is out of range.
    pub fn archetype(&self, head: usize) -> HeadArchetype {
        self.archetypes[head]
    }

    /// Number of query heads.
    pub fn num_heads(&self) -> usize {
        self.archetypes.len()
    }

    /// Projects the layer input into one head's RoPE-applied Q/K and V —
    /// the tensors an attention method sees. Exposed for the sparsity
    /// analyses (Figure 2, Tables 5/6).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] on shape problems (cannot happen for
    /// matrices produced by this model's embedder).
    pub fn project_head(
        &self,
        hidden: &Matrix,
        head: usize,
    ) -> Result<(Matrix, Matrix, Matrix), TensorError> {
        let group = &self.groups[self.gqa.kv_head_for(head)];
        let wq = &group.wqs[head % self.gqa.group_size()];
        let mut q = matmul(hidden, wq)?;
        let mut k = matmul(hidden, &group.wk)?;
        let v = matmul(hidden, &group.wv)?;
        apply_rope_partial(&mut q, self.rotary_dims, 0, self.rope)?;
        apply_rope_partial(&mut k, self.rotary_dims, 0, self.rope)?;
        Ok((q, k, v))
    }

    /// An empty K/V cache sized for this layer.
    pub fn new_cache(&self, head_dim: usize) -> LayerKvCache {
        LayerKvCache::new(self.groups.len(), head_dim)
    }

    /// Runs the layer *incrementally*: `hidden_rows` are the residual-
    /// stream rows of the new positions (`cache.len()..cache.len()+n`),
    /// whose K/V are appended to `cache`; attention runs over the full
    /// cached history. With a chunk equal to the whole prompt this is
    /// exactly [`forward_prefill`](Self::forward_prefill); with single
    /// rows it is the decode phase over an uncompressed KV cache.
    ///
    /// # Errors
    ///
    /// Propagates tensor/kernel errors from projections or the method.
    pub fn forward_incremental(
        &self,
        hidden_rows: &Matrix,
        cache: &mut LayerKvCache,
        method: &dyn AttentionMethod,
    ) -> Result<LayerForwardResult, TensorError> {
        let n = hidden_rows.rows();
        let dc = self.content_dim;
        let offset = cache.seen();
        let mut cost = CostReport::new();
        let mut head_contents = Vec::with_capacity(self.num_heads());
        let mut head_reports = Vec::with_capacity(self.num_heads());
        let mut content_update = Matrix::zeros(n, dc);

        for g in 0..self.groups.len() {
            let group = &self.groups[g];
            let mut k_new = matmul(hidden_rows, &group.wk)?;
            let v_new = matmul(hidden_rows, &group.wv)?;
            apply_rope_partial(&mut k_new, self.rotary_dims, offset, self.rope)?;
            cache.append(g, &k_new, &v_new)?;
            cost.merge(&projection_cost(n, hidden_rows.cols(), k_new.cols(), 2));
            let (k_all, v_all) = cache.head(g);

            // Heads of a group are independent given the shared K/V, so
            // they run on the worker pool; the fold below stays serial
            // and in head order, keeping the f32 accumulation into
            // `content_update` bit-identical to the serial loop.
            let head_outputs =
                pool::try_parallel_map("layer_heads", self.gqa.group_size(), 1, |local| {
                    let head = g * self.gqa.group_size() + local;
                    let _span = sa_trace::span_labeled("model", "head", || {
                        format!("L{}.H{head}", self.layer_index)
                    });
                    let mut q_new = matmul(hidden_rows, &group.wqs[local])?;
                    apply_rope_partial(&mut q_new, self.rotary_dims, offset, self.rope)?;
                    let proj = projection_cost(n, hidden_rows.cols(), q_new.cols(), 1);
                    let out = method.forward_head(self.layer_index, head, &q_new, k_all, v_all)?;
                    let content = Matrix::from_fn(n, dc, |i, j| out.output.get(i, j));
                    Ok::<_, TensorError>((proj, out, content))
                })?;
            for (local, result) in head_outputs.into_iter().enumerate() {
                let head = g * self.gqa.group_size() + local;
                let (proj, out, content) = result?;
                cost.merge(&proj);
                cost.merge(&out.cost);
                for i in 0..n {
                    let upd = content_update.row_mut(i);
                    for (u, &c) in upd.iter_mut().zip(content.row(i)) {
                        *u += c;
                    }
                }
                head_reports.push(HeadReport {
                    layer: self.layer_index,
                    head,
                    archetype: self.archetypes[head],
                    density: out.density,
                    alpha_satisfied: out.alpha_satisfied,
                    fell_back: out.fell_back,
                    fallback_reason: out.fallback_reason,
                    cost: out.cost,
                });
                head_contents.push(content);
            }
        }

        let hidden = self.apply_residual_and_mlp(hidden_rows, &content_update, &mut cost)?;
        Ok(LayerForwardResult {
            hidden,
            head_contents,
            head_reports,
            cost,
        })
    }

    /// Residual update + pre-norm SwiGLU MLP on a block of rows.
    fn apply_residual_and_mlp(
        &self,
        hidden_rows: &Matrix,
        content_update: &Matrix,
        cost: &mut CostReport,
    ) -> Result<Matrix, TensorError> {
        let n = hidden_rows.rows();
        let mut new_hidden = hidden_rows.clone();
        let scale = self.residual_gain / self.num_heads() as f32;
        for i in 0..n {
            let row = new_hidden.row_mut(i);
            for (j, &u) in content_update.row(i).iter().enumerate() {
                row[j] += scale * u;
            }
        }
        let normed = self.pre_mlp_norm.forward(&new_hidden);
        let (mlp_out, mlp_cost) = self.mlp.forward(&normed)?;
        cost.merge(&mlp_cost);
        for i in 0..n {
            let row = new_hidden.row_mut(i);
            for (j, &m) in mlp_out.row(i).iter().enumerate() {
                row[j] += self.residual_gain * 0.1 * m;
            }
        }
        Ok(new_hidden)
    }

    /// Projects rows into one head's RoPE-applied query at an absolute
    /// position offset (used by decode-time score tracking).
    ///
    /// # Errors
    ///
    /// Returns tensor errors on shape problems.
    pub fn project_q(
        &self,
        hidden_rows: &Matrix,
        head: usize,
        position_offset: usize,
    ) -> Result<Matrix, TensorError> {
        let group = &self.groups[self.gqa.kv_head_for(head)];
        let wq = &group.wqs[head % self.gqa.group_size()];
        let mut q = matmul(hidden_rows, wq)?;
        apply_rope_partial(&mut q, self.rotary_dims, position_offset, self.rope)?;
        Ok(q)
    }

    /// The layer's GQA layout (KV head serving each query head).
    pub fn gqa(&self) -> &GqaLayout {
        &self.gqa
    }

    /// Runs the layer at prefill with `method` substituted for every
    /// head's attention (the paper's drop-in replacement setup).
    ///
    /// # Errors
    ///
    /// Propagates tensor/kernel errors from projections or the method.
    pub fn forward_prefill(
        &self,
        hidden: &Matrix,
        method: &dyn AttentionMethod,
    ) -> Result<LayerForwardResult, TensorError> {
        let s = hidden.rows();
        let dc = self.content_dim;
        let mut cost = CostReport::new();
        let mut head_contents = Vec::with_capacity(self.num_heads());
        let mut head_reports = Vec::with_capacity(self.num_heads());
        let mut content_update = Matrix::zeros(s, dc);

        for g in 0..self.groups.len() {
            let group = &self.groups[g];
            let mut k = matmul(hidden, &group.wk)?;
            let v = matmul(hidden, &group.wv)?;
            apply_rope_partial(&mut k, self.rotary_dims, 0, self.rope)?;
            cost.merge(&projection_cost(s, hidden.cols(), k.cols(), 2));

            // Per-head fan-out on the worker pool; serial in-order fold
            // (see forward_incremental) keeps results bit-identical.
            let head_outputs =
                pool::try_parallel_map("layer_heads", self.gqa.group_size(), 1, |local| {
                    let head = g * self.gqa.group_size() + local;
                    let _span = sa_trace::span_labeled("model", "head", || {
                        format!("L{}.H{head}", self.layer_index)
                    });
                    let mut q = matmul(hidden, &group.wqs[local])?;
                    apply_rope_partial(&mut q, self.rotary_dims, 0, self.rope)?;
                    let proj = projection_cost(s, hidden.cols(), q.cols(), 1);
                    let out = method.forward_head(self.layer_index, head, &q, &k, &v)?;
                    // Content lives in the first dc output dims.
                    let content = Matrix::from_fn(s, dc, |i, j| out.output.get(i, j));
                    Ok::<_, TensorError>((proj, out, content))
                })?;
            for (local, result) in head_outputs.into_iter().enumerate() {
                let head = g * self.gqa.group_size() + local;
                let (proj, out, content) = result?;
                cost.merge(&proj);
                cost.merge(&out.cost);
                for i in 0..s {
                    let upd = content_update.row_mut(i);
                    for (u, &c) in upd.iter_mut().zip(content.row(i)) {
                        *u += c;
                    }
                }
                head_reports.push(HeadReport {
                    layer: self.layer_index,
                    head,
                    archetype: self.archetypes[head],
                    density: out.density,
                    alpha_satisfied: out.alpha_satisfied,
                    fell_back: out.fell_back,
                    fallback_reason: out.fallback_reason,
                    cost: out.cost,
                });
                head_contents.push(content);
            }
        }

        // Residual update: attention writes (scaled) into the content
        // slot; the MLP perturbs the whole stream.
        let new_hidden = self.apply_residual_and_mlp(hidden, &content_update, &mut cost)?;
        Ok(LayerForwardResult {
            hidden: new_hidden,
            head_contents,
            head_reports,
            cost,
        })
    }
}

/// Cost of `n_mats` dense `(s x d_in) x (d_in x d_out)` projections.
fn projection_cost(s: usize, d_in: usize, d_out: usize, n_mats: u64) -> CostReport {
    let flops = n_mats * 2 * (s * d_in * d_out) as u64;
    let bytes_read = n_mats * 4 * (s * d_in + d_in * d_out) as u64;
    let bytes_written = n_mats * 4 * (s * d_out) as u64;
    let mut c = CostReport::launch(flops, bytes_read, bytes_written);
    c.kernel_launches = n_mats;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, TokenEmbedder, BOS_TOKEN};
    use sa_baselines::FullAttention;

    fn layer_and_hidden(seed: u64) -> (AttentionLayer, Matrix, ModelConfig) {
        let config = ModelConfig::tiny(seed);
        let embedder = TokenEmbedder::new(config);
        let tokens: Vec<u32> = std::iter::once(BOS_TOKEN)
            .chain((0..100).map(|i| (i % 30 + 2) as u32))
            .collect();
        let hidden = embedder.embed(&tokens);
        let mut rng = DeterministicRng::new(seed);
        let layer = AttentionLayer::generate(&config, 1, &mut rng).unwrap();
        (layer, hidden, config)
    }

    #[test]
    fn forward_shapes_and_reports() {
        let (layer, hidden, config) = layer_and_hidden(1);
        let result = layer.forward_prefill(&hidden, &FullAttention::new()).unwrap();
        assert_eq!(result.hidden.shape(), hidden.shape());
        assert_eq!(result.head_contents.len(), config.num_heads);
        assert_eq!(result.head_reports.len(), config.num_heads);
        for (h, report) in result.head_reports.iter().enumerate() {
            assert_eq!(report.head, h);
            assert_eq!(report.layer, 1);
            assert_eq!(report.density, 1.0);
        }
        assert_eq!(result.head_contents[0].shape(), (hidden.rows(), config.content_dim));
        assert!(result.cost.flops > 0);
    }

    #[test]
    fn residual_stream_changes_but_stays_close() {
        let (layer, hidden, _) = layer_and_hidden(2);
        let result = layer.forward_prefill(&hidden, &FullAttention::new()).unwrap();
        assert_ne!(result.hidden, hidden);
        let diff: f32 = result
            .hidden
            .as_slice()
            .iter()
            .zip(hidden.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / hidden.len() as f32;
        assert!(diff < 0.2, "mean residual perturbation {diff}");
    }

    #[test]
    fn deterministic_generation() {
        let (l1, hidden, _) = layer_and_hidden(3);
        let (l2, _, _) = layer_and_hidden(3);
        let a = l1.forward_prefill(&hidden, &FullAttention::new()).unwrap();
        let b = l2.forward_prefill(&hidden, &FullAttention::new()).unwrap();
        assert_eq!(a.hidden, b.hidden);
    }

    #[test]
    fn project_head_shapes() {
        let (layer, hidden, config) = layer_and_hidden(4);
        let (q, k, v) = layer.project_head(&hidden, 2).unwrap();
        assert_eq!(q.shape(), (hidden.rows(), config.head_dim));
        assert_eq!(k.shape(), q.shape());
        assert_eq!(v.shape(), q.shape());
    }

    #[test]
    fn heads_in_same_group_share_keys() {
        let (layer, hidden, _) = layer_and_hidden(5);
        // heads 0 and 1 share kv head 0 in tiny config (4 q heads, 2 kv).
        let (_, k0, v0) = layer.project_head(&hidden, 0).unwrap();
        let (_, k1, v1) = layer.project_head(&hidden, 1).unwrap();
        assert_eq!(k0, k1);
        assert_eq!(v0, v1);
        let (_, k2, _) = layer.project_head(&hidden, 2).unwrap();
        assert_ne!(k0, k2);
    }

    #[test]
    fn archetypes_follow_config() {
        let (layer, _, config) = layer_and_hidden(6);
        for h in 0..config.num_heads {
            let want = HeadArchetype::from_weights(config.archetype_weights(1, h));
            assert_eq!(layer.archetype(h), want);
        }
    }
}
