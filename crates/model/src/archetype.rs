//! Head archetypes and constructed Q/K/V projections.
//!
//! Each attention head mixes four score components, weighted per
//! (layer, head) by [`crate::ModelConfig::archetype_weights`]:
//!
//! - **local**: queries and keys share a projection of the AR(1)
//!   positional track → scores decay with distance (diagonal window);
//! - **sink**: queries carry a constant direction via the bias channel,
//!   keys carry it only where the BOS flag is set → a stripe on position 0;
//! - **retrieval**: queries project the *content* slot, keys project the
//!   *prev-content* slot through the same matrix → an induction circuit
//!   that scores position `j` highly when token `j-1` equals the query's
//!   token (content-aware stripes);
//! - **dispersed**: independent random projections → near-uniform scores.
//!
//! The head dimension is split in halves like ChatGLM's partial rotary:
//! the **first half is rotated** by RoPE (the local and dispersed
//! components live there, so rotation only sharpens locality), and the
//! **second half passes through unrotated** (the sink and retrieval
//! components live there, so content matching is position-independent —
//! the same trick trained models discover).
//!
//! Values always copy the content slot verbatim into the first
//! `content_dim` output dimensions, so attention outputs are decodable
//! mixtures of token embeddings.

use sa_tensor::{DeterministicRng, Matrix};

use crate::ModelConfig;

/// Base gains, calibrated so a fully matched component produces a logit
/// of `gain²` (≈ 12), comfortably above `ln(S)` for the sequence lengths
/// the experiments use — mirroring the sharply peaked scores of real
/// long-context heads.
const LOCAL_GAIN: f32 = 3.5;
const SINK_GAIN: f32 = 4.0;
// Retrieval and salience are balanced against each other: a true content
// match at a salient (payload) position scores RETRIEVAL² + SALIENCE²
// ≈ 18.5; the worst spurious content match (random embeddings can have
// cosine ~0.8) scores ≈ 0.8·RETRIEVAL² + SALIENCE² ≈ 16 when salient and
// ≈ 10 otherwise — a reliable margin. Meanwhile SALIENCE² ≈ 6 sits far
// above filler noise (±3), so *every* query row ranks salient columns
// first: the row-shared stripe mass that makes stage-1 sampling
// representative, as in real LLMs where rare tokens are attention
// magnets.
const RETRIEVAL_GAIN: f32 = 3.0;
const SALIENCE_GAIN: f32 = 3.0;
// Extra attractor on induction-target positions (prev token salient):
// true fact payloads out-rank lone decoy tokens by e^(2²) ≈ 55× in the
// accumulated column scores, so the α-cut never amputates a fact.
const PREV_SALIENCE_GAIN: f32 = 2.0;
const DISPERSED_GAIN: f32 = 1.0;

/// The mixing weights of one head's archetype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadArchetype {
    /// Weight of the local-window component.
    pub local: f32,
    /// Weight of the BOS-sink component.
    pub sink: f32,
    /// Weight of the content-retrieval (induction) component.
    pub retrieval: f32,
    /// Weight of the dispersed (low-sparsity) component.
    pub dispersed: f32,
}

sa_json::impl_json_struct!(HeadArchetype {
    local,
    sink,
    retrieval,
    dispersed
});

impl HeadArchetype {
    /// Builds from a `(local, sink, retrieval, dispersed)` tuple.
    pub fn from_weights(w: (f32, f32, f32, f32)) -> Self {
        HeadArchetype {
            local: w.0,
            sink: w.1,
            retrieval: w.2,
            dispersed: w.3,
        }
    }

    /// A pure local-window head.
    pub fn local() -> Self {
        Self::from_weights((1.0, 0.0, 0.0, 0.05))
    }

    /// A pure sink head.
    pub fn sink() -> Self {
        Self::from_weights((0.1, 1.0, 0.0, 0.05))
    }

    /// A pure retrieval head.
    pub fn retrieval() -> Self {
        Self::from_weights((0.1, 0.1, 1.0, 0.05))
    }

    /// A dispersed, low-sparsity head.
    pub fn dispersed() -> Self {
        Self::from_weights((0.05, 0.05, 0.0, 1.0))
    }

    /// Name of the dominant component (for reports and Figure 2(d)
    /// labelling).
    pub fn dominant(&self) -> &'static str {
        let pairs = [
            ("local", self.local),
            ("sink", self.sink),
            ("retrieval", self.retrieval),
            ("dispersed", self.dispersed),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|&(n, _)| n)
            .unwrap_or("dispersed")
    }
}

/// Constructed Q/K/V projection matrices for one head
/// (`hidden_dim x head_dim` each).
#[derive(Debug, Clone)]
pub struct HeadProjections {
    /// Query projection.
    pub wq: Matrix,
    /// Key projection.
    pub wk: Matrix,
    /// Value projection (content-copying).
    pub wv: Matrix,
}

/// Projections for one GQA group: several query heads sharing one K/V
/// head. The shared K carries every score component any query head in the
/// group uses (weighted by the group maximum), and each query projection
/// selects its own archetype mix — so group members see the same keys but
/// express different patterns, as GQA models do.
#[derive(Debug, Clone)]
pub struct GroupProjections {
    /// One query projection per head in the group.
    pub wqs: Vec<Matrix>,
    /// The shared key projection.
    pub wk: Matrix,
    /// The shared (content-copying) value projection.
    pub wv: Matrix,
}

impl GroupProjections {
    /// Generates group projections for the given per-query-head
    /// archetypes.
    ///
    /// # Panics
    ///
    /// Panics if `archetypes` is empty or `config.head_dim / 2` cannot
    /// hold the content or positional subspaces.
    pub fn generate(
        config: &ModelConfig,
        archetypes: &[HeadArchetype],
        rng: &mut DeterministicRng,
    ) -> Self {
        assert!(!archetypes.is_empty(), "group must have at least one head");
        let dc = config.content_dim;
        let dp = config.pos_dim;
        let dh = config.head_dim;
        let half = dh / 2;
        let hidden = config.hidden_dim();
        assert!(
            half >= dc && half >= dp,
            "head_dim/2 must hold the content and positional subspaces"
        );
        let bos_ch = 3 * dc + dp;
        let bias_ch = 3 * dc + dp + 1;
        let salience_ch = 3 * dc + dp + 2;
        let prev_sal_ch = 3 * dc + dp + 3;

        // Shared component projections for the whole group: orthonormal
        // rows preserve dot products exactly (a Gaussian projection at
        // these widths has Johnson–Lindenstrauss distortion of the same
        // order as the logit gaps, which destroys the match margins).
        // r_pos divides by sqrt(dp) so the matched local score is
        // g² · decay^Δ (the AR(1) track has stationary norm² = dp).
        let mut r_pos = sa_tensor::random_orthonormal_rows(rng, dp, half);
        r_pos.scale_in_place(1.0 / (dp as f32).sqrt());
        let r_content = sa_tensor::random_orthonormal_rows(rng, dc, half);
        let sink_dir = sa_tensor::unit_vector(rng, half);
        let salience_dir = sa_tensor::unit_vector(rng, half);
        let prev_sal_dir = sa_tensor::unit_vector(rng, half);
        let wk_disp = rng.normal_matrix(hidden, dh, 1.0 / (hidden as f32).sqrt());
        let side = (dh as f32).powf(0.25);

        let add_block =
            |w: &mut Matrix, rows: std::ops::Range<usize>, col0: usize, m: &Matrix, g: f32| {
                for (mi, i) in rows.enumerate() {
                    for j in 0..m.cols() {
                        let cur = w.get(i, col0 + j);
                        w.set(i, col0 + j, cur + g * m.get(mi, j));
                    }
                }
            };

        // Key weights: the group maximum per component, so every query
        // head's pattern is expressible against the shared keys. A query
        // head's effective matched logit is then q_weight * k_weight *
        // gain².
        let maxw = |f: fn(&HeadArchetype) -> f32| {
            archetypes.iter().map(f).fold(0.0f32, f32::max)
        };
        let (lk, sk, rk) = (
            maxw(|a| a.local),
            maxw(|a| a.sink),
            maxw(|a| a.retrieval),
        );
        // Dispersion is a *query-side* property: a dispersed head sharing
        // this group's K must not inject noise into its siblings' keys
        // (in a trained GQA model the shared K stays clean; flat patterns
        // come from the query projection). K keeps only a small noise
        // floor.
        let dk = 0.1f32;

        let mut wk = Matrix::zeros(hidden, dh);
        add_block(&mut wk, 3 * dc..3 * dc + dp, 0, &r_pos, lk * LOCAL_GAIN * side);
        add_block(&mut wk, dc..2 * dc, half, &r_content, rk * RETRIEVAL_GAIN * side);
        for j in 0..half {
            let cur = wk.get(bos_ch, half + j);
            wk.set(bos_ch, half + j, cur + sk * SINK_GAIN * side * sink_dir[j]);
            let cur_s = wk.get(salience_ch, half + j);
            wk.set(
                salience_ch,
                half + j,
                cur_s + rk * SALIENCE_GAIN * side * salience_dir[j],
            );
            let cur_p = wk.get(prev_sal_ch, half + j);
            wk.set(
                prev_sal_ch,
                half + j,
                cur_p + rk * PREV_SALIENCE_GAIN * side * prev_sal_dir[j],
            );
        }
        let gdk = dk * DISPERSED_GAIN * side;
        for i in 0..hidden {
            for j in 0..dh {
                let cur = wk.get(i, j);
                wk.set(i, j, cur + gdk * wk_disp.get(i, j));
            }
        }

        // Query projections per head.
        let wqs = archetypes
            .iter()
            .map(|a| {
                let mut wq = Matrix::zeros(hidden, dh);
                add_block(&mut wq, 3 * dc..3 * dc + dp, 0, &r_pos, a.local * LOCAL_GAIN * side);
                // Queries read the *salient-content* slot: only
                // distinctive tokens retrieve.
                add_block(&mut wq, 2 * dc..3 * dc, half, &r_content, a.retrieval * RETRIEVAL_GAIN * side);
                for j in 0..half {
                    let cur = wq.get(bias_ch, half + j);
                    wq.set(bias_ch, half + j, cur + a.sink * SINK_GAIN * side * sink_dir[j]);
                    let cur_s = wq.get(bias_ch, half + j);
                    wq.set(
                        bias_ch,
                        half + j,
                        cur_s + a.retrieval * SALIENCE_GAIN * side * salience_dir[j],
                    );
                    let cur_p = wq.get(bias_ch, half + j);
                    wq.set(
                        bias_ch,
                        half + j,
                        cur_p + a.retrieval * PREV_SALIENCE_GAIN * side * prev_sal_dir[j],
                    );
                }
                let wq_disp = rng.normal_matrix(hidden, dh, 1.0 / (hidden as f32).sqrt());
                let gd = a.dispersed * DISPERSED_GAIN * side;
                for i in 0..hidden {
                    for j in 0..dh {
                        let cur = wq.get(i, j);
                        wq.set(i, j, cur + gd * wq_disp.get(i, j));
                    }
                }
                wq
            })
            .collect();

        // Values copy content verbatim into the first dc output dims.
        let mut wv = Matrix::zeros(hidden, dh);
        for i in 0..dc {
            wv.set(i, i, 1.0);
        }

        GroupProjections { wqs, wk, wv }
    }
}

impl HeadProjections {
    /// Generates the projections for `archetype` under `config`, drawing
    /// all randomness from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `config.head_dim / 2` cannot hold the content or
    /// positional subspaces (validated configs cannot trigger this).
    pub fn generate(
        config: &ModelConfig,
        archetype: HeadArchetype,
        rng: &mut DeterministicRng,
    ) -> Self {
        let group = GroupProjections::generate(config, std::slice::from_ref(&archetype), rng);
        HeadProjections {
            wq: group.wqs.into_iter().next().expect("one head"),
            wk: group.wk,
            wv: group.wv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, TokenEmbedder, BOS_TOKEN};
    use sa_kernels::attention_probs;
    use sa_tensor::matmul;

    fn setup(arch: HeadArchetype, seed: u64) -> (Matrix, Matrix, TokenEmbedder, Vec<u32>) {
        let config = ModelConfig::tiny(seed);
        let embedder = TokenEmbedder::new(config);
        let layout = *embedder.layout();
        // tokens: BOS, cycling filler, a marker/payload pair mid-way,
        // then the marker again at the end (the "question").
        let mut tokens: Vec<u32> = vec![BOS_TOKEN];
        for i in 0..200 {
            tokens.push(layout.filler(i));
        }
        tokens[80] = layout.marker(5);
        tokens[81] = layout.payload(5);
        tokens.push(layout.marker(5)); // question repeats the marker
        let hidden = embedder.embed(&tokens);
        let mut rng = sa_tensor::DeterministicRng::new(seed ^ 77);
        let proj = HeadProjections::generate(&config, arch, &mut rng);
        let q = matmul(&hidden, &proj.wq).unwrap();
        let k = matmul(&hidden, &proj.wk).unwrap();
        (q, k, embedder, tokens)
    }

    #[test]
    fn dominant_labels() {
        assert_eq!(HeadArchetype::local().dominant(), "local");
        assert_eq!(HeadArchetype::sink().dominant(), "sink");
        assert_eq!(HeadArchetype::retrieval().dominant(), "retrieval");
        assert_eq!(HeadArchetype::dispersed().dominant(), "dispersed");
    }

    #[test]
    fn local_head_mass_is_near_diagonal() {
        let (q, k, _, tokens) = setup(HeadArchetype::local(), 1);
        let p = attention_probs(&q, &k, true).unwrap();
        let s = tokens.len();
        // Mass within 40 tokens of the diagonal for a late row.
        let i = s - 5;
        let near: f32 = p.row(i)[i.saturating_sub(40)..=i].iter().sum();
        assert!(near > 0.8, "near-diagonal mass {near}");
    }

    #[test]
    fn sink_head_mass_on_bos() {
        let (q, k, _, tokens) = setup(HeadArchetype::sink(), 2);
        let p = attention_probs(&q, &k, true).unwrap();
        let s = tokens.len();
        let bos_mass = p.get(s - 1, 0);
        assert!(bos_mass > 0.7, "BOS mass {bos_mass}");
    }

    #[test]
    fn retrieval_head_finds_payload_position() {
        let (q, k, _, tokens) = setup(HeadArchetype::retrieval(), 3);
        let p = attention_probs(&q, &k, true).unwrap();
        let s = tokens.len();
        // The question (last row, token 99) should attend to position 81
        // (whose prev-token record is 99) — the induction stripe.
        let stripe = p.get(s - 1, 81);
        assert!(stripe > 0.5, "stripe mass {stripe}");
    }

    #[test]
    fn retrieval_stripe_moves_with_content() {
        // Plant the marker elsewhere: the stripe must follow (content-aware).
        let config = ModelConfig::tiny(4);
        let embedder = TokenEmbedder::new(config);
        let mut rng = sa_tensor::DeterministicRng::new(4 ^ 77);
        let proj = HeadProjections::generate(&config, HeadArchetype::retrieval(), &mut rng);
        let layout = *embedder.layout();
        for marker_pos in [40usize, 150] {
            let mut tokens: Vec<u32> = vec![BOS_TOKEN];
            for i in 0..200 {
                tokens.push(layout.filler(i));
            }
            tokens[marker_pos] = layout.marker(5);
            tokens[marker_pos + 1] = layout.payload(5);
            tokens.push(layout.marker(5));
            let hidden = embedder.embed(&tokens);
            let q = matmul(&hidden, &proj.wq).unwrap();
            let k = matmul(&hidden, &proj.wk).unwrap();
            let p = attention_probs(&q, &k, true).unwrap();
            let stripe = p.get(tokens.len() - 1, marker_pos + 1);
            assert!(stripe > 0.5, "marker at {marker_pos}: stripe {stripe}");
        }
    }

    #[test]
    fn dispersed_head_is_flat() {
        let (q, k, _, tokens) = setup(HeadArchetype::dispersed(), 5);
        let p = attention_probs(&q, &k, true).unwrap();
        let s = tokens.len();
        let max_entry = p.row(s - 1).iter().copied().fold(0.0f32, f32::max);
        // Uniform would be 1/s ≈ 0.005; allow an order of magnitude.
        assert!(max_entry < 0.1, "max entry {max_entry}");
    }

    #[test]
    fn retrieval_survives_partial_rope() {
        // Rotating the first half must not perturb the unrotated content
        // match.
        let config = ModelConfig::tiny(8);
        let embedder = TokenEmbedder::new(config);
        let mut rng = sa_tensor::DeterministicRng::new(8 ^ 77);
        let proj = HeadProjections::generate(&config, HeadArchetype::retrieval(), &mut rng);
        let layout = *embedder.layout();
        let mut tokens: Vec<u32> = vec![BOS_TOKEN];
        for i in 0..300 {
            tokens.push(layout.filler(i));
        }
        tokens[60] = layout.marker(5);
        tokens[61] = layout.payload(5);
        tokens.push(layout.marker(5));
        let hidden = embedder.embed(&tokens);
        let mut q = matmul(&hidden, &proj.wq).unwrap();
        let mut k = matmul(&hidden, &proj.wk).unwrap();
        let half = config.head_dim / 2;
        sa_kernels::rope::apply_rope_partial(&mut q, half, 0, config.preset.rope()).unwrap();
        sa_kernels::rope::apply_rope_partial(&mut k, half, 0, config.preset.rope()).unwrap();
        let p = attention_probs(&q, &k, true).unwrap();
        let stripe = p.get(tokens.len() - 1, 61);
        assert!(stripe > 0.5, "stripe after RoPE {stripe}");
    }

    #[test]
    fn values_copy_content() {
        let config = ModelConfig::tiny(6);
        let embedder = TokenEmbedder::new(config);
        let tokens = vec![BOS_TOKEN, 5, 9];
        let hidden = embedder.embed(&tokens);
        let mut rng = sa_tensor::DeterministicRng::new(6);
        let proj = HeadProjections::generate(&config, HeadArchetype::local(), &mut rng);
        let v = matmul(&hidden, &proj.wv).unwrap();
        let dc = config.content_dim;
        assert_eq!(&v.row(1)[..dc], embedder.content(5));
        assert!(v.row(1)[dc..].iter().all(|&x| x == 0.0));
    }
}
