//! Per-layer key/value caches for incremental (chunked prefill and
//! decode) execution.
//!
//! The paper replaces attention only at the prefill stage and keeps "an
//! uncompressed KV cache in the decode phase" (§5.1); its serving stack
//! additionally chunks prefill along the sequence (Appendix A.6). Both
//! modes need the same machinery: per-(layer, kv-head) K/V matrices that
//! grow as rows arrive.

use sa_tensor::{Matrix, TensorError};

/// The K/V cache of one layer: one `(K, V)` pair per KV head.
#[derive(Debug, Clone)]
pub struct LayerKvCache {
    entries: Vec<(Matrix, Matrix)>,
    head_dim: usize,
    /// Absolute positions appended so far (monotone; unaffected by
    /// eviction, so RoPE offsets stay correct).
    seen: usize,
}

impl LayerKvCache {
    /// An empty cache for `num_kv_heads` heads of dimension `head_dim`.
    pub fn new(num_kv_heads: usize, head_dim: usize) -> Self {
        LayerKvCache {
            entries: (0..num_kv_heads)
                .map(|_| (Matrix::zeros(0, head_dim), Matrix::zeros(0, head_dim)))
                .collect(),
            head_dim,
            seen: 0,
        }
    }

    /// Total positions ever appended (the next row's absolute position).
    /// Unlike [`len`](Self::len), eviction does not reduce this.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Number of currently cached entries in head 0 (heads may diverge
    /// after per-head eviction; see [`head_len`](Self::head_len)).
    pub fn len(&self) -> usize {
        self.entries.first().map_or(0, |(k, _)| k.rows())
    }

    /// Number of currently cached entries in a specific head.
    ///
    /// # Panics
    ///
    /// Panics if `kv_head` is out of range.
    pub fn head_len(&self, kv_head: usize) -> usize {
        self.entries[kv_head].0.rows()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of KV heads.
    pub fn num_kv_heads(&self) -> usize {
        self.entries.len()
    }

    /// The cached `(K, V)` of a KV head.
    ///
    /// # Panics
    ///
    /// Panics if `kv_head` is out of range.
    pub fn head(&self, kv_head: usize) -> (&Matrix, &Matrix) {
        let (k, v) = &self.entries[kv_head];
        (k, v)
    }

    /// Rebuilds a cache from checkpointed parts (see
    /// `checkpoint::SessionCheckpoint`). The caller is responsible for
    /// shape consistency; `seen` is restored verbatim so RoPE offsets
    /// survive the round trip even after eviction shrank the heads.
    pub(crate) fn from_parts(entries: Vec<(Matrix, Matrix)>, head_dim: usize, seen: usize) -> Self {
        LayerKvCache {
            entries,
            head_dim,
            seen,
        }
    }

    /// The cache's per-head row width (for checkpoint capture).
    pub(crate) fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Replaces a head's cached `(K, V)` wholesale (used by eviction).
    ///
    /// # Panics
    ///
    /// Panics if `kv_head` is out of range or the widths disagree with
    /// the cache's head dimension.
    pub(crate) fn replace(&mut self, kv_head: usize, k: Matrix, v: Matrix) {
        assert_eq!(k.cols(), self.head_dim, "replace width mismatch");
        assert_eq!(v.cols(), self.head_dim, "replace width mismatch");
        assert_eq!(k.rows(), v.rows(), "replace row mismatch");
        self.entries[kv_head] = (k, v);
    }

    /// Appends new rows for a KV head.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the row widths disagree
    /// with the cache's head dimension or `k`/`v` row counts differ.
    pub fn append(&mut self, kv_head: usize, k_new: &Matrix, v_new: &Matrix) -> Result<(), TensorError> {
        if k_new.cols() != self.head_dim || v_new.cols() != self.head_dim {
            return Err(TensorError::ShapeMismatch {
                op: "LayerKvCache::append",
                lhs: k_new.shape(),
                rhs: (self.head_dim, self.head_dim),
            });
        }
        if k_new.rows() != v_new.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "LayerKvCache::append(k,v)",
                lhs: k_new.shape(),
                rhs: v_new.shape(),
            });
        }
        let head_dim = self.head_dim;
        let grow = |dst: &mut Matrix, src: &Matrix| {
            let old_rows = dst.rows();
            let mut data = std::mem::take(dst).into_vec();
            data.extend_from_slice(src.as_slice());
            *dst = Matrix::from_vec(old_rows + src.rows(), head_dim, data)
                .expect("dimensions consistent by construction");
        };
        if kv_head == 0 {
            self.seen += k_new.rows();
        }
        let (k, v) = &mut self.entries[kv_head];
        grow(k, k_new);
        grow(v, v_new);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_grows_rows() {
        let mut c = LayerKvCache::new(2, 4);
        assert!(c.is_empty());
        let k = Matrix::from_fn(3, 4, |i, j| (i + j) as f32);
        let v = Matrix::from_fn(3, 4, |i, j| (i * j) as f32);
        c.append(0, &k, &v).unwrap();
        c.append(1, &k, &v).unwrap();
        assert_eq!(c.len(), 3);
        let (ck, cv) = c.head(0);
        assert_eq!(ck.shape(), (3, 4));
        assert_eq!(cv.get(2, 3), 6.0);
        c.append(0, &k, &v).unwrap();
        let (ck, _) = c.head(0);
        assert_eq!(ck.rows(), 6);
        assert_eq!(ck.get(4, 1), k.get(1, 1));
    }

    #[test]
    fn append_validates_shapes() {
        let mut c = LayerKvCache::new(1, 4);
        let bad = Matrix::zeros(2, 5);
        let ok = Matrix::zeros(2, 4);
        assert!(c.append(0, &bad, &ok).is_err());
        let mismatched = Matrix::zeros(3, 4);
        assert!(c.append(0, &ok, &mismatched).is_err());
    }
}
