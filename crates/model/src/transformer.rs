//! The synthetic decoder-only transformer.

use sa_baselines::AttentionMethod;
use sa_kernels::CostReport;
use sa_tensor::{DeterministicRng, Matrix, TensorError};

use crate::{AttentionLayer, ModelConfig, Readout, TokenEmbedder};

pub use crate::layer::HeadReport;

/// Result of a prefill pass.
#[derive(Debug, Clone)]
pub struct PrefillResult {
    /// Final residual stream `(S, hidden_dim)`.
    pub hidden: Matrix,
    /// The residual stream *entering* each layer (index = layer); used by
    /// the sparsity analyses to recompute per-head scores.
    pub layer_inputs: Vec<Matrix>,
    /// Content-space output of every head, layer-major
    /// (`layer * num_heads + head`).
    pub head_contents: Vec<Matrix>,
    /// Flattened per-head diagnostics, aligned with `head_contents`.
    pub head_reports: Vec<HeadReport>,
    /// Total prefill cost (embedding excluded; projections, attention,
    /// MLPs included).
    pub total_cost: CostReport,
}

impl PrefillResult {
    /// Mean attention density across all heads (1.0 = dense).
    pub fn mean_density(&self) -> f64 {
        if self.head_reports.is_empty() {
            return 1.0;
        }
        self.head_reports.iter().map(|r| r.density).sum::<f64>() / self.head_reports.len() as f64
    }

    /// Number of heads (across all layers) whose stage-2 selection fell
    /// short of the configured α coverage.
    pub fn heads_alpha_unsatisfied(&self) -> usize {
        self.head_reports.iter().filter(|r| !r.alpha_satisfied).count()
    }

    /// Number of heads (across all layers) that transparently degraded to
    /// the dense fallback.
    pub fn fallback_heads(&self) -> usize {
        self.head_reports.iter().filter(|r| r.fell_back).count()
    }

    /// Dense-fallback tally by reason across all heads and layers, in
    /// [`FallbackReason::DEGRADATIONS`] order, zero-count reasons
    /// omitted. Empty on a healthy prefill.
    ///
    /// [`FallbackReason::DEGRADATIONS`]: sa_core::FallbackReason::DEGRADATIONS
    pub fn fallback_tally(&self) -> Vec<(sa_core::FallbackReason, usize)> {
        sa_core::FallbackReason::DEGRADATIONS
            .iter()
            .filter_map(|&reason| {
                let n = self
                    .head_reports
                    .iter()
                    .filter(|r| r.fallback_reason == reason)
                    .count();
                (n > 0).then_some((reason, n))
            })
            .collect()
    }
}

/// A constructed decoder-only transformer with archetype-designed heads.
///
/// # Example
///
/// ```
/// use sa_model::{ModelConfig, SyntheticTransformer};
/// use sa_baselines::FullAttention;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = SyntheticTransformer::new(ModelConfig::tiny(7))?;
/// let tokens = model.tokenize_filler(64);
/// let result = model.prefill(&tokens, &FullAttention::new())?;
/// assert_eq!(result.hidden.rows(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SyntheticTransformer {
    config: ModelConfig,
    embedder: TokenEmbedder,
    layers: Vec<AttentionLayer>,
}

impl SyntheticTransformer {
    /// Builds the model deterministically from its config seed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if the config is invalid.
    pub fn new(config: ModelConfig) -> Result<Self, TensorError> {
        config.validate()?;
        let embedder = TokenEmbedder::new(config);
        let mut rng = DeterministicRng::new(config.seed ^ LAYER_SEED_SALT);
        let layers = (0..config.num_layers)
            .map(|l| AttentionLayer::generate(&config, l, &mut rng))
            .collect::<Result<_, _>>()?;
        Ok(SyntheticTransformer {
            config,
            embedder,
            layers,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The token embedder (vocabulary access for workloads).
    pub fn embedder(&self) -> &TokenEmbedder {
        &self.embedder
    }

    /// The model's layers.
    pub fn layers(&self) -> &[AttentionLayer] {
        &self.layers
    }

    /// A BOS-prefixed filler sequence of length `len` (cycling through a
    /// band of "common word" tokens) — handy for tests and examples.
    pub fn tokenize_filler(&self, len: usize) -> Vec<u32> {
        let vocab = self.config.vocab_size as u32;
        std::iter::once(crate::BOS_TOKEN)
            .chain((0..len.saturating_sub(1)).map(|i| (i as u32 % 48) + vocab / 2))
            .collect()
    }

    /// Runs prefill with `method` substituted into every attention head.
    ///
    /// # Errors
    ///
    /// Propagates tensor/kernel errors (e.g. token ids outside the
    /// vocabulary panic in the embedder; genuine shape errors surface
    /// here).
    pub fn prefill(
        &self,
        tokens: &[u32],
        method: &dyn AttentionMethod,
    ) -> Result<PrefillResult, TensorError> {
        let _span = sa_trace::span_in("model", "prefill");
        let mut hidden = self.embedder.embed(tokens);
        let mut layer_inputs = Vec::with_capacity(self.layers.len());
        let mut head_contents = Vec::new();
        let mut head_reports = Vec::new();
        let mut total_cost = CostReport::new();
        for layer in &self.layers {
            let _layer_span = sa_trace::span_labeled("model", "layer", || {
                format!("L{}", layer.layer_index())
            });
            layer_inputs.push(hidden.clone());
            let out = layer.forward_prefill(&hidden, method)?;
            hidden = out.hidden;
            head_contents.extend(out.head_contents);
            head_reports.extend(out.head_reports);
            total_cost.merge(&out.cost);
        }
        Ok(PrefillResult {
            hidden,
            layer_inputs,
            head_contents,
            head_reports,
            total_cost,
        })
    }

    /// Decodes the model's answer at sequence position `pos`: the nearest
    /// vocabulary token to the retrieval heads' mean content output.
    ///
    /// Returns `(token, confidence)` where confidence is the cosine
    /// similarity to the winning embedding. Returns BOS with zero
    /// confidence if the model has no retrieval heads.
    pub fn answer_at(&self, result: &PrefillResult, pos: usize) -> (u32, f32) {
        let readout = Readout::from_reports(&result.head_reports);
        match readout.answer_vector(&result.head_contents, pos) {
            Some(v) => self.embedder.nearest_token(&v),
            None => (crate::BOS_TOKEN, 0.0),
        }
    }

    /// Like [`answer_at`](Self::answer_at) but with the candidate set
    /// restricted to a token-id range (constrained decoding: benchmark
    /// scorers only accept answers from the valid-answer band).
    pub fn answer_at_in(
        &self,
        result: &PrefillResult,
        pos: usize,
        range: std::ops::Range<u32>,
    ) -> (u32, f32) {
        let readout = Readout::from_reports(&result.head_reports);
        match readout.answer_vector(&result.head_contents, pos) {
            Some(v) => self.embedder.nearest_token_in(&v, range),
            None => (crate::BOS_TOKEN, 0.0),
        }
    }

    /// Convenience: the answer at the final position (where tasks place
    /// the question).
    pub fn final_answer(&self, result: &PrefillResult) -> (u32, f32) {
        self.answer_at(result, result.hidden.rows() - 1)
    }
}

/// Seed salt separating layer-weight randomness from the embedder's.
const LAYER_SEED_SALT: u64 = 0x1a7e_55ed;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BOS_TOKEN;
    use sa_baselines::{FullAttention, SampleAttentionMethod, StreamingLlm};

    /// A NIAH-style prompt: filler with one marker/payload pair planted at
    /// `depth`, question (the marker) at the end.
    fn needle_prompt(model: &SyntheticTransformer, len: usize, depth: usize) -> (Vec<u32>, u32) {
        let layout = *model.embedder().layout();
        let marker = layout.marker(3);
        let payload = layout.payload(7);
        let mut tokens = model.tokenize_filler(len);
        tokens[depth] = marker;
        tokens[depth + 1] = payload;
        let last = tokens.len() - 1;
        tokens[last] = marker;
        (tokens, payload)
    }

    #[test]
    fn full_attention_recovers_needle() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(11)).unwrap();
        let (tokens, payload) = needle_prompt(&model, 300, 120);
        let result = model.prefill(&tokens, &FullAttention::new()).unwrap();
        let (answer, confidence) = model.final_answer(&result);
        assert_eq!(answer, payload, "confidence {confidence}");
        assert!(confidence > 0.5);
    }

    #[test]
    fn needle_recovered_at_multiple_depths() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(12)).unwrap();
        for depth in [10, 80, 200, 270] {
            let (tokens, payload) = needle_prompt(&model, 300, depth);
            let result = model.prefill(&tokens, &FullAttention::new()).unwrap();
            let (answer, _) = model.final_answer(&result);
            assert_eq!(answer, payload, "depth {depth}");
        }
    }

    #[test]
    fn sample_attention_preserves_needle() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(13)).unwrap();
        let (tokens, payload) = needle_prompt(&model, 300, 100);
        let method = SampleAttentionMethod::paper_default();
        let result = model.prefill(&tokens, &method).unwrap();
        let (answer, _) = model.final_answer(&result);
        assert_eq!(answer, payload);
        assert!(result.mean_density() < 0.9, "density {}", result.mean_density());
    }

    #[test]
    fn streaming_llm_drops_mid_context_needle() {
        // The paper's headline failure: sink+window misses the needle.
        let model = SyntheticTransformer::new(ModelConfig::tiny(14)).unwrap();
        let (tokens, payload) = needle_prompt(&model, 400, 150);
        let method = StreamingLlm::paper_config();
        let result = model.prefill(&tokens, &method).unwrap();
        let (answer, _) = model.final_answer(&result);
        assert_ne!(answer, payload, "StreamingLLM should miss a mid-context needle");
    }

    #[test]
    fn prefill_structures_align() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(15)).unwrap();
        let tokens = model.tokenize_filler(50);
        let r = model.prefill(&tokens, &FullAttention::new()).unwrap();
        let expect_heads = model.config().num_layers * model.config().num_heads;
        assert_eq!(r.head_contents.len(), expect_heads);
        assert_eq!(r.head_reports.len(), expect_heads);
        assert_eq!(r.layer_inputs.len(), model.config().num_layers);
        assert_eq!(r.mean_density(), 1.0);
        assert!(r.total_cost.flops > 0);
    }

    #[test]
    fn healthy_prefill_reports_no_fallbacks() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(18)).unwrap();
        let tokens = model.tokenize_filler(80);
        let full = model.prefill(&tokens, &FullAttention::new()).unwrap();
        assert_eq!(full.fallback_heads(), 0);
        assert_eq!(full.heads_alpha_unsatisfied(), 0);
        let sample = model
            .prefill(&tokens, &SampleAttentionMethod::paper_default())
            .unwrap();
        assert_eq!(sample.fallback_heads(), 0);
        // Uncapped paper default reaches α on every head.
        assert_eq!(sample.heads_alpha_unsatisfied(), 0);
    }

    #[test]
    fn capped_alpha_shortfall_visible_per_head_at_top_level() {
        // A tight max_kv_ratio cap plus a tiny window forces stage-2
        // under-coverage; each affected head must be observable from the
        // transformer-level aggregate, not just the last one.
        let model = SyntheticTransformer::new(ModelConfig::tiny(19)).unwrap();
        let tokens = model.tokenize_filler(200);
        let cfg = sa_core::SampleAttentionConfig::builder()
            .cra_threshold(0.99)
            .max_kv_ratio(0.02)
            .window_ratio(0.01)
            .bottom_area_rows(0)
            .build()
            .unwrap();
        let result = model
            .prefill(&tokens, &SampleAttentionMethod::new(cfg))
            .unwrap();
        let unsatisfied = result.heads_alpha_unsatisfied();
        assert!(unsatisfied > 1, "expected several capped heads, got {unsatisfied}");
        assert_eq!(
            unsatisfied,
            result.head_reports.iter().filter(|r| !r.alpha_satisfied).count()
        );
        // The cap degrades coverage but is not a health fault by default.
        assert_eq!(result.fallback_heads(), 0);
    }

    #[test]
    fn fallback_tally_aggregates_reasons_across_heads() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(20)).unwrap();
        let tokens = model.tokenize_filler(80);
        let healthy = model
            .prefill(&tokens, &SampleAttentionMethod::paper_default())
            .unwrap();
        assert!(healthy.fallback_tally().is_empty(), "healthy prefill tallies nothing");
        // Force every head down the dense path with an injected kernel
        // panic; the tally must account for all of them.
        let plan = sa_tensor::fault::FaultPlan::new(3).worker_panic("sparse_flash_attention");
        let guard = sa_tensor::fault::install(plan);
        let degraded = model
            .prefill(&tokens, &SampleAttentionMethod::paper_default())
            .unwrap();
        drop(guard);
        let tally = degraded.fallback_tally();
        assert_eq!(tally.len(), 1, "single reason expected: {tally:?}");
        assert_eq!(tally[0].0, sa_core::FallbackReason::WorkerPanic);
        assert_eq!(tally[0].1, degraded.fallback_heads());
        assert!(tally[0].1 > 0);
    }

    #[test]
    fn traced_prefill_emits_model_span_hierarchy() {
        let _session = sa_trace::scoped();
        let model = SyntheticTransformer::new(ModelConfig::tiny(21)).unwrap();
        let tokens = model.tokenize_filler(64);
        model
            .prefill(&tokens, &SampleAttentionMethod::paper_default())
            .unwrap();
        let events = sa_trace::drain();
        let count = |name: &str| {
            events
                .iter()
                .filter(|e| e.cat == "model" && e.name == name)
                .count()
        };
        assert_eq!(count("prefill"), 1);
        assert_eq!(count("layer"), model.config().num_layers);
        assert_eq!(
            count("head"),
            model.config().num_layers * model.config().num_heads
        );
        // Head spans carry their layer/head label.
        assert!(events
            .iter()
            .any(|e| e.name == "head" && e.label.as_deref() == Some("L0.H0")));
        // The stage spans from sa-core nest under the model spans.
        assert!(events
            .iter()
            .any(|e| e.cat == "core" && e.name == "stage1_sampling"));
    }

    #[test]
    fn model_construction_is_deterministic() {
        let m1 = SyntheticTransformer::new(ModelConfig::tiny(16)).unwrap();
        let m2 = SyntheticTransformer::new(ModelConfig::tiny(16)).unwrap();
        let tokens = m1.tokenize_filler(40);
        let a = m1.prefill(&tokens, &FullAttention::new()).unwrap();
        let b = m2.prefill(&tokens, &FullAttention::new()).unwrap();
        assert_eq!(a.hidden, b.hidden);
    }

    #[test]
    fn tokenize_filler_starts_with_bos() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(17)).unwrap();
        let t = model.tokenize_filler(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t[0], BOS_TOKEN);
        assert!(t[1..].iter().all(|&x| (x as usize) < model.config().vocab_size));
    }
}
