//! # sa-model
//!
//! Synthetic decoder-only transformer substrate.
//!
//! The paper evaluates SampleAttention inside ChatGLM2-6B and InternLM2-7B.
//! Neither model's weights (nor a GPU to run them) is available here, so
//! this crate builds the closest synthetic equivalent: a from-scratch
//! transformer whose attention heads are *constructed* — not trained — to
//! exhibit the head archetypes the paper documents (Figure 2, Appendix
//! A.3):
//!
//! - **local heads**: scores concentrated in a diagonal window (built from
//!   an AR(1) positional track whose correlation decays with distance);
//! - **sink heads**: a dominant stripe on the BOS position;
//! - **retrieval heads**: content-aware stripes — an induction-style
//!   circuit (query content matched against each position's
//!   *previous-token* record) puts a stripe wherever the prompt plants a
//!   matching marker, so the stripe location is content-dependent exactly
//!   like in real LLMs;
//! - **mixed heads**: weighted combinations;
//! - **dispersed heads**: low-sparsity heads (the paper's 27 % SD outlier
//!   heads).
//!
//! The model supports prefill with *any* [`sa_baselines::AttentionMethod`]
//! plugged into every head (mirroring the paper's setup: only prefill
//! attention is replaced), applies RMSNorm / RoPE / GQA / a SwiGLU MLP for
//! architectural fidelity and cost accounting, and exposes an
//! associative-recall readout: tasks plant `marker → payload` pairs in the
//! token stream and ask the model to produce the payload embedding at the
//! question position. A sparse-attention method that drops the payload's
//! KV entry fails the task — the same failure mode the paper's benchmarks
//! measure.

mod archetype;
mod cache;
mod checkpoint;
mod config;
mod decode;
mod eviction;
mod embedding;
mod layer;
mod mlp;
mod norm;
mod readout;
mod transformer;
mod vocab;

pub use archetype::{GroupProjections, HeadArchetype, HeadProjections};
pub use cache::LayerKvCache;
pub use checkpoint::{PrefillCheckpoint, SessionCheckpoint, CHECKPOINT_VERSION};
pub use decode::{ChunkedPrefill, DecodeSession};
pub use eviction::{EvictionConfig, EvictionPolicy};
pub use config::{ModelConfig, ModelPreset};
pub use embedding::{TokenEmbedder, BOS_TOKEN};
pub use layer::{AttentionLayer, LayerForwardResult};
pub use mlp::SwigluMlp;
pub use norm::RmsNorm;
pub use readout::{decode_nearest_token, Readout};
pub use vocab::{VocabLayout, BLANK_TOKEN};
pub use transformer::{HeadReport, PrefillResult, SyntheticTransformer};
