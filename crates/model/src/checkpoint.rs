//! Versioned snapshot/restore of decode sessions and chunked-prefill
//! progress.
//!
//! The paper's premise makes prefill the expensive phase — which makes
//! the KV state it produces the most valuable thing a server holds.
//! This module reifies that state so the serving layer can survive
//! worker crashes without re-running prefill: a [`SessionCheckpoint`]
//! captures a [`DecodeSession`] (per-layer [`LayerKvCache`] contents,
//! emitted tokens, readout calibration, eviction statistics) and a
//! [`PrefillCheckpoint`] captures an in-flight [`ChunkedPrefill`] at a
//! chunk boundary, where the accumulator state is quiescent.
//!
//! Every snapshot carries a checksum folded over the KV bytes (plus the
//! structural fields) with the in-repo `splitmix64` mixer. Restore
//! recomputes the checksum over the staged bytes *after* consulting the
//! fault harness ([`sa_tensor::fault::tamper_kv`]), so KV bit-flip
//! corruption — injected or real — surfaces as a typed
//! [`SaError::CorruptCheckpoint`] instead of propagating silently wrong
//! attention outputs. Version skew is caught the same way.
//!
//! Checkpoints are plain values: capture clones the session state,
//! restore rebuilds a fresh session against a model reference. Nothing
//! here touches wall-clock time or global state, so snapshots taken at
//! deterministic chunk boundaries on the serving layer's virtual clock
//! keep ledgers byte-identical at every `SA_THREADS` setting.

use sa_tensor::{fault, splitmix64, CancelToken, Matrix, SaError};

use crate::{ChunkedPrefill, DecodeSession, LayerKvCache, SyntheticTransformer};

/// Snapshot format version; bumped on any layout change so a stale
/// snapshot fails restore as [`SaError::CorruptCheckpoint`] rather than
/// deserializing garbage.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One KV head's cached contents, flattened for checksumming.
#[derive(Debug, Clone)]
struct HeadKv {
    /// Cached rows in this head (heads diverge after per-head eviction).
    rows: usize,
    k: Vec<f32>,
    v: Vec<f32>,
}

/// One layer's [`LayerKvCache`], flattened.
#[derive(Debug, Clone)]
struct LayerSnapshot {
    head_dim: usize,
    /// Absolute positions appended so far (survives eviction; restoring
    /// it verbatim keeps RoPE offsets correct).
    seen: usize,
    heads: Vec<HeadKv>,
}

impl LayerSnapshot {
    fn capture(cache: &LayerKvCache) -> Self {
        LayerSnapshot {
            head_dim: cache.head_dim(),
            seen: cache.seen(),
            heads: (0..cache.num_kv_heads())
                .map(|h| {
                    let (k, v) = cache.head(h);
                    HeadKv {
                        rows: k.rows(),
                        k: k.as_slice().to_vec(),
                        v: v.as_slice().to_vec(),
                    }
                })
                .collect(),
        }
    }

    fn rebuild(&self) -> Result<LayerKvCache, SaError> {
        let entries = self
            .heads
            .iter()
            .map(|h| {
                let k = Matrix::from_vec(h.rows, self.head_dim, h.k.clone())?;
                let v = Matrix::from_vec(h.rows, self.head_dim, h.v.clone())?;
                Ok((k, v))
            })
            .collect::<Result<Vec<_>, SaError>>()?;
        Ok(LayerKvCache::from_parts(entries, self.head_dim, self.seen))
    }

    fn kv_values(&self) -> usize {
        self.heads.iter().map(|h| h.k.len() + h.v.len()).sum()
    }
}

/// Folds one value into the running checksum through the in-repo
/// splitmix64 finalizer. Bit-sensitive: any single-bit flip in any
/// folded word changes the result with overwhelming probability.
fn mix(acc: u64, v: u64) -> u64 {
    let mut s = acc ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// Checksum over the KV bytes and structural fields of a snapshot.
/// `extra` lets each checkpoint kind fold in its own scalar fields
/// (version, progress counters) so they are tamper-evident too.
fn checksum(layers: &[LayerSnapshot], extra: &[u64]) -> u64 {
    let mut h = 0x5EED_C8EC_0000_0000u64;
    for &x in extra {
        h = mix(h, x);
    }
    h = mix(h, layers.len() as u64);
    for l in layers {
        h = mix(h, l.head_dim as u64);
        h = mix(h, l.seen as u64);
        h = mix(h, l.heads.len() as u64);
        for head in &l.heads {
            h = mix(h, head.rows as u64);
            for &x in &head.k {
                h = mix(h, u64::from(x.to_bits()));
            }
            for &x in &head.v {
                h = mix(h, u64::from(x.to_bits()));
            }
        }
    }
    h
}

/// Salt separating the fault harness's per-head tamper streams so the
/// same restore salt hits distinct coordinates in distinct heads.
fn stage_salt(salt: u64, layer: usize, head: usize, is_v: bool) -> u64 {
    salt ^ ((layer as u64) << 40) ^ ((head as u64) << 8) ^ u64::from(is_v)
}

/// Runs the restore-time integrity protocol shared by both checkpoint
/// kinds: check the cancel token *first* (a cancel that races a restore
/// must not resurrect the session), stage the KV bytes through the fault
/// harness, recompute the checksum, and rebuild the caches only when it
/// matches the recorded one.
fn restore_layers(
    layers: &[LayerSnapshot],
    recorded: u64,
    extra: &[u64],
    salt: u64,
    cancel: Option<&CancelToken>,
) -> Result<Vec<LayerKvCache>, SaError> {
    if let Some(token) = cancel {
        token.check("checkpoint_restore", 0, 1)?;
    }
    let mut staged = layers.to_vec();
    for (li, layer) in staged.iter_mut().enumerate() {
        for (hi, head) in layer.heads.iter_mut().enumerate() {
            fault::tamper_kv(&mut head.k, stage_salt(salt, li, hi, false));
            fault::tamper_kv(&mut head.v, stage_salt(salt, li, hi, true));
        }
    }
    let actual = checksum(&staged, extra);
    if actual != recorded {
        return Err(SaError::CorruptCheckpoint {
            expected: recorded,
            actual,
        });
    }
    staged.iter().map(LayerSnapshot::rebuild).collect()
}

/// A versioned, checksummed snapshot of a [`DecodeSession`].
///
/// Capture is cheap relative to the prefill it preserves: it clones the
/// KV caches and session bookkeeping. Restore validates integrity and
/// rebuilds a session against any model reference with the same
/// configuration the snapshot was taken from.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    version: u32,
    tokens: Vec<u32>,
    layers: Vec<LayerSnapshot>,
    readout: crate::Readout,
    last_contents: Vec<Matrix>,
    prefill: crate::PrefillResult,
    eviction: crate::EvictionConfig,
    scores: Vec<Vec<Vec<f64>>>,
    checksum: u64,
}

impl SessionCheckpoint {
    /// Snapshots a decode session. The session is untouched; the
    /// snapshot owns independent copies of all mutable state. The
    /// installed cancel token (if any) is deliberately not captured —
    /// a restored session starts clean and the restorer installs its
    /// own.
    pub fn capture(session: &DecodeSession<'_>) -> Self {
        let layers: Vec<LayerSnapshot> =
            session.caches.iter().map(LayerSnapshot::capture).collect();
        let extra = [u64::from(CHECKPOINT_VERSION), session.tokens.len() as u64];
        let checksum = checksum(&layers, &extra);
        SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            tokens: session.tokens.clone(),
            layers,
            readout: session.readout.clone(),
            last_contents: session.last_contents.clone(),
            prefill: session.prefill.clone(),
            eviction: session.eviction,
            scores: session.scores.clone(),
            checksum,
        }
    }

    /// Rebuilds the session from the snapshot.
    ///
    /// `salt` keys the fault harness's KV-corruption stream for this
    /// restore (the serving layer passes a request/attempt-derived
    /// value); `cancel` is checked before any state is rebuilt.
    ///
    /// # Errors
    ///
    /// [`SaError::Cancelled`] / [`SaError::DeadlineExceeded`] when the
    /// token tripped (nothing is rebuilt), [`SaError::CorruptCheckpoint`]
    /// when the recomputed checksum disagrees with the recorded one
    /// (KV corruption or version skew), or shape errors when the model
    /// disagrees with the snapshot's layer count.
    pub fn restore<'m>(
        &self,
        model: &'m SyntheticTransformer,
        salt: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<DecodeSession<'m>, SaError> {
        let extra = [u64::from(self.version), self.tokens.len() as u64];
        let caches = restore_layers(&self.layers, self.checksum, &extra, salt, cancel)?;
        if caches.len() != model.config().num_layers {
            return Err(SaError::InvalidDimension {
                op: "SessionCheckpoint::restore",
                what: format!(
                    "snapshot has {} layers, model has {}",
                    caches.len(),
                    model.config().num_layers
                ),
            });
        }
        Ok(DecodeSession {
            model,
            tokens: self.tokens.clone(),
            caches,
            readout: self.readout.clone(),
            last_contents: self.last_contents.clone(),
            prefill: self.prefill.clone(),
            eviction: self.eviction,
            scores: self.scores.clone(),
            cancel: None,
        })
    }

    /// The snapshot format version this checkpoint was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The recorded KV checksum.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Tokens (prompt + generated) at snapshot time.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Bytes of KV state held by the snapshot (f32 payload only) — what
    /// the serving layer's memory ledger reserves before a restore.
    pub fn kv_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.kv_values() as u64 * 4)
            .sum()
    }
}

/// A versioned, checksummed snapshot of an in-flight [`ChunkedPrefill`]
/// at a chunk boundary.
///
/// The embedded prompt (`hidden_full`) is deterministic in the tokens,
/// so restore recomputes it instead of storing it — the snapshot holds
/// only the grown accumulators and progress counters.
#[derive(Debug, Clone)]
pub struct PrefillCheckpoint {
    version: u32,
    tokens: Vec<u32>,
    chunk_size: usize,
    layers: Vec<LayerSnapshot>,
    layer_inputs: Vec<Matrix>,
    head_contents: Vec<Matrix>,
    head_reports: Vec<Option<crate::HeadReport>>,
    total_cost: sa_kernels::CostReport,
    final_hidden: Matrix,
    start: usize,
    chunks_done: usize,
    checksum: u64,
}

impl PrefillCheckpoint {
    /// Snapshots a chunked prefill between chunks.
    pub fn capture(run: &ChunkedPrefill<'_>) -> Self {
        let layers: Vec<LayerSnapshot> = run.caches.iter().map(LayerSnapshot::capture).collect();
        let extra = [
            u64::from(CHECKPOINT_VERSION),
            run.start as u64,
            run.chunks_done as u64,
            run.chunk_size as u64,
        ];
        let checksum = checksum(&layers, &extra);
        PrefillCheckpoint {
            version: CHECKPOINT_VERSION,
            tokens: run.tokens.clone(),
            chunk_size: run.chunk_size,
            layers,
            layer_inputs: run.layer_inputs.clone(),
            head_contents: run.head_contents.clone(),
            head_reports: run.head_reports.clone(),
            total_cost: run.total_cost,
            final_hidden: run.final_hidden.clone(),
            start: run.start,
            chunks_done: run.chunks_done,
            checksum,
        }
    }

    /// Rebuilds the in-flight prefill; the caller keeps advancing it
    /// from the checkpointed chunk boundary. Same integrity protocol as
    /// [`SessionCheckpoint::restore`].
    ///
    /// # Errors
    ///
    /// See [`SessionCheckpoint::restore`].
    pub fn restore<'m>(
        &self,
        model: &'m SyntheticTransformer,
        salt: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<ChunkedPrefill<'m>, SaError> {
        let extra = [
            u64::from(self.version),
            self.start as u64,
            self.chunks_done as u64,
            self.chunk_size as u64,
        ];
        let caches = restore_layers(&self.layers, self.checksum, &extra, salt, cancel)?;
        if caches.len() != model.config().num_layers {
            return Err(SaError::InvalidDimension {
                op: "PrefillCheckpoint::restore",
                what: format!(
                    "snapshot has {} layers, model has {}",
                    caches.len(),
                    model.config().num_layers
                ),
            });
        }
        Ok(ChunkedPrefill {
            model,
            tokens: self.tokens.clone(),
            chunk_size: self.chunk_size,
            hidden_full: model.embedder().embed(&self.tokens),
            caches,
            layer_inputs: self.layer_inputs.clone(),
            head_contents: self.head_contents.clone(),
            head_reports: self.head_reports.clone(),
            total_cost: self.total_cost,
            final_hidden: self.final_hidden.clone(),
            start: self.start,
            chunks_done: self.chunks_done,
        })
    }

    /// Chunks completed at snapshot time.
    pub fn chunks_done(&self) -> usize {
        self.chunks_done
    }

    /// The recorded KV checksum.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Bytes of KV state held by the snapshot (f32 payload only).
    pub fn kv_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.kv_values() as u64 * 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;
    use sa_baselines::FullAttention;
    use sa_tensor::fault::FaultPlan;

    fn model() -> SyntheticTransformer {
        SyntheticTransformer::new(ModelConfig::tiny(77)).expect("tiny config is valid")
    }

    #[test]
    fn session_roundtrip_continues_bitwise_identically() {
        let m = model();
        let tokens = m.tokenize_filler(64);
        let vocab = m.config().vocab_size as u32;

        // Uninterrupted reference run.
        let mut straight = m
            .begin_decode(&tokens, &FullAttention::new())
            .expect("prefill");
        let expected = straight.generate_in(6, 0..vocab).expect("generate");

        // Interrupted run: 2 steps, snapshot, restore, 4 more steps.
        let mut first = m
            .begin_decode(&tokens, &FullAttention::new())
            .expect("prefill");
        let head = first.generate_in(2, 0..vocab).expect("generate");
        let snap = SessionCheckpoint::capture(&first);
        drop(first);
        let mut resumed = snap.restore(&m, 0xA, None).expect("restore");
        let tail = resumed.generate_in(4, 0..vocab).expect("generate");

        let mut resumed_tokens = head;
        resumed_tokens.extend(tail);
        assert_eq!(expected, resumed_tokens);
        assert_eq!(straight.tokens(), resumed.tokens());
    }

    #[test]
    fn prefill_roundtrip_matches_uninterrupted_run() {
        let m = model();
        let tokens = m.tokenize_filler(96);
        let method = FullAttention::new();
        let (reference, ref_caches) = m.prefill_chunked(&tokens, 16, &method).expect("prefill");

        let mut run = m.start_prefill(&tokens, 16).expect("start");
        for _ in 0..3 {
            run.advance_chunk(&method).expect("chunk");
        }
        let snap = PrefillCheckpoint::capture(&run);
        assert_eq!(snap.chunks_done(), 3);
        drop(run);
        let mut resumed = snap.restore(&m, 0xB, None).expect("restore");
        while !resumed.is_done() {
            resumed.advance_chunk(&method).expect("chunk");
        }
        let (result, caches) = resumed.finish().expect("finish");

        assert_eq!(result.hidden.shape(), reference.hidden.shape());
        for (a, b) in result
            .hidden
            .as_slice()
            .iter()
            .zip(reference.hidden.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(caches[0].len(), ref_caches[0].len());
        let (k0, _) = caches[0].head(0);
        let (rk0, _) = ref_caches[0].head(0);
        for (a, b) in k0.as_slice().iter().zip(rk0.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn kv_corruption_is_caught_at_restore() {
        let m = model();
        let tokens = m.tokenize_filler(48);
        let session = m
            .begin_decode(&tokens, &FullAttention::new())
            .expect("prefill");
        let snap = SessionCheckpoint::capture(&session);
        assert!(snap.kv_bytes() > 0);

        let _g = sa_tensor::fault::install_local(FaultPlan::new(3).kv_bit_flips(1));
        let err = snap.restore(&m, 0xC, None).expect_err("corruption");
        match err {
            SaError::CorruptCheckpoint { expected, actual } => {
                assert_ne!(expected, actual);
                assert_eq!(expected, snap.checksum());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn cancel_is_checked_before_any_restore_work() {
        let m = model();
        let tokens = m.tokenize_filler(32);
        let session = m
            .begin_decode(&tokens, &FullAttention::new())
            .expect("prefill");
        let snap = SessionCheckpoint::capture(&session);

        let token = CancelToken::new();
        token.cancel();
        // Even under an active corruption plan, the cancel wins: the KV
        // bytes are never staged, so no CorruptCheckpoint can surface.
        let _g = sa_tensor::fault::install_local(FaultPlan::new(3).kv_bit_flips(1));
        let err = snap.restore(&m, 0xD, Some(&token)).expect_err("cancel");
        assert!(
            matches!(err, SaError::Cancelled { site: "checkpoint_restore", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn restore_rejects_mismatched_model() {
        let m = model();
        let tokens = m.tokenize_filler(32);
        let session = m
            .begin_decode(&tokens, &FullAttention::new())
            .expect("prefill");
        let snap = SessionCheckpoint::capture(&session);
        let mut cfg = ModelConfig::tiny(77);
        cfg.num_layers += 1;
        let other = SyntheticTransformer::new(cfg).expect("valid config");
        let err = snap.restore(&other, 0xE, None).expect_err("layer skew");
        assert!(matches!(err, SaError::InvalidDimension { .. }), "{err:?}");
    }

    #[test]
    fn snapshot_after_eviction_preserves_seen_offsets() {
        // Mid-eviction snapshot: head lengths are below `seen`; the round
        // trip must preserve both so RoPE offsets stay correct.
        let m = model();
        let tokens = m.tokenize_filler(120);
        let vocab = m.config().vocab_size as u32;
        let evict = crate::EvictionConfig::h2o(80);

        let mut straight = m
            .begin_decode_with(&tokens, &FullAttention::new(), evict)
            .expect("prefill");
        let expected = straight.generate_in(8, 0..vocab).expect("generate");

        let mut first = m
            .begin_decode_with(&tokens, &FullAttention::new(), evict)
            .expect("prefill");
        let head = first.generate_in(5, 0..vocab).expect("generate");
        assert!(first.cache_len() <= 80, "eviction must have run");
        let snap = SessionCheckpoint::capture(&first);
        drop(first);
        let mut resumed = snap.restore(&m, 0xF, None).expect("restore");
        let tail = resumed.generate_in(3, 0..vocab).expect("generate");

        let mut resumed_tokens = head;
        resumed_tokens.extend(tail);
        assert_eq!(expected, resumed_tokens);
    }
}
