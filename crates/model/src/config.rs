use sa_kernels::rope::RopeConfig;
use sa_tensor::TensorError;

/// Which published backbone a config mirrors (controls head-archetype
/// mix, RoPE scaling, and the geometry the perf model reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelPreset {
    /// ChatGLM2-6B-like: 96K context via continued training, 28 layers ×
    /// 32 heads at full scale.
    ChatGlm2Like,
    /// InternLM2-7B-like: 200K context via RoPE scaling, 32 layers × 32
    /// heads at full scale.
    InternLm2Like,
}

sa_json::impl_json_enum!(ModelPreset {
    ChatGlm2Like,
    InternLm2Like
});

impl ModelPreset {
    /// Full-scale geometry `(layers, q_heads, kv_heads, head_dim)` of the
    /// real backbone — used by `sa-perf` for latency reproduction, not by
    /// the CPU model.
    pub fn full_scale_geometry(&self) -> (usize, usize, usize, usize) {
        match self {
            ModelPreset::ChatGlm2Like => (28, 32, 2, 128),
            ModelPreset::InternLm2Like => (32, 32, 8, 128),
        }
    }

    /// RoPE configuration: InternLM2 extrapolates with linear scaling.
    pub fn rope(&self) -> RopeConfig {
        match self {
            ModelPreset::ChatGlm2Like => RopeConfig::default(),
            ModelPreset::InternLm2Like => RopeConfig {
                base: 10_000.0,
                scaling: 2.0,
            },
        }
    }
}

/// Configuration of the synthetic transformer.
///
/// Defaults are CPU-scale (small layer/head counts); the preset only
/// controls architectural flavour. Head archetypes are assigned
/// deterministically per (layer, head) by
/// [`ModelConfig::archetype_weights`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Which backbone this model mirrors.
    pub preset: ModelPreset,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Query heads per layer.
    pub num_heads: usize,
    /// Key/value heads per layer (GQA).
    pub num_kv_heads: usize,
    /// Per-head dimension (must be even for RoPE).
    pub head_dim: usize,
    /// Content-embedding dimension.
    pub content_dim: usize,
    /// Positional-track dimension.
    pub pos_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// AR(1) positional decay per token (controls local-head window
    /// width; closer to 1.0 = wider windows).
    pub pos_decay: f32,
    /// Scale of the residual contribution of each block (small keeps the
    /// planted structure legible across layers, mirroring the strong
    /// residual stream of real LLMs).
    pub residual_gain: f32,
    /// Master seed for all constructed weights.
    pub seed: u64,
}

sa_json::impl_json_struct!(ModelConfig {
    preset,
    num_layers,
    num_heads,
    num_kv_heads,
    head_dim,
    content_dim,
    pos_dim,
    vocab_size,
    pos_decay,
    residual_gain,
    seed
});

impl ModelConfig {
    /// CPU-scale ChatGLM2-like model: 4 layers × 8 heads (2 KV heads),
    /// head dim 64.
    pub fn chatglm2_like(seed: u64) -> Self {
        ModelConfig {
            preset: ModelPreset::ChatGlm2Like,
            num_layers: 4,
            num_heads: 8,
            num_kv_heads: 2,
            head_dim: 64,
            content_dim: 32,
            pos_dim: 8,
            vocab_size: 512,
            pos_decay: 0.9,
            residual_gain: 0.1,
            seed,
        }
    }

    /// CPU-scale InternLM2-like model: 4 layers × 8 heads (4 KV heads),
    /// RoPE scaling 2.0.
    pub fn internlm2_like(seed: u64) -> Self {
        ModelConfig {
            preset: ModelPreset::InternLm2Like,
            num_kv_heads: 4,
            ..Self::chatglm2_like(seed)
        }
    }

    /// A tiny configuration for fast unit tests (2 layers × 4 heads).
    pub fn tiny(seed: u64) -> Self {
        ModelConfig {
            num_layers: 2,
            num_heads: 4,
            num_kv_heads: 2,
            vocab_size: 128,
            ..Self::chatglm2_like(seed)
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] for zero-sized dimensions,
    /// an odd head dimension, a GQA mismatch, or out-of-range gains.
    pub fn validate(&self) -> Result<(), TensorError> {
        let bad = |what: String| TensorError::InvalidDimension {
            op: "ModelConfig::validate",
            what,
        };
        if self.num_layers == 0 || self.num_heads == 0 || self.head_dim == 0 {
            return Err(bad("layers, heads and head_dim must be nonzero".into()));
        }
        if !self.head_dim.is_multiple_of(2) {
            return Err(bad(format!("head_dim must be even for RoPE, got {}", self.head_dim)));
        }
        if self.num_kv_heads == 0 || !self.num_heads.is_multiple_of(self.num_kv_heads) {
            return Err(bad(format!(
                "num_heads ({}) must be a multiple of num_kv_heads ({})",
                self.num_heads, self.num_kv_heads
            )));
        }
        if self.content_dim == 0 || self.vocab_size < 4 {
            return Err(bad("content_dim must be nonzero and vocab_size >= 4".into()));
        }
        if self.head_dim / 2 < self.content_dim || self.head_dim / 2 < self.pos_dim {
            return Err(bad(format!(
                "head_dim/2 ({}) must hold the content ({}) and positional ({}) subspaces",
                self.head_dim / 2,
                self.content_dim,
                self.pos_dim
            )));
        }
        if !(0.0..1.0).contains(&self.pos_decay) {
            return Err(bad(format!("pos_decay must be in [0, 1), got {}", self.pos_decay)));
        }
        if !(self.residual_gain > 0.0 && self.residual_gain <= 1.0) {
            return Err(bad(format!(
                "residual_gain must be in (0, 1], got {}",
                self.residual_gain
            )));
        }
        Ok(())
    }

    /// Hidden width of the structured embedding:
    /// `[content | prev-salient-content | salient-content | positional |
    /// flags(4)]` — flags are `[bos, bias, salience, prev-salience]`.
    pub fn hidden_dim(&self) -> usize {
        3 * self.content_dim + self.pos_dim + 4
    }

    /// Archetype mixing weights `(local, sink, retrieval, dispersed)` for
    /// head `head` of layer `layer`, assigned deterministically so that
    /// every layer carries the full mix the paper observes:
    /// predominantly local+sink heads, a couple of retrieval heads, and a
    /// low-sparsity dispersed head (more dispersed heads in layer 0,
    /// matching the paper's finding that the first layer is densest).
    pub fn archetype_weights(&self, layer: usize, head: usize) -> (f32, f32, f32, f32) {
        debug_assert!(layer < self.num_layers && head < self.num_heads);
        // Every non-dispersed head carries a substantial sink component:
        // in trained LLMs the BOS sink absorbs the attention slack that
        // would otherwise spread over the (growing) tail of irrelevant
        // positions — this is what makes sparsity *increase* with length
        // (Fig. 2(b) / Table 5).
        let slot = head % 8;
        let (l, s, r, d) = match slot {
            0 => (1.0, 0.7, 0.0, 0.1), // local
            1 => (0.2, 1.0, 0.0, 0.1), // sink
            2 => (0.1, 0.7, 1.0, 0.1), // retrieval
            3 => (1.0, 0.8, 0.0, 0.1), // local + sink
            4 => (0.6, 0.7, 0.6, 0.1), // local + retrieval
            5 => (1.0, 0.6, 0.0, 0.2), // wider local
            6 => (0.1, 0.7, 1.0, 0.1), // second retrieval
            _ => (0.1, 0.1, 0.0, 1.0), // dispersed
        };
        if layer == 0 {
            // First layer is visibly denser (Fig. 2(a)): boost dispersal.
            (l * 0.5, s * 0.5, r * 0.5, d + 0.6)
        } else {
            (l, s, r, d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ModelConfig::chatglm2_like(0).validate().unwrap();
        ModelConfig::internlm2_like(0).validate().unwrap();
        ModelConfig::tiny(0).validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = ModelConfig::tiny(0);
        c.head_dim = 15;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny(0);
        c.num_kv_heads = 3;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny(0);
        c.num_layers = 0;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny(0);
        c.pos_decay = 1.0;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny(0);
        c.residual_gain = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn hidden_dim_layout() {
        let c = ModelConfig::tiny(0);
        assert_eq!(c.hidden_dim(), 3 * 32 + 8 + 4);
    }

    #[test]
    fn full_scale_geometries() {
        assert_eq!(ModelPreset::ChatGlm2Like.full_scale_geometry(), (28, 32, 2, 128));
        assert_eq!(ModelPreset::InternLm2Like.full_scale_geometry(), (32, 32, 8, 128));
        assert_eq!(ModelPreset::InternLm2Like.rope().scaling, 2.0);
    }

    #[test]
    fn archetype_mix_covers_patterns() {
        let c = ModelConfig::chatglm2_like(0);
        let mut has_retrieval = false;
        let mut has_dispersed = false;
        for h in 0..c.num_heads {
            let (_, _, r, d) = c.archetype_weights(1, h);
            if r >= 1.0 {
                has_retrieval = true;
            }
            if d >= 1.0 {
                has_dispersed = true;
            }
        }
        assert!(has_retrieval && has_dispersed);
    }

    #[test]
    fn layer_zero_more_dispersed() {
        let c = ModelConfig::chatglm2_like(0);
        let (_, _, _, d0) = c.archetype_weights(0, 0);
        let (_, _, _, d1) = c.archetype_weights(1, 0);
        assert!(d0 > d1);
    }

    #[test]
    fn json_round_trip() {
        let c = ModelConfig::chatglm2_like(3);
        let s = sa_json::to_string(&c);
        let back: ModelConfig = sa_json::from_str(&s).unwrap();
        assert_eq!(c, back);
        // The preset is a bare variant-name string, as before.
        assert!(s.contains("\"ChatGlm2Like\""), "{s}");
    }
}
