//! Vocabulary banding for the synthetic tasks.
//!
//! The model's vocabulary is partitioned into bands so scorers can
//! constrain decoding to valid answers (as real benchmark harnesses do):
//!
//! ```text
//! [0]                 BOS
//! [1 .. 10)           reserved (1 = blank separator)
//! [10 .. markers_end) marker tokens (question keys)
//! [.. payloads_end)   payload tokens (the only valid answers)
//! [payloads_end ..)   filler tokens (haystack text)
//! ```

use crate::BOS_TOKEN;

/// The reserved blank/separator token.
pub const BLANK_TOKEN: u32 = 1;

/// Partition of a vocabulary into marker / payload / filler bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabLayout {
    markers_start: u32,
    payloads_start: u32,
    fillers_start: u32,
    vocab_size: u32,
}

impl VocabLayout {
    /// Standard banding for a vocabulary of `vocab_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 64` (too small to band).
    pub fn for_vocab(vocab_size: usize) -> Self {
        assert!(vocab_size >= 64, "vocabulary too small to band: {vocab_size}");
        let v = vocab_size as u32;
        // ~17% markers, ~17% payloads, rest filler.
        let markers_start = 10;
        let payloads_start = markers_start + (v - 10) / 6;
        let fillers_start = payloads_start + (v - 10) / 6;
        VocabLayout {
            markers_start,
            payloads_start,
            fillers_start,
            vocab_size: v,
        }
    }

    /// The `i`-th marker token.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the marker band.
    pub fn marker(&self, i: usize) -> u32 {
        let t = self.markers_start + i as u32;
        assert!(t < self.payloads_start, "marker index {i} out of band");
        t
    }

    /// The `i`-th payload token.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the payload band.
    pub fn payload(&self, i: usize) -> u32 {
        let t = self.payloads_start + i as u32;
        assert!(t < self.fillers_start, "payload index {i} out of band");
        t
    }

    /// The `i`-th filler token (wraps around the filler band).
    pub fn filler(&self, i: usize) -> u32 {
        let band = self.vocab_size - self.fillers_start;
        self.fillers_start + (i as u32 % band)
    }

    /// Number of distinct markers available.
    pub fn num_markers(&self) -> usize {
        (self.payloads_start - self.markers_start) as usize
    }

    /// Number of distinct payloads available.
    pub fn num_payloads(&self) -> usize {
        (self.fillers_start - self.payloads_start) as usize
    }

    /// The payload band as a decoding range.
    pub fn payload_range(&self) -> std::ops::Range<u32> {
        self.payloads_start..self.fillers_start
    }

    /// Whether `t` is BOS/blank/reserved.
    pub fn is_reserved(&self, t: u32) -> bool {
        t == BOS_TOKEN || t < self.markers_start
    }

    /// Whether `t` is a *salient* token: a marker or payload. Salient
    /// tokens are rare in running text, and the synthetic model (like
    /// real LLMs) gives them elevated attention from every query.
    pub fn is_salient(&self, t: u32) -> bool {
        (self.markers_start..self.fillers_start).contains(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_are_disjoint_and_ordered() {
        let v = VocabLayout::for_vocab(512);
        assert!(v.marker(0) >= 10);
        assert!(v.marker(v.num_markers() - 1) < v.payload(0));
        assert!(v.payload(v.num_payloads() - 1) < v.filler(0));
        assert!(v.filler(10_000) < 512);
    }

    #[test]
    fn payload_range_covers_band() {
        let v = VocabLayout::for_vocab(512);
        let r = v.payload_range();
        assert_eq!(r.start, v.payload(0));
        assert_eq!(r.end - r.start, v.num_payloads() as u32);
    }

    #[test]
    fn reserved_tokens() {
        let v = VocabLayout::for_vocab(128);
        assert!(v.is_reserved(0));
        assert!(v.is_reserved(BLANK_TOKEN));
        assert!(!v.is_reserved(v.marker(0)));
    }

    #[test]
    fn small_vocab_still_usable() {
        let v = VocabLayout::for_vocab(128);
        assert!(v.num_markers() >= 15);
        assert!(v.num_payloads() >= 15);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_vocab_rejected() {
        let _ = VocabLayout::for_vocab(32);
    }

    #[test]
    #[should_panic(expected = "out of band")]
    fn marker_overflow_panics() {
        let v = VocabLayout::for_vocab(128);
        let _ = v.marker(v.num_markers());
    }
}
