//! SwiGLU feed-forward block (the MLP both backbones use).
//!
//! Present for architectural fidelity and — more importantly — for cost
//! accounting: TTFT is attention + MLP + norms, and the paper's Table 4
//! latency breakdown depends on the MLP's FLOP share. Weights are random
//! and small-scaled so the block perturbs rather than destroys the
//! residual stream.

use sa_kernels::CostReport;
use sa_tensor::{matmul, DeterministicRng, Matrix, TensorError};

/// SwiGLU MLP: `down( silu(gate(x)) * up(x) )`.
#[derive(Debug, Clone)]
pub struct SwigluMlp {
    w_gate: Matrix,
    w_up: Matrix,
    w_down: Matrix,
}

impl SwigluMlp {
    /// Builds a `(dim → ffn_dim → dim)` block with small random weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn generate(dim: usize, ffn_dim: usize, rng: &mut DeterministicRng) -> Self {
        assert!(dim > 0 && ffn_dim > 0, "MLP dims must be nonzero");
        let s_in = 1.0 / (dim as f32).sqrt();
        let s_out = 1.0 / (ffn_dim as f32).sqrt();
        SwigluMlp {
            w_gate: rng.normal_matrix(dim, ffn_dim, s_in),
            w_up: rng.normal_matrix(dim, ffn_dim, s_in),
            w_down: rng.normal_matrix(ffn_dim, dim, s_out),
        }
    }

    /// Input/output width.
    pub fn dim(&self) -> usize {
        self.w_gate.rows()
    }

    /// Hidden (FFN) width.
    pub fn ffn_dim(&self) -> usize {
        self.w_gate.cols()
    }

    /// Forward pass with exact cost accounting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.cols() != dim()`.
    pub fn forward(&self, x: &Matrix) -> Result<(Matrix, CostReport), TensorError> {
        let mut gate = matmul(x, &self.w_gate)?;
        let up = matmul(x, &self.w_up)?;
        for (g, &u) in gate.as_mut_slice().iter_mut().zip(up.as_slice()) {
            *g = silu(*g) * u;
        }
        let out = matmul(&gate, &self.w_down)?;

        let s = x.rows() as u64;
        let d = self.dim() as u64;
        let f = self.ffn_dim() as u64;
        // 3 GEMMs + elementwise silu*mul (~5 flops/elem).
        let flops = s * (2 * d * f * 3 + 5 * f);
        let bytes_read = 4 * (s * d + (d * f * 3));
        let bytes_written = 4 * s * d;
        let mut cost = CostReport::launch(flops, bytes_read, bytes_written);
        cost.kernel_launches = 4;
        Ok((out, cost))
    }
}

#[inline]
fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_cost() {
        let mut rng = DeterministicRng::new(1);
        let mlp = SwigluMlp::generate(16, 48, &mut rng);
        assert_eq!(mlp.dim(), 16);
        assert_eq!(mlp.ffn_dim(), 48);
        let x = rng.normal_matrix(10, 16, 1.0);
        let (out, cost) = mlp.forward(&x).unwrap();
        assert_eq!(out.shape(), (10, 16));
        assert!(cost.flops > 0);
        assert_eq!(cost.kernel_launches, 4);
    }

    #[test]
    fn output_bounded_relative_to_input() {
        // Small random weights → output norm comparable to input norm.
        let mut rng = DeterministicRng::new(2);
        let mlp = SwigluMlp::generate(32, 96, &mut rng);
        let x = rng.normal_matrix(20, 32, 1.0);
        let (out, _) = mlp.forward(&x).unwrap();
        let rx = x.frobenius_norm();
        let ro = out.frobenius_norm();
        assert!(ro < 4.0 * rx, "output norm {ro} vs input {rx}");
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn silu_properties() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(10.0) > 9.9);
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn cost_scales_linearly_with_rows() {
        let mut rng = DeterministicRng::new(3);
        let mlp = SwigluMlp::generate(8, 16, &mut rng);
        let x1 = rng.normal_matrix(5, 8, 1.0);
        let x2 = rng.normal_matrix(10, 8, 1.0);
        let (_, c1) = mlp.forward(&x1).unwrap();
        let (_, c2) = mlp.forward(&x2).unwrap();
        assert_eq!(c2.flops, 2 * c1.flops);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut rng = DeterministicRng::new(4);
        let mlp = SwigluMlp::generate(8, 16, &mut rng);
        let x = Matrix::zeros(3, 9);
        assert!(mlp.forward(&x).is_err());
    }
}
