//! RMSNorm, the normalisation both backbones use.

use sa_tensor::{DeterministicRng, Matrix};

/// Root-mean-square layer normalisation with a learned (here: constructed)
/// per-channel gain.
#[derive(Debug, Clone)]
pub struct RmsNorm {
    gain: Vec<f32>,
    eps: f32,
}

impl RmsNorm {
    /// Unit-gain RMSNorm of width `dim`.
    pub fn identity(dim: usize) -> Self {
        RmsNorm {
            gain: vec![1.0; dim],
            eps: 1e-6,
        }
    }

    /// RMSNorm with gains jittered around 1 (as trained norms look).
    pub fn jittered(dim: usize, rng: &mut DeterministicRng) -> Self {
        RmsNorm {
            gain: (0..dim).map(|_| 1.0 + 0.05 * rng.normal()).collect(),
            eps: 1e-6,
        }
    }

    /// Channel width.
    pub fn dim(&self) -> usize {
        self.gain.len()
    }

    /// Applies the norm row-wise, returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.gain.len(), "RmsNorm width mismatch");
        let mut out = x.clone();
        self.forward_in_place(&mut out);
        out
    }

    /// Applies the norm row-wise in place.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim()`.
    pub fn forward_in_place(&self, x: &mut Matrix) {
        assert_eq!(x.cols(), self.gain.len(), "RmsNorm width mismatch");
        let d = self.gain.len();
        for i in 0..x.rows() {
            let row = x.row_mut(i);
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
            let inv = 1.0 / (ms + self.eps).sqrt();
            for (v, &g) in row.iter_mut().zip(&self.gain) {
                *v *= inv * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_gain_normalises_rms_to_one() {
        let x = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.5, -0.5]]).unwrap();
        let out = RmsNorm::identity(2).forward(&x);
        for i in 0..2 {
            let ms: f32 = out.row(i).iter().map(|v| v * v).sum::<f32>() / 2.0;
            assert!((ms - 1.0).abs() < 1e-4, "row {i} rms {ms}");
        }
    }

    #[test]
    fn zero_row_stays_finite() {
        let x = Matrix::zeros(1, 4);
        let out = RmsNorm::identity(4).forward(&x);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn preserves_direction() {
        let x = Matrix::from_rows(&[vec![2.0, -2.0, 4.0]]).unwrap();
        let out = RmsNorm::identity(3).forward(&x);
        let sim = sa_tensor::cosine_similarity(x.row(0), out.row(0));
        assert!((sim - 1.0).abs() < 1e-5);
    }

    #[test]
    fn jittered_gains_near_one() {
        let mut rng = DeterministicRng::new(1);
        let n = RmsNorm::jittered(64, &mut rng);
        assert_eq!(n.dim(), 64);
        assert!(n.gain.iter().all(|&g| (g - 1.0).abs() < 0.3));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let x = Matrix::zeros(1, 3);
        let _ = RmsNorm::identity(4).forward(&x);
    }
}
