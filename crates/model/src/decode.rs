//! Chunked prefill and the decode phase.
//!
//! The paper only replaces *prefill* attention; generation proceeds with
//! full attention over an uncompressed KV cache (§5.1), and its serving
//! stack chunks long prefills along the sequence (Appendix A.6). This
//! module provides both on top of [`crate::AttentionLayer::forward_incremental`]:
//!
//! - [`SyntheticTransformer::prefill_chunked`] — process the prompt in
//!   chunks with per-layer KV caches. For a causal transformer this is
//!   *exactly* equivalent to monolithic prefill (a property the tests
//!   assert), but bounds peak memory like the paper's serving setup.
//! - [`DecodeSession`] — autoregressive generation after a prefill: each
//!   step embeds the newest token, runs it through every layer with full
//!   attention over the caches, and decodes the retrieval heads' output
//!   into the next token.

use sa_baselines::{AttentionMethod, FullAttention};
use sa_kernels::{attention_scores_raw, CostReport};
use sa_tensor::{cancel, softmax_rows_in_place, CancelToken, Matrix, TensorError};

use crate::{
    EvictionConfig, HeadReport, LayerKvCache, PrefillResult, Readout, SyntheticTransformer,
};

impl SyntheticTransformer {
    /// Prefills in chunks of `chunk_size` rows (the last chunk may be
    /// shorter), maintaining per-layer KV caches. Returns the same
    /// [`PrefillResult`] as [`prefill`](Self::prefill) plus the caches,
    /// ready for decoding.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] for a zero chunk size, or
    /// propagates kernel errors.
    pub fn prefill_chunked(
        &self,
        tokens: &[u32],
        chunk_size: usize,
        method: &dyn AttentionMethod,
    ) -> Result<(PrefillResult, Vec<LayerKvCache>), TensorError> {
        self.prefill_chunked_with(tokens, chunk_size, method, &CancelToken::new())
    }

    /// [`prefill_chunked`](Self::prefill_chunked) with cooperative
    /// cancellation: `cancel` is checked before every sequence chunk
    /// (and, through the scoped install, before every worker-pool chunk
    /// inside the forward passes), so a tripped token stops the prefill
    /// within one chunk. The returned error carries the chunk-progress
    /// counters; any partial work is discarded.
    ///
    /// # Errors
    ///
    /// [`TensorError::Cancelled`] / [`TensorError::DeadlineExceeded`]
    /// when the token trips, [`TensorError::InvalidDimension`] for a
    /// zero chunk size, or propagated kernel errors.
    pub fn prefill_chunked_with(
        &self,
        tokens: &[u32],
        chunk_size: usize,
        method: &dyn AttentionMethod,
        cancel: &CancelToken,
    ) -> Result<(PrefillResult, Vec<LayerKvCache>), TensorError> {
        // Make the token visible to the worker pool for the duration of
        // this prefill, so pool-level chunk boundaries check it too.
        let _cancel_scope = cancel::install(cancel);
        let mut run = self.start_prefill(tokens, chunk_size)?;
        while !run.is_done() {
            cancel.check("prefill_chunked", run.chunks_done(), run.total_chunks())?;
            run.advance_chunk(method)?;
        }
        run.finish()
    }

    /// Starts a resumable chunked prefill (see [`ChunkedPrefill`]): the
    /// caller advances it one chunk at a time, which lets the serving
    /// layer checkpoint progress at chunk boundaries and resume after a
    /// crash without replaying completed chunks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] for a zero chunk size.
    pub fn start_prefill(
        &self,
        tokens: &[u32],
        chunk_size: usize,
    ) -> Result<ChunkedPrefill<'_>, TensorError> {
        if chunk_size == 0 {
            return Err(TensorError::InvalidDimension {
                op: "prefill_chunked",
                what: "chunk_size must be >= 1".to_string(),
            });
        }
        let num_layers = self.config().num_layers;
        let num_heads = self.config().num_heads;
        let hidden_full = self.embedder().embed(tokens);
        let caches: Vec<LayerKvCache> = self
            .layers()
            .iter()
            .map(|l| l.new_cache(self.config().head_dim))
            .collect();
        let layer_inputs: Vec<Matrix> = (0..num_layers)
            .map(|_| Matrix::zeros(0, hidden_full.cols()))
            .collect();
        let head_contents: Vec<Matrix> = (0..num_layers * num_heads)
            .map(|_| Matrix::zeros(0, self.config().content_dim))
            .collect();
        let final_hidden = Matrix::zeros(0, hidden_full.cols());
        Ok(ChunkedPrefill {
            model: self,
            tokens: tokens.to_vec(),
            chunk_size,
            hidden_full,
            caches,
            layer_inputs,
            head_contents,
            head_reports: vec![None; num_layers * num_heads],
            total_cost: CostReport::new(),
            final_hidden,
            start: 0,
            chunks_done: 0,
        })
    }

    /// Starts a decode session: chunked prefill with `method`, then
    /// generation with full attention over the caches.
    ///
    /// # Errors
    ///
    /// Propagates prefill errors.
    pub fn begin_decode(
        &self,
        tokens: &[u32],
        prefill_method: &dyn AttentionMethod,
    ) -> Result<DecodeSession<'_>, TensorError> {
        self.begin_decode_with(tokens, prefill_method, EvictionConfig::none())
    }

    /// Like [`begin_decode`](Self::begin_decode) with a decode-phase
    /// KV-cache eviction policy — the "combined with KV cache eviction"
    /// deployment the paper describes as orthogonal to SampleAttention.
    ///
    /// # Errors
    ///
    /// Propagates prefill errors.
    pub fn begin_decode_with(
        &self,
        tokens: &[u32],
        prefill_method: &dyn AttentionMethod,
        eviction: EvictionConfig,
    ) -> Result<DecodeSession<'_>, TensorError> {
        let (result, caches) = self.prefill_chunked(tokens, tokens.len().max(1), prefill_method)?;
        let readout = Readout::from_reports(&result.head_reports);
        // Last row's content output per head.
        let last = result.hidden.rows().saturating_sub(1);
        let last_contents: Vec<Matrix> = result
            .head_contents
            .iter()
            .map(|m| m.slice_rows(last, last + 1))
            .collect::<Result<_, _>>()?;
        let scores = caches
            .iter()
            .map(|c| vec![vec![0.0f64; c.len()]; c.num_kv_heads()])
            .collect();
        Ok(DecodeSession {
            model: self,
            tokens: tokens.to_vec(),
            caches,
            readout,
            last_contents,
            prefill: result,
            eviction,
            scores,
            cancel: None,
        })
    }
}

fn append_rows(dst: &mut Matrix, src: &Matrix) -> Result<(), TensorError> {
    let cols = src.cols();
    let rows = dst.rows() + src.rows();
    let mut data = std::mem::take(dst).into_vec();
    data.extend_from_slice(src.as_slice());
    *dst = Matrix::from_vec(rows, cols, data)?;
    Ok(())
}

/// The accumulator state of a chunked prefill, reified as a value so
/// callers can advance one chunk at a time instead of running the whole
/// prompt in one call. Between chunks the state is quiescent: the serving
/// layer checkpoints it there (`checkpoint::PrefillCheckpoint`) and a
/// crashed attempt resumes from the last checkpoint, recomputing at most
/// the one chunk that was in flight.
///
/// Driving `advance_chunk` to completion and calling [`finish`]
/// is exactly equivalent to
/// [`SyntheticTransformer::prefill_chunked`] (which is now implemented
/// on top of this type).
///
/// [`finish`]: ChunkedPrefill::finish
#[derive(Debug)]
pub struct ChunkedPrefill<'m> {
    pub(crate) model: &'m SyntheticTransformer,
    pub(crate) tokens: Vec<u32>,
    pub(crate) chunk_size: usize,
    /// The full embedded prompt. Deterministic in `tokens`, so restore
    /// recomputes it instead of storing it in the checkpoint.
    pub(crate) hidden_full: Matrix,
    pub(crate) caches: Vec<LayerKvCache>,
    pub(crate) layer_inputs: Vec<Matrix>,
    pub(crate) head_contents: Vec<Matrix>,
    pub(crate) head_reports: Vec<Option<HeadReport>>,
    pub(crate) total_cost: CostReport,
    pub(crate) final_hidden: Matrix,
    /// First prompt row the next chunk will process.
    pub(crate) start: usize,
    pub(crate) chunks_done: usize,
}

impl<'m> ChunkedPrefill<'m> {
    /// Chunks completed so far.
    pub fn chunks_done(&self) -> usize {
        self.chunks_done
    }

    /// Total chunks the prompt divides into.
    pub fn total_chunks(&self) -> usize {
        self.tokens.len().div_ceil(self.chunk_size)
    }

    /// `true` once every prompt row has been processed.
    pub fn is_done(&self) -> bool {
        self.start >= self.tokens.len()
    }

    /// Runs the next chunk through every layer, growing the caches and
    /// accumulators. A no-op once [`is_done`](Self::is_done).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; on error the accumulators may be
    /// partially advanced and the run must be discarded (or restored
    /// from a checkpoint).
    pub fn advance_chunk(&mut self, method: &dyn AttentionMethod) -> Result<(), TensorError> {
        let s = self.tokens.len();
        if self.start >= s {
            return Ok(());
        }
        let num_heads = self.model.config().num_heads;
        let end = (self.start + self.chunk_size).min(s);
        let mut rows = self.hidden_full.slice_rows(self.start, end)?;
        for (l, layer) in self.model.layers().iter().enumerate() {
            append_rows(&mut self.layer_inputs[l], &rows)?;
            let out = layer.forward_incremental(&rows, &mut self.caches[l], method)?;
            for (h, content) in out.head_contents.iter().enumerate() {
                append_rows(&mut self.head_contents[l * num_heads + h], content)?;
            }
            for r in out.head_reports {
                let slot = &mut self.head_reports[r.layer * num_heads + r.head];
                match slot {
                    Some(existing) => {
                        existing.cost.merge(&r.cost);
                        existing.density = (existing.density + r.density) / 2.0;
                    }
                    None => *slot = Some(r),
                }
            }
            self.total_cost.merge(&out.cost);
            rows = out.hidden;
        }
        append_rows(&mut self.final_hidden, &rows)?;
        self.start = end;
        self.chunks_done += 1;
        Ok(())
    }

    /// Consumes the finished run into the same `(PrefillResult, caches)`
    /// pair [`SyntheticTransformer::prefill_chunked`] returns.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if chunks remain.
    pub fn finish(self) -> Result<(PrefillResult, Vec<LayerKvCache>), TensorError> {
        if !self.is_done() {
            return Err(TensorError::InvalidDimension {
                op: "ChunkedPrefill::finish",
                what: format!(
                    "{} of {} chunks done",
                    self.chunks_done,
                    self.total_chunks()
                ),
            });
        }
        let head_reports: Vec<HeadReport> = self
            .head_reports
            .into_iter()
            .map(|r| r.expect("every head ran at least once"))
            .collect();
        Ok((
            PrefillResult {
                hidden: self.final_hidden,
                layer_inputs: self.layer_inputs,
                head_contents: self.head_contents,
                head_reports,
                total_cost: self.total_cost,
            },
            self.caches,
        ))
    }
}

/// An autoregressive decoding session over uncompressed KV caches.
#[derive(Debug)]
pub struct DecodeSession<'m> {
    pub(crate) model: &'m SyntheticTransformer,
    pub(crate) tokens: Vec<u32>,
    pub(crate) caches: Vec<LayerKvCache>,
    pub(crate) readout: Readout,
    /// One `(1, content_dim)` matrix per head: the newest position's
    /// retrieval output.
    pub(crate) last_contents: Vec<Matrix>,
    pub(crate) prefill: PrefillResult,
    pub(crate) eviction: EvictionConfig,
    /// Accumulated attention mass per (layer, kv-head, cache entry) —
    /// the H2O heavy-hitter statistic, observed during decoding.
    pub(crate) scores: Vec<Vec<Vec<f64>>>,
    /// Cooperative cancellation token checked before every decode step.
    /// Deliberately *not* checkpointed: a restored session starts with no
    /// token, and the restoring caller installs its own.
    pub(crate) cancel: Option<CancelToken>,
}

impl<'m> DecodeSession<'m> {
    /// The token stream so far (prompt + generated).
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// The prefill result the session started from.
    pub fn prefill_result(&self) -> &PrefillResult {
        &self.prefill
    }

    /// Installs a cancellation token checked before every decode step
    /// ([`step`](Self::step) / [`push`](Self::push) /
    /// [`generate_in`](Self::generate_in)) and, through the scoped
    /// install, at every worker-pool chunk boundary inside the step. A
    /// step interrupted *before* it starts leaves the session state
    /// untouched; an error raised mid-step (pool-level) may leave the
    /// caches partially advanced, so the session must be discarded then.
    pub fn install_cancel(&mut self, token: &CancelToken) {
        self.cancel = Some(token.clone());
    }

    /// Predicts the next token (restricted to `range`), appends it, and
    /// advances the caches by one position using full attention.
    ///
    /// Returns `(token, confidence)`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the single-row forward.
    pub fn step_in(&mut self, range: std::ops::Range<u32>) -> Result<(u32, f32), TensorError> {
        let (token, confidence) = self.peek_in(range);
        self.push(token)?;
        Ok((token, confidence))
    }

    /// Predicts the next token over the whole vocabulary, appends it, and
    /// advances the caches.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the single-row forward.
    pub fn step(&mut self) -> Result<(u32, f32), TensorError> {
        let vocab = self.model.config().vocab_size as u32;
        self.step_in(0..vocab)
    }

    /// The next-token prediction without advancing.
    pub fn peek_in(&self, range: std::ops::Range<u32>) -> (u32, f32) {
        match self.readout.answer_vector(&self.last_contents, 0) {
            Some(v) => self.model.embedder().nearest_token_in(&v, range),
            None => (crate::BOS_TOKEN, 0.0),
        }
    }

    /// Appends an externally chosen token (teacher forcing) and advances
    /// the caches by one position.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the single-row forward.
    pub fn push(&mut self, token: u32) -> Result<(), TensorError> {
        // Check *before* mutating any state: a cancelled step must leave
        // the session exactly as it was.
        if let Some(tok) = &self.cancel {
            tok.check("decode_step", 0, 1)?;
        }
        let _cancel_scope = self.cancel.as_ref().map(cancel::install);
        self.tokens.push(token);
        // Embed the full stream (the AR(1) positional track is
        // sequential) and take the newest row.
        let hidden = self.model.embedder().embed(&self.tokens);
        let mut rows = hidden.slice_rows(hidden.rows() - 1, hidden.rows())?;
        let full = FullAttention::new();
        let num_heads = self.model.config().num_heads;
        let track = self.eviction.budget > 0;
        for (l, layer) in self.model.layers().iter().enumerate() {
            let offset = self.caches[l].seen();
            if track {
                // The new entry starts with zero accumulated mass.
                for head_scores in &mut self.scores[l] {
                    head_scores.push(0.0);
                }
            }
            let out = layer.forward_incremental(&rows, &mut self.caches[l], &full)?;
            if track {
                for head in 0..num_heads {
                    let q = layer.project_q(&rows, head, offset)?;
                    let kv = layer.gqa().kv_head_for(head);
                    let (k_all, _) = self.caches[l].head(kv);
                    let mut p = attention_scores_raw(&q, k_all, false)?;
                    softmax_rows_in_place(&mut p);
                    for (j, &m) in p.row(0).iter().enumerate() {
                        self.scores[l][kv][j] += m as f64;
                    }
                }
                for kv in 0..self.caches[l].num_kv_heads() {
                    let len = self.caches[l].head_len(kv);
                    if let Some(keep) = self.eviction.keep_indices(len, &self.scores[l][kv])? {
                        self.caches[l].retain_head(kv, &keep)?;
                        self.scores[l][kv] = keep
                            .iter()
                            .map(|&i| self.scores[l][kv][i])
                            .collect();
                    }
                }
            }
            for (h, content) in out.head_contents.into_iter().enumerate() {
                self.last_contents[l * num_heads + h] = content;
            }
            rows = out.hidden;
        }
        Ok(())
    }

    /// Current cache occupancy of layer 0, KV head 0 (for
    /// eviction-behaviour inspection).
    pub fn cache_len(&self) -> usize {
        self.caches.first().map_or(0, |c| c.head_len(0))
    }

    /// Generates `n` tokens restricted to `range`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors. With an installed cancellation token, a
    /// trip between steps surfaces as [`TensorError::Cancelled`] /
    /// [`TensorError::DeadlineExceeded`] carrying the step progress
    /// (`completed` steps out of `n`); tokens generated before the trip
    /// are already appended to [`tokens`](Self::tokens).
    pub fn generate_in(
        &mut self,
        n: usize,
        range: std::ops::Range<u32>,
    ) -> Result<Vec<u32>, TensorError> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if let Some(tok) = &self.cancel {
                tok.check("generate", i, n)?;
            }
            let (t, _) = self.step_in(range.clone())?;
            out.push(t);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, VocabLayout};
    use sa_baselines::SampleAttentionMethod;
    use sa_tensor::max_abs_diff;

    fn model() -> SyntheticTransformer {
        SyntheticTransformer::new(ModelConfig::tiny(77)).unwrap()
    }

    #[test]
    fn chunked_prefill_matches_monolithic() {
        let m = model();
        let tokens = m.tokenize_filler(90);
        let mono = m.prefill(&tokens, &FullAttention::new()).unwrap();
        for chunk in [1usize, 7, 32, 90, 200] {
            let (chunked, caches) = m
                .prefill_chunked(&tokens, chunk, &FullAttention::new())
                .unwrap();
            assert_eq!(chunked.hidden.shape(), mono.hidden.shape());
            let diff = max_abs_diff(chunked.hidden.as_slice(), mono.hidden.as_slice());
            assert!(diff < 1e-4, "chunk {chunk}: diff {diff}");
            assert_eq!(caches[0].len(), 90);
            // head contents align too
            let d0 = max_abs_diff(
                chunked.head_contents[3].as_slice(),
                mono.head_contents[3].as_slice(),
            );
            assert!(d0 < 1e-4, "chunk {chunk}: head diff {d0}");
        }
    }

    #[test]
    fn decode_recovers_needle_answer() {
        let m = model();
        let layout = *m.embedder().layout();
        let marker = layout.marker(4);
        let payload = layout.payload(9);
        let mut tokens = m.tokenize_filler(200);
        tokens[80] = marker;
        tokens[81] = payload;
        let last = tokens.len() - 1;
        tokens[last] = marker;

        let mut session = m.begin_decode(&tokens, &FullAttention::new()).unwrap();
        let (answer, confidence) = session.step_in(layout.payload_range()).unwrap();
        assert_eq!(answer, payload, "confidence {confidence}");
        assert_eq!(session.tokens().len(), 201);
    }

    #[test]
    fn decode_after_sample_attention_prefill() {
        // The paper's deployment: SampleAttention at prefill, full
        // attention at decode.
        let m = model();
        let layout = *m.embedder().layout();
        let marker = layout.marker(2);
        let payload = layout.payload(3);
        let mut tokens = m.tokenize_filler(240);
        tokens[100] = marker;
        tokens[101] = payload;
        let last = tokens.len() - 1;
        tokens[last] = marker;
        let mut session = m
            .begin_decode(&tokens, &SampleAttentionMethod::paper_default())
            .unwrap();
        let (answer, _) = session.step_in(layout.payload_range()).unwrap();
        assert_eq!(answer, payload);
    }

    #[test]
    fn teacher_forcing_and_generate() {
        let m = model();
        let tokens = m.tokenize_filler(60);
        let mut session = m.begin_decode(&tokens, &FullAttention::new()).unwrap();
        session.push(5).unwrap();
        assert_eq!(*session.tokens().last().unwrap(), 5);
        let vocab = m.config().vocab_size as u32;
        let generated = session.generate_in(3, 0..vocab).unwrap();
        assert_eq!(generated.len(), 3);
        assert_eq!(session.tokens().len(), 64);
    }

    #[test]
    fn h2o_eviction_bounds_cache_and_keeps_answers() {
        // SampleAttention prefill + H2O decode: the paper's "orthogonal,
        // can be combined" deployment. The heavy-hitter statistic keeps
        // the needle KV because decode queries keep attending to it.
        let m = model();
        let layout = *m.embedder().layout();
        let marker = layout.marker(6);
        let payload = layout.payload(11);
        let mut tokens = m.tokenize_filler(160);
        tokens[60] = marker;
        tokens[61] = payload;
        let last = tokens.len() - 1;
        tokens[last] = marker;

        let budget = 120;
        let mut session = m
            .begin_decode_with(
                &tokens,
                &SampleAttentionMethod::paper_default(),
                crate::EvictionConfig::h2o(budget),
            )
            .unwrap();
        // First prediction happens before any eviction: must be right.
        let (answer, _) = session.step_in(layout.payload_range()).unwrap();
        assert_eq!(answer, payload);
        // Keep decoding: cache must stay bounded.
        for _ in 0..12 {
            session.step().unwrap();
        }
        assert!(session.cache_len() <= budget, "cache {} > {budget}", session.cache_len());
    }

    #[test]
    fn streaming_eviction_loses_mid_context_under_tight_budget() {
        // Sink+recent eviction drops mid-context entries; asking the
        // question again after eviction fails, while H2O's heavy-hitter
        // tracking keeps the payload alive.
        let m = model();
        let layout = *m.embedder().layout();
        let marker = layout.marker(1);
        let payload = layout.payload(2);
        let mut tokens = m.tokenize_filler(200);
        tokens[90] = marker;
        tokens[91] = payload;
        let last = tokens.len() - 1;
        tokens[last] = marker;

        let run = |eviction: crate::EvictionConfig| -> u32 {
            let mut session = m
                .begin_decode_with(&tokens, &FullAttention::new(), eviction)
                .unwrap();
            // Teacher-force fillers (never emit the answer, so it cannot
            // leak into recent context), letting eviction run, then ask.
            for i in 0..8 {
                session.push(layout.filler(i)).unwrap();
            }
            session.push(marker).unwrap();
            session.peek_in(layout.payload_range()).0
        };
        let h2o_answer = run(crate::EvictionConfig::h2o(60));
        let streaming_answer = run(crate::EvictionConfig::streaming(60));
        assert_eq!(h2o_answer, payload, "H2O should keep the heavy-hitter payload");
        assert_ne!(
            streaming_answer, payload,
            "sink+recent eviction should lose a mid-context payload"
        );
    }

    #[test]
    fn zero_chunk_rejected() {
        let m = model();
        let tokens = m.tokenize_filler(10);
        assert!(m.prefill_chunked(&tokens, 0, &FullAttention::new()).is_err());
    }

    #[test]
    fn vocab_layout_reexport_smoke() {
        // VocabLayout is reachable from the model crate for decode users.
        let l = VocabLayout::for_vocab(128);
        assert!(l.payload_range().len() > 4);
    }

    #[test]
    fn chunked_prefill_matches_monolithic_under_sample_attention() {
        // SampleAttention re-runs stage-1 sampling per chunk, so chunked
        // and monolithic prefills discover slightly different stripe sets
        // — the hidden states must still agree within a loose tolerance,
        // and both runs must recover the needle.
        let m = model();
        let method = SampleAttentionMethod::paper_default();
        let tokens = m.tokenize_filler(192);
        let mono = m.prefill(&tokens, &method).unwrap();
        for chunk in [48usize, 96] {
            let (chunked, caches) = m.prefill_chunked(&tokens, chunk, &method).unwrap();
            assert_eq!(chunked.hidden.shape(), mono.hidden.shape());
            assert_eq!(caches[0].len(), tokens.len());
            let diff = max_abs_diff(chunked.hidden.as_slice(), mono.hidden.as_slice());
            assert!(diff < 5e-2, "chunk {chunk}: diff {diff}");
        }
    }

    #[test]
    fn pre_expired_deadline_cancels_prefill_before_any_chunk() {
        let m = model();
        let tokens = m.tokenize_filler(64);
        let token = CancelToken::with_deadline_ns(1); // epoch + 1ns: long past
        let err = m
            .prefill_chunked_with(&tokens, 16, &FullAttention::new(), &token)
            .unwrap_err();
        match err {
            TensorError::DeadlineExceeded { site, completed, total } => {
                assert_eq!(site, "prefill_chunked");
                assert_eq!(completed, 0, "no chunk may run past an expired deadline");
                assert_eq!(total, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// Wraps an inner method and trips the token after `limit` head calls.
    struct CancelAfter<M> {
        inner: M,
        token: CancelToken,
        calls: std::sync::atomic::AtomicUsize,
        limit: usize,
    }

    impl<M: AttentionMethod> AttentionMethod for CancelAfter<M> {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn forward(
            &self,
            q: &Matrix,
            k: &Matrix,
            v: &Matrix,
        ) -> Result<sa_baselines::MethodOutput, TensorError> {
            let n = self
                .calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n + 1 >= self.limit {
                self.token.cancel();
            }
            self.inner.forward(q, k, v)
        }
    }

    #[test]
    fn mid_flight_cancel_stops_prefill_within_one_chunk() {
        // The acceptance bound: once the token trips, the prefill stops
        // at the next chunk boundary — partial progress is reported and
        // no further chunks run.
        let m = model();
        let tokens = m.tokenize_filler(160);
        let token = CancelToken::new();
        // 2 layers × 4 heads = 8 head calls per chunk: trip mid-chunk 2.
        let wrapper = CancelAfter {
            inner: FullAttention::new(),
            token: token.clone(),
            calls: std::sync::atomic::AtomicUsize::new(0),
            limit: 12,
        };
        let err = m
            .prefill_chunked_with(&tokens, 16, &wrapper, &token)
            .unwrap_err();
        // The trip is detected either at the prefill's chunk boundary or
        // inside the current chunk's per-head pool loop — both surface as
        // a typed Cancelled with partial progress, never a panic.
        match err {
            TensorError::Cancelled { completed, total, .. } => {
                assert!(completed < total, "partial progress: {completed}/{total}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let calls = wrapper.calls.load(std::sync::atomic::Ordering::Relaxed);
        assert!(calls <= 16, "no further chunk may start; saw {calls} head calls");
    }

    #[test]
    fn decode_session_honours_installed_cancel_token() {
        let m = model();
        let tokens = m.tokenize_filler(40);
        let mut session = m.begin_decode(&tokens, &FullAttention::new()).unwrap();
        let token = CancelToken::new();
        session.install_cancel(&token);
        session.step().unwrap(); // not yet tripped: steps run normally
        token.cancel();
        let err = session.step().unwrap_err();
        assert!(
            matches!(err, TensorError::Cancelled { site: "decode_step", .. }),
            "{err:?}"
        );
        // generate_in reports per-step progress when cancelled mid-run.
        let err = session.generate_in(5, 0..10).unwrap_err();
        match err {
            TensorError::Cancelled { site, completed, total } => {
                assert_eq!(site, "generate");
                assert_eq!(completed, 0);
                assert_eq!(total, 5);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
