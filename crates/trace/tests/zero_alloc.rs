//! Pins the "true no-op when disabled" claim: with tracing disabled,
//! span guards, counter adds, and histogram records perform **zero heap
//! allocations** on the calling thread.
//!
//! A counting global allocator tallies allocations per thread (a
//! const-initialized thread-local, so counting needs no allocation
//! itself and concurrent test threads don't pollute each other's
//! counts). This lives in its own integration-test binary because a
//! global allocator is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System` unchanged; the only
// addition is a thread-local counter bump, which does not allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

#[test]
fn disabled_probes_allocate_nothing() {
    // Warm up: intern the metrics and touch the TLS/clock once while
    // enabled, so the measurement below sees only steady-state cost.
    {
        let _session = sa_trace::scoped();
        let _s = sa_trace::span_in("warm", "up");
        sa_trace::metrics::counter("zero_alloc.counter").add(1);
        sa_trace::metrics::histogram("zero_alloc.hist").record(1);
    }
    let _ = sa_trace::drain();

    assert!(!sa_trace::enabled(), "tracing must be disabled here");
    let n = allocations_during(|| {
        for _ in 0..10_000 {
            let _g = sa_trace::span_in("hot", "disabled_span");
            let _l = sa_trace::span_labeled("hot", "disabled_label", || "never".to_string());
            sa_trace::counter_add!("zero_alloc.counter", 1);
            sa_trace::histogram_record!("zero_alloc.hist", 42);
        }
    });
    assert_eq!(n, 0, "disabled tracing hot path must not allocate");
    assert_eq!(sa_trace::metrics::counter("zero_alloc.counter").get(), 0);
}

#[test]
fn enabled_spans_amortize_buffer_allocations() {
    let _session = sa_trace::scoped();
    // Warm the thread buffer.
    {
        let _g = sa_trace::span_in("warm", "enabled_span");
    }
    // Unlabeled spans reuse the existing buffer: allocations stay far
    // below one per span (only the occasional Vec growth / flush).
    let spans = 1000u64;
    let n = allocations_during(|| {
        for _ in 0..spans {
            let _g = sa_trace::span_in("hot", "enabled_span");
        }
    });
    assert!(
        n < spans / 2,
        "enabled unlabeled spans should amortize allocations, saw {n} for {spans} spans"
    );
}
