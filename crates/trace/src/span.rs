//! RAII span guards, per-thread buffers, and the lock-free global sink.
//!
//! A span is opened with [`span`] / [`span_in`] / [`span_labeled`] and
//! closes when the returned guard drops. Finished spans are pushed onto
//! a thread-local buffer (no synchronization); when a buffer fills, or
//! its thread exits, the whole buffer is flushed into a global
//! Treiber-stack sink with one compare-and-swap. [`drain`] swaps the
//! stack head out atomically and returns every flushed event, sorted by
//! start time.
//!
//! Nesting is tracked with a per-thread depth counter, and each thread
//! gets a small sequential id, so the Chrome exporter can place events
//! on per-thread tracks where the viewer nests them by timestamp
//! containment. The worker pool's scoped threads call [`flush_thread`]
//! at the end of each parallel call — *before* the scope join, because
//! `thread::scope` can observe a thread as finished before its TLS
//! destructors (the backstop flush) have run — so a [`drain`]
//! immediately after a pool call sees every worker's events.

use std::cell::{Cell, RefCell};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use crate::clock;

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (the stage taxonomy: `stage1_sampling`, `head`, …).
    pub name: &'static str,
    /// Category (crate/subsystem: `core`, `model`, `pool`, …).
    pub cat: &'static str,
    /// Start, monotonic nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small sequential id of the recording thread.
    pub tid: u64,
    /// 0-based nesting depth on the recording thread at open time.
    pub depth: u32,
    /// Optional dynamic label (e.g. `"L2.H3"` for a head span).
    pub label: Option<String>,
}

impl SpanEvent {
    /// End timestamp (`start_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Flush threshold for the per-thread buffer.
const FLUSH_AT: usize = 4096;

/// Sequential thread-id source.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// One flushed buffer in the global sink (a Treiber stack node).
struct Chunk {
    events: Vec<SpanEvent>,
    next: *mut Chunk,
}

/// Head of the lock-free sink stack.
static SINK: AtomicPtr<Chunk> = AtomicPtr::new(ptr::null_mut());

/// Pushes a buffer of events onto the sink with a CAS loop. Wait-free in
/// practice (contention only when two threads flush simultaneously).
fn push_chunk(events: Vec<SpanEvent>) {
    if events.is_empty() {
        return;
    }
    let node = Box::into_raw(Box::new(Chunk {
        events,
        next: ptr::null_mut(),
    }));
    let mut head = SINK.load(Ordering::Acquire);
    loop {
        // SAFETY: `node` came from Box::into_raw above and is not yet
        // shared; writing its `next` field is exclusive access.
        unsafe { (*node).next = head };
        match SINK.compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(actual) => head = actual,
        }
    }
}

/// Per-thread state: id, current nesting depth, and the event buffer.
/// The `Drop` impl flushes the buffer when the thread exits.
struct ThreadBuf {
    tid: u64,
    depth: Cell<u32>,
    events: RefCell<Vec<SpanEvent>>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            depth: Cell::new(0),
            events: RefCell::new(Vec::new()),
        }
    }

    fn push(&self, event: SpanEvent) {
        // try_borrow_mut: a re-entrant push (impossible today, cheap to
        // guard) silently drops the event rather than panicking.
        if let Ok(mut buf) = self.events.try_borrow_mut() {
            buf.push(event);
            if buf.len() >= FLUSH_AT {
                let full = std::mem::take(&mut *buf);
                drop(buf);
                push_chunk(full);
            }
        }
    }

    fn flush(&self) {
        if let Ok(mut buf) = self.events.try_borrow_mut() {
            if !buf.is_empty() {
                push_chunk(std::mem::take(&mut *buf));
            }
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: ThreadBuf = ThreadBuf::new();
}

/// Flushes the calling thread's buffered events into the global sink.
/// [`drain`] calls this for the draining thread; other live threads
/// flush when their buffers fill or when they exit.
pub fn flush_thread() {
    let _ = TLS.try_with(|t| t.flush());
}

/// Swaps the sink empty and returns every flushed event (including the
/// calling thread's buffer), sorted by start time, then thread, then
/// depth — a stable chronological order for summaries and export.
pub fn drain() -> Vec<SpanEvent> {
    flush_thread();
    let mut head = SINK.swap(ptr::null_mut(), Ordering::AcqRel);
    let mut out = Vec::new();
    while !head.is_null() {
        // SAFETY: the swap above made this thread the unique owner of
        // the whole stack; each node was created by Box::into_raw in
        // push_chunk and is reclaimed exactly once here.
        let node = unsafe { Box::from_raw(head) };
        head = node.next;
        out.extend(node.events);
    }
    out.sort_by(|a, b| {
        (a.start_ns, a.tid, a.depth, a.name).cmp(&(b.start_ns, b.tid, b.depth, b.name))
    });
    out
}

/// An open span; records a [`SpanEvent`] when dropped. Obtained from
/// [`span`] / [`span_in`] / [`span_labeled`]; inert (`None` inside) when
/// tracing is disabled at open time.
#[must_use = "a span closes when its guard drops — bind it with `let _span = ...`"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    cat: &'static str,
    label: Option<String>,
    start_ns: u64,
    depth: u32,
}

fn open(cat: &'static str, name: &'static str, label: Option<String>) -> SpanGuard {
    // Depth is claimed at open so children observe the parent's +1 even
    // before the parent closes.
    let depth = TLS
        .try_with(|t| {
            let d = t.depth.get();
            t.depth.set(d + 1);
            d
        })
        .unwrap_or(0);
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            cat,
            label,
            start_ns: clock::now_ns(),
            depth,
        }),
    }
}

/// Opens a span in the default `span` category.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_in("span", name)
}

/// Opens a span with an explicit category (crate/subsystem name).
#[inline]
pub fn span_in(cat: &'static str, name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    open(cat, name, None)
}

/// Opens a span with a lazily computed label; the closure only runs when
/// tracing is enabled, so labels cost nothing in disabled mode.
#[inline]
pub fn span_labeled(
    cat: &'static str,
    name: &'static str,
    label: impl FnOnce() -> String,
) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    open(cat, name, Some(label()))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut a) = self.active.take() {
            let dur_ns = clock::now_ns().saturating_sub(a.start_ns);
            let _ = TLS.try_with(|t| {
                t.depth.set(t.depth.get().saturating_sub(1));
                t.push(SpanEvent {
                    name: a.name,
                    cat: a.cat,
                    start_ns: a.start_ns,
                    dur_ns,
                    tid: t.tid,
                    depth: a.depth,
                    label: a.label.take(),
                });
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoped;

    #[test]
    fn spans_nest_per_thread() {
        let _session = scoped();
        {
            let _outer = span_in("t", "outer");
            {
                let _inner = span_in("t", "inner");
                let _deepest = span_in("t", "deepest");
            }
            let _sibling = span_in("t", "sibling");
        }
        let events = drain();
        let by_name = |n: &str| {
            events
                .iter()
                .find(|e| e.name == n)
                .unwrap_or_else(|| panic!("span {n} missing"))
        };
        assert_eq!(by_name("outer").depth, 0);
        assert_eq!(by_name("inner").depth, 1);
        assert_eq!(by_name("deepest").depth, 2);
        assert_eq!(by_name("sibling").depth, 1);
        // Containment: children start no earlier and end no later.
        let outer = by_name("outer");
        for n in ["inner", "deepest", "sibling"] {
            let c = by_name(n);
            assert!(c.start_ns >= outer.start_ns, "{n} starts before parent");
            assert!(c.end_ns() <= outer.end_ns(), "{n} ends after parent");
        }
    }

    #[test]
    fn threads_get_distinct_ids_and_all_events_flush() {
        let _session = scoped();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let _sp = span_in("t", "worker_span");
                });
            }
        });
        let _main = span_in("t", "main_span");
        drop(_main);
        // The workers flush from their TLS destructors, which may still
        // be running for an instant after thread::scope returns (the
        // scope observes a thread as finished before its TLS teardown).
        // Keep draining until all three buffers have landed.
        let mut events = drain();
        for _ in 0..1000 {
            if events.iter().filter(|e| e.name == "worker_span").count() >= 3 {
                break;
            }
            std::thread::yield_now();
            events.extend(drain());
        }
        let workers: Vec<&SpanEvent> =
            events.iter().filter(|e| e.name == "worker_span").collect();
        assert_eq!(workers.len(), 3, "scoped threads must flush on exit");
        let mut tids: Vec<u64> = workers.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread has its own id");
        let main_ev = events.iter().find(|e| e.name == "main_span");
        assert!(main_ev.is_some());
    }

    #[test]
    fn labels_are_recorded_and_lazy() {
        let _session = scoped();
        {
            let _l = span_labeled("t", "labeled", || "L1.H2".to_string());
        }
        crate::set_enabled(false);
        {
            let _no = span_labeled("t", "off", || {
                panic!("label closure must not run while disabled")
            });
        }
        crate::set_enabled(true);
        let events = drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label.as_deref(), Some("L1.H2"));
    }

    #[test]
    fn buffer_overflow_flushes_mid_thread() {
        let _session = scoped();
        for _ in 0..(FLUSH_AT + 10) {
            let _s = span_in("t", "tick");
        }
        let events = drain();
        assert_eq!(events.len(), FLUSH_AT + 10);
    }

    #[test]
    fn drain_is_sorted_by_start_time() {
        let _session = scoped();
        for _ in 0..50 {
            let _s = span_in("t", "seq");
        }
        let events = drain();
        for w in events.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }
}
