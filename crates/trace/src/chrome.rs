//! Chrome trace-event export.
//!
//! Emits the [Trace Event Format] consumed by `chrome://tracing` and
//! Perfetto: one `ph:"X"` ("complete") event per finished span, with
//! microsecond `ts`/`dur`, a per-thread `tid` track, and the span's
//! nesting depth and label carried in `args`. The viewer nests complete
//! events on a track by timestamp containment, which matches exactly how
//! [`crate::span`] tracks depth — no explicit parent ids are needed.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::io;
use std::path::Path;

use sa_json::Json;

use crate::span::SpanEvent;

/// Nanoseconds → the format's microsecond floats (sub-µs precision is
/// preserved as a fraction, which the viewers accept).
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Builds the Chrome trace-event JSON document for a set of spans.
pub fn chrome_trace(events: &[SpanEvent]) -> Json {
    let trace_events: Vec<Json> = events
        .iter()
        .map(|e| {
            let mut args = vec![("depth".to_string(), Json::Int(i64::from(e.depth)))];
            if let Some(label) = &e.label {
                args.push(("label".to_string(), Json::Str(label.clone())));
            }
            Json::Object(vec![
                ("name".to_string(), Json::Str(e.name.to_string())),
                ("cat".to_string(), Json::Str(e.cat.to_string())),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("pid".to_string(), Json::Int(1)),
                ("tid".to_string(), Json::Int(e.tid as i64)),
                ("ts".to_string(), Json::Float(us(e.start_ns))),
                ("dur".to_string(), Json::Float(us(e.dur_ns))),
                ("args".to_string(), Json::Object(args)),
            ])
        })
        .collect();
    Json::Object(vec![
        ("traceEvents".to_string(), Json::Array(trace_events)),
        (
            "displayTimeUnit".to_string(),
            Json::Str("ms".to_string()),
        ),
    ])
}

/// Structural check for a Chrome trace document: top-level object with a
/// `traceEvents` array whose entries each carry the `ph:"X"` fields this
/// exporter writes. Returns the event count.
///
/// # Errors
///
/// Returns a description of the first structural violation found.
pub fn validate_chrome_trace(doc: &Json) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    for (i, e) in events.iter().enumerate() {
        let ctx = |field: &str| format!("traceEvents[{i}]: bad or missing {field}");
        e.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("name"))?;
        e.get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("cat"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("ph"))?;
        if ph != "X" {
            return Err(format!("traceEvents[{i}]: ph {ph:?} is not \"X\""));
        }
        e.get("pid")
            .and_then(Json::as_i64)
            .ok_or_else(|| ctx("pid"))?;
        e.get("tid")
            .and_then(Json::as_i64)
            .ok_or_else(|| ctx("tid"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("ts"))?;
        let dur = e
            .get("dur")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("dur"))?;
        if !ts.is_finite() || ts < 0.0 || !dur.is_finite() || dur < 0.0 {
            return Err(format!("traceEvents[{i}]: non-finite or negative ts/dur"));
        }
        e.get("args")
            .and_then(Json::as_object)
            .ok_or_else(|| ctx("args"))?;
    }
    Ok(events.len())
}

/// Writes the Chrome trace for `events` to `path` (pretty-printed so the
/// file is diffable).
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_chrome_trace(path: &Path, events: &[SpanEvent]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let doc = chrome_trace(events);
    std::fs::write(path, sa_json::to_string_pretty(&doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "outer",
                cat: "test",
                start_ns: 1_000,
                dur_ns: 10_000,
                tid: 0,
                depth: 0,
                label: None,
            },
            SpanEvent {
                name: "inner",
                cat: "test",
                start_ns: 2_500,
                dur_ns: 5_000,
                tid: 0,
                depth: 1,
                label: Some("L0.H1".to_string()),
            },
        ]
    }

    #[test]
    fn export_validates_and_round_trips_through_parser() {
        let doc = chrome_trace(&sample_events());
        assert_eq!(validate_chrome_trace(&doc), Ok(2));
        let text = sa_json::to_string_pretty(&doc);
        let back = sa_json::parse(&text).expect("exporter output parses");
        assert_eq!(validate_chrome_trace(&back), Ok(2));
        let events = back.get("traceEvents").and_then(Json::as_array).expect("array");
        assert_eq!(
            events[1].get("args").and_then(|a| a.get("label")).and_then(Json::as_str),
            Some("L0.H1")
        );
        let ts = events[0].get("ts").and_then(Json::as_f64).expect("ts");
        assert!((ts - 1.0).abs() < 1e-9, "1000 ns is 1 us, got {ts}");
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_chrome_trace(&Json::Object(vec![])).is_err());
        let bad_ph = Json::Object(vec![(
            "traceEvents".to_string(),
            Json::Array(vec![Json::Object(vec![
                ("name".to_string(), Json::Str("x".to_string())),
                ("cat".to_string(), Json::Str("t".to_string())),
                ("ph".to_string(), Json::Str("B".to_string())),
            ])]),
        )]);
        let err = validate_chrome_trace(&bad_ph).expect_err("ph B must fail");
        assert!(err.contains("ph"), "unexpected error: {err}");
    }

    #[test]
    fn write_creates_parent_and_emits_parseable_file() {
        let dir = std::env::temp_dir().join("sa_trace_chrome_test");
        let path = dir.join("nested").join("trace.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_chrome_trace(&path, &sample_events()).expect("write succeeds");
        let text = std::fs::read_to_string(&path).expect("file exists");
        let doc = sa_json::parse(&text).expect("file parses");
        assert_eq!(validate_chrome_trace(&doc), Ok(2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
