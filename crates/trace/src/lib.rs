//! # sa-trace
//!
//! The workspace's observability layer: a thread-aware hierarchical span
//! tracer, a metrics registry (counters, gauges, fixed-bucket
//! histograms), and Chrome-trace export — all hermetic (std + [`sa_json`]
//! only) and all **inert when disabled**.
//!
//! ## Why this crate exists
//!
//! The paper's headline claims are wall-clock claims: Table 4's stage
//! breakdown (sampling vs. filtering vs. sparse kernel) and the Figure
//! 5/6 speedups. Timing whole method calls from the outside
//! (`sa_bench::timing`) cannot attribute time to pipeline stages, and
//! the per-head `SampleAttentionStats` evaporate after each call. This
//! crate is the instrument every perf PR is judged with: stage spans in
//! `sa-core`, per-layer/per-head spans in `sa-model`, worker-pool
//! utilization counters in `sa_tensor::pool`, and two export formats
//! (a `chrome://tracing` JSON and a per-stage summary table).
//!
//! ## Design
//!
//! - **Single timing authority**: every wall-clock read in the pipeline
//!   crates goes through [`clock::now_ns`] (monotonic nanoseconds since
//!   a process-wide epoch). `scripts/verify.sh` greps the hot-path
//!   crates to keep `Instant::now` out of them.
//! - **RAII spans**: [`span`] / [`span_in`] / [`span_labeled`] return a
//!   guard; the span closes when the guard drops. Nesting depth is
//!   tracked per thread, so traces are hierarchical without explicit
//!   parent ids (Chrome's trace viewer nests `ph:"X"` events by
//!   timestamp containment per thread).
//! - **Per-thread buffers, lock-free sink**: finished spans land in a
//!   thread-local buffer; full buffers (and exiting threads) flush into
//!   a global Treiber-stack sink with a single CAS — no lock is ever
//!   taken on the recording path.
//! - **True no-op when disabled** (the default): every probe —
//!   [`span`], [`Counter::add`], [`Histogram::record`] — is one relaxed
//!   atomic load followed by an immediate return. No allocation, no
//!   clock read, no TLS access (`crates/trace/tests/zero_alloc.rs` pins
//!   the zero-allocation claim with a counting allocator). Tracing never
//!   touches computed values, so outputs are bitwise identical with
//!   tracing on or off — `tests/parallel_determinism.rs` pins that too.
//!
//! ## Use
//!
//! ```
//! let _session = sa_trace::scoped(); // enable + drain on drop (tests)
//! {
//!     let _outer = sa_trace::span_in("demo", "outer");
//!     let _inner = sa_trace::span_in("demo", "inner");
//!     sa_trace::metrics::counter("demo.events").add(1);
//! }
//! let events = sa_trace::drain();
//! assert_eq!(events.len(), 2);
//! let json = sa_trace::chrome::chrome_trace(&events);
//! assert!(sa_trace::chrome::validate_chrome_trace(&json).is_ok());
//! ```
//!
//! Binaries enable tracing via the `SA_TRACE=<path>` environment
//! variable ([`TraceSession::from_env`]): on [`TraceSession::finish`]
//! the collected events are written to `<path>` as a Chrome
//! trace-event JSON loadable in `chrome://tracing` / Perfetto.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

pub mod chrome;
pub mod clock;
pub mod metrics;
pub mod span;
pub mod summary;
pub mod timeseries;

pub use chrome::{chrome_trace, validate_chrome_trace, write_chrome_trace};
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot};
pub use span::{drain, flush_thread, span, span_in, span_labeled, SpanEvent, SpanGuard};
pub use summary::{summarize, StageSummary, TraceSummary};
pub use timeseries::{
    prometheus_text, MetricsExport, Timeline, TimelineBin, TimelineSeries, TimelineSnapshot,
};

/// Global on/off switch. Off by default; every probe checks this first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is currently enabled (one relaxed atomic load — this
/// is the entire disabled-mode cost of every probe).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off process-wide. Spans opened while enabled
/// still record on drop after a disable (the guard owns its state).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Serializes scoped tracing sessions (tests run concurrently within one
/// binary; the sink and registry are process-global).
static SESSION_LOCK: Mutex<()> = Mutex::new(());

fn session_lock() -> MutexGuard<'static, ()> {
    match SESSION_LOCK.lock() {
        Ok(g) => g,
        // A panicking test poisons the lock; the state it protects is
        // reset below anyway.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// An exclusive, self-cleaning tracing session for tests: holds a global
/// lock, clears leftover events/metrics, enables tracing, and on drop
/// disables tracing and drains anything still buffered.
pub struct ScopedTrace {
    _guard: MutexGuard<'static, ()>,
}

/// Starts an exclusive [`ScopedTrace`] session (the test-side
/// counterpart of [`TraceSession::from_env`]).
pub fn scoped() -> ScopedTrace {
    let guard = session_lock();
    let _ = span::drain();
    metrics::reset();
    set_enabled(true);
    ScopedTrace { _guard: guard }
}

impl Drop for ScopedTrace {
    fn drop(&mut self) {
        set_enabled(false);
        let _ = span::drain();
        metrics::reset();
    }
}

/// A process-level tracing session driven by the `SA_TRACE` environment
/// variable, for binaries (`trace_report`, the bench suite).
///
/// `SA_TRACE=<path>` enables tracing and [`finish`](Self::finish) writes
/// the Chrome trace to `<path>`; `SA_TRACE=1`/`on` enables tracing with
/// no file; unset/`0`/`off` leaves tracing disabled.
#[derive(Debug)]
pub struct TraceSession {
    path: Option<std::path::PathBuf>,
    active: bool,
}

impl TraceSession {
    /// Reads `SA_TRACE` and enables tracing accordingly.
    pub fn from_env() -> Self {
        match std::env::var("SA_TRACE") {
            Ok(v) if !v.is_empty() && v != "0" && v != "off" => {
                clock::init();
                set_enabled(true);
                let path = if v == "1" || v == "on" {
                    None
                } else {
                    Some(std::path::PathBuf::from(v))
                };
                TraceSession { path, active: true }
            }
            _ => TraceSession {
                path: None,
                active: false,
            },
        }
    }

    /// Enables tracing unconditionally (no export path). Used by
    /// binaries that aggregate in-process regardless of `SA_TRACE`.
    pub fn in_process() -> Self {
        clock::init();
        set_enabled(true);
        TraceSession {
            path: None,
            active: true,
        }
    }

    /// Whether this session turned tracing on.
    pub fn active(&self) -> bool {
        self.active
    }

    /// The export path requested via `SA_TRACE`, if any.
    pub fn path(&self) -> Option<&std::path::Path> {
        self.path.as_deref()
    }

    /// Disables tracing, drains all buffered events, and — if `SA_TRACE`
    /// named a path — writes the Chrome trace there.
    ///
    /// Returns the drained events and the written path (if any).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the trace file cannot be written; the
    /// drained events are lost in that case (the caller already printed
    /// its tables from them).
    pub fn finish(self) -> Result<(Vec<SpanEvent>, Option<std::path::PathBuf>), std::io::Error> {
        set_enabled(false);
        let events = span::drain();
        match &self.path {
            Some(p) => {
                chrome::write_chrome_trace(p, &events)?;
                Ok((events, self.path))
            }
            None => Ok((events, None)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        let _session = scoped();
        set_enabled(false);
        {
            let _s = span("invisible");
            metrics::counter("invisible.count").add(5);
        }
        assert!(drain().is_empty());
        assert_eq!(metrics::counter("invisible.count").get(), 0);
    }

    #[test]
    fn scoped_session_isolates_state() {
        {
            let _session = scoped();
            let _s = span("visible");
            drop(_s);
            assert_eq!(drain().len(), 1);
        }
        assert!(!enabled());
        assert!(drain().is_empty());
    }

    #[test]
    fn trace_session_from_env_inactive_without_var() {
        // SA_TRACE is not set in the test environment.
        if std::env::var("SA_TRACE").is_err() {
            let s = TraceSession::from_env();
            assert!(!s.active());
            assert!(s.path().is_none());
        }
    }

    #[test]
    fn in_process_session_collects_and_finishes() {
        let _lock = scoped(); // hold the session lock for exclusivity
        let session = TraceSession::in_process();
        {
            let _s = span_in("test", "finish_me");
        }
        let (events, path) = session.finish().expect("no io involved");
        assert!(path.is_none());
        assert!(events.iter().any(|e| e.name == "finish_me"));
        set_enabled(true); // restore for the ScopedTrace drop invariant
    }
}
