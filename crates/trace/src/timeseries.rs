//! Virtual-time metric timelines and Prometheus-style exposition.
//!
//! The registry in [`crate::metrics`] answers "how much, in total"; this
//! module answers "how much, *when*". A [`Timeline`] aggregates named
//! series into fixed-width bins keyed on the serving **virtual clock**
//! (the same millisecond timeline the planners in `sa-serve` run on), so
//! the rendered timeline is bit-identical at every `SA_THREADS` setting
//! — no wall-clock reads are involved.
//!
//! - [`Timeline::increment`] is the counter shape: "n things happened in
//!   this bin" (arrivals, sheds, evictions).
//! - [`Timeline::observe`] is the histogram shape: "this value occurred
//!   in this bin" (a TTFT sample, a pressure-rung level).
//! - [`Timeline::flush`] renders a [`TimelineSnapshot`]: series sorted
//!   by name, each with a **contiguous** run of bins from its first to
//!   its last occupied bin (gaps are emitted as zero bins so plots and
//!   diffs need no gap logic).
//!
//! [`prometheus_text`] renders a [`MetricsSnapshot`] in the Prometheus
//! text exposition format, and [`MetricsExport`] drives it from the
//! `SA_METRICS=<path>` environment variable — the metrics-side analogue
//! of [`TraceSession`](crate::TraceSession) (DESIGN.md §5j).

use crate::metrics::MetricsSnapshot;
use sa_json::impl_json_struct;
use std::collections::BTreeMap;

/// Per-bin aggregate state.
#[derive(Debug, Clone, Copy)]
struct BinAgg {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl BinAgg {
    fn new() -> Self {
        BinAgg {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Windowed aggregation of named series over fixed-width virtual-time
/// bins. Internally ordered maps, so iteration — and therefore
/// [`Timeline::flush`] output — is deterministic regardless of the
/// order series were touched.
#[derive(Debug)]
pub struct Timeline {
    bin_ms: u64,
    series: BTreeMap<String, BTreeMap<u64, BinAgg>>,
}

impl Timeline {
    /// A timeline with `bin_ms`-wide bins (clamped to ≥ 1 ms).
    pub fn new(bin_ms: u64) -> Self {
        Timeline {
            bin_ms: bin_ms.max(1),
            series: BTreeMap::new(),
        }
    }

    /// The bin width, ms.
    pub fn bin_ms(&self) -> u64 {
        self.bin_ms
    }

    fn bin_start(&self, t_ms: u64) -> u64 {
        t_ms / self.bin_ms * self.bin_ms
    }

    fn agg(&mut self, name: &str, t_ms: u64) -> &mut BinAgg {
        let start = self.bin_start(t_ms);
        self.series
            .entry(name.to_string())
            .or_default()
            .entry(start)
            .or_insert_with(BinAgg::new)
    }

    /// Counter shape: `n` occurrences at virtual time `t_ms`. The bin's
    /// `count` and `sum` both advance by `n`; `min`/`max` are untouched
    /// (they describe observed values, not occurrence counts).
    pub fn increment(&mut self, name: &str, t_ms: u64, n: u64) {
        let agg = self.agg(name, t_ms);
        agg.count = agg.count.saturating_add(n);
        agg.sum = agg.sum.saturating_add(n);
    }

    /// Histogram shape: value `v` observed at virtual time `t_ms`.
    pub fn observe(&mut self, name: &str, t_ms: u64, v: u64) {
        let agg = self.agg(name, t_ms);
        agg.count = agg.count.saturating_add(1);
        agg.sum = agg.sum.saturating_add(v);
        agg.min = agg.min.min(v);
        agg.max = agg.max.max(v);
    }

    /// Renders the deterministic snapshot: series name-sorted, each a
    /// contiguous bin run from its first to its last occupied bin with
    /// zero-filled gaps. Empty bins render `min` as 0.
    pub fn flush(&self) -> TimelineSnapshot {
        let mut series = Vec::with_capacity(self.series.len());
        for (name, bins) in &self.series {
            let (first, last) = match (bins.keys().next(), bins.keys().next_back()) {
                (Some(&f), Some(&l)) => (f, l),
                _ => continue,
            };
            let mut out = Vec::new();
            let mut start = first;
            loop {
                let bin = match bins.get(&start) {
                    Some(a) => TimelineBin {
                        start_ms: start,
                        count: a.count,
                        sum: a.sum,
                        min: if a.min == u64::MAX { 0 } else { a.min },
                        max: a.max,
                    },
                    None => TimelineBin {
                        start_ms: start,
                        count: 0,
                        sum: 0,
                        min: 0,
                        max: 0,
                    },
                };
                out.push(bin);
                if start >= last {
                    break;
                }
                start += self.bin_ms;
            }
            series.push(TimelineSeries {
                name: name.clone(),
                bins: out,
            });
        }
        TimelineSnapshot {
            bin_ms: self.bin_ms,
            series,
        }
    }
}

/// One rendered bin of one series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineBin {
    /// Bin start on the virtual clock, ms (inclusive; width `bin_ms`).
    pub start_ms: u64,
    /// Occurrences (increments) or observations in the bin.
    pub count: u64,
    /// Sum of increments / observed values.
    pub sum: u64,
    /// Minimum observed value (0 when the bin saw only increments).
    pub min: u64,
    /// Maximum observed value.
    pub max: u64,
}

impl_json_struct!(TimelineBin {
    start_ms,
    count,
    sum,
    min,
    max
});

/// One series of a flushed timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSeries {
    /// Series name.
    pub name: String,
    /// Contiguous bins from the first to the last occupied bin.
    pub bins: Vec<TimelineBin>,
}

impl_json_struct!(TimelineSeries { name, bins });

/// A flushed [`Timeline`]: what `serve_timeline` embeds in the
/// `sa.serve_timeline.v1` artifact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimelineSnapshot {
    /// Bin width, ms.
    pub bin_ms: u64,
    /// Name-sorted series.
    pub series: Vec<TimelineSeries>,
}

impl_json_struct!(TimelineSnapshot { bin_ms, series });

/// Maps a metric name into the Prometheus sample-name alphabet
/// (`[a-zA-Z0-9_:]`, non-digit first character): every other byte
/// becomes `_`. `serve.queue_wait_ms` → `serve_queue_wait_ms`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Renders a [`MetricsSnapshot`] in the Prometheus text exposition
/// format: counters and gauges as single samples, histograms as
/// summaries (`{quantile="..."}` samples plus `_sum`/`_count`, and an
/// `_overflow` counter for top-bucket saturation). Output order follows
/// the snapshot (name-sorted), so the text is deterministic.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    for g in &snap.gauges {
        let name = sanitize(&g.name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
    }
    for h in &snap.histograms {
        let name = sanitize(&h.name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
        out.push_str(&format!("{name}_overflow {}\n", h.overflow));
    }
    out
}

/// A metrics exposition session driven by the `SA_METRICS` environment
/// variable, for binaries: `SA_METRICS=<path>` enables the registry and
/// [`finish`](Self::finish) writes the Prometheus text there;
/// `SA_METRICS=1`/`on` enables with no file; unset/`0`/`off` is inert.
#[derive(Debug)]
pub struct MetricsExport {
    path: Option<std::path::PathBuf>,
    active: bool,
}

impl MetricsExport {
    /// Reads `SA_METRICS` and enables the metrics registry accordingly.
    pub fn from_env() -> Self {
        match std::env::var("SA_METRICS") {
            Ok(v) if !v.is_empty() && v != "0" && v != "off" => {
                crate::clock::init();
                crate::set_enabled(true);
                let path = if v == "1" || v == "on" {
                    None
                } else {
                    Some(std::path::PathBuf::from(v))
                };
                MetricsExport { path, active: true }
            }
            _ => MetricsExport {
                path: None,
                active: false,
            },
        }
    }

    /// Whether this session turned the registry on.
    pub fn active(&self) -> bool {
        self.active
    }

    /// The exposition path requested via `SA_METRICS`, if any.
    pub fn path(&self) -> Option<&std::path::Path> {
        self.path.as_deref()
    }

    /// Snapshots the registry and — if `SA_METRICS` named a path —
    /// writes the Prometheus text there. Does not disable tracing (a
    /// `TraceSession` may still be collecting spans).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the exposition file cannot be written.
    pub fn finish(self) -> Result<Option<std::path::PathBuf>, std::io::Error> {
        match &self.path {
            Some(p) => {
                let text = prometheus_text(&crate::metrics::snapshot());
                std::fs::write(p, text)?;
                Ok(self.path)
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterSnapshot, HistogramSnapshot};

    #[test]
    fn timeline_bins_are_contiguous_and_deterministic() {
        let mut tl = Timeline::new(100);
        tl.observe("b.ttft", 250, 40);
        tl.observe("b.ttft", 20, 10);
        tl.increment("a.arrivals", 510, 3);
        tl.increment("a.arrivals", 20, 1);
        let snap = tl.flush();
        assert_eq!(snap.bin_ms, 100);
        // Name-sorted series regardless of touch order.
        let names: Vec<&str> = snap.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a.arrivals", "b.ttft"]);
        // a.arrivals: bins 0..=500 contiguous, gaps zero-filled.
        let a = &snap.series[0];
        assert_eq!(a.bins.len(), 6);
        assert_eq!(a.bins[0].start_ms, 0);
        assert_eq!(a.bins[0].count, 1);
        assert!(a.bins[1..5].iter().all(|b| b.count == 0));
        assert_eq!(a.bins[5].start_ms, 500);
        assert_eq!(a.bins[5].sum, 3);
        // b.ttft: observe tracks min/max.
        let b = &snap.series[1];
        assert_eq!(b.bins[0].min, 10);
        assert_eq!(b.bins[0].max, 10);
        assert_eq!(b.bins[2].sum, 40);
        // Byte-identical re-flush.
        assert_eq!(sa_json::to_string(&snap), sa_json::to_string(&tl.flush()));
        let back: TimelineSnapshot =
            sa_json::from_str(&sa_json::to_string(&snap)).expect("snapshot round-trips");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_timeline_flushes_empty() {
        let snap = Timeline::new(0).flush();
        assert_eq!(snap.bin_ms, 1); // clamped
        assert!(snap.series.is_empty());
    }

    #[test]
    fn prometheus_text_sanitizes_and_exposes() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "serve.pressure.sheds".to_string(),
                value: 7,
            }],
            gauges: vec![],
            histograms: vec![HistogramSnapshot {
                name: "serve.ttft_ms".to_string(),
                count: 2,
                sum: 30,
                mean: 15.0,
                min: 10,
                max: 20,
                p50: 10,
                p95: 20,
                p99: 20,
                overflow: 0,
            }],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE serve_pressure_sheds counter\nserve_pressure_sheds 7\n"));
        assert!(text.contains("serve_ttft_ms{quantile=\"0.99\"} 20\n"));
        assert!(text.contains("serve_ttft_ms_sum 30\n"));
        assert!(text.contains("serve_ttft_ms_count 2\n"));
        assert!(text.contains("serve_ttft_ms_overflow 0\n"));
        assert_eq!(sanitize("9lives.x"), "_9lives_x");
    }

    #[test]
    fn metrics_export_inactive_without_var() {
        if std::env::var("SA_METRICS").is_err() {
            let e = MetricsExport::from_env();
            assert!(!e.active());
            assert!(e.path().is_none());
            assert!(e.finish().expect("no io involved").is_none());
        }
    }
}
