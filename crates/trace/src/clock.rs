//! The workspace's single timing authority.
//!
//! All pipeline timestamps are monotonic nanoseconds since a lazily
//! initialized process-wide epoch. Centralizing the clock here (rather
//! than scattering `Instant::now()` calls) keeps the hot-path crates
//! free of timing code when tracing is disabled and gives every span a
//! shared timebase, so cross-thread events interleave correctly in the
//! exported trace. `scripts/verify.sh` enforces the authority: no
//! `Instant::now` outside `sa-trace`/`sa-bench`.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Pins the epoch now (idempotent). Binaries call this at startup so
/// trace timestamps start near zero; otherwise the epoch is the first
/// [`now_ns`] call.
pub fn init() {
    let _ = EPOCH.get_or_init(Instant::now);
}

/// Monotonic nanoseconds since the process epoch.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_nonzero_after_work() {
        init();
        let a = now_ns();
        // Some real work so the clock visibly advances even at coarse
        // timer granularity.
        let mut acc = 0u64;
        for i in 0..100_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        let b = now_ns();
        assert!(b >= a, "clock went backwards: {a} -> {b}");
    }
}
