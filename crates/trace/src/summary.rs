//! Per-stage aggregation of drained spans, and the `trace_summary.json`
//! schema.
//!
//! [`summarize`] folds a drained event list into one [`StageSummary`]
//! row per `(cat, name)` pair with exact percentiles (computed from the
//! full sorted duration list — unlike the live [`crate::Histogram`],
//! which trades precision for O(1) hot-path cost). [`TraceSummary`] is
//! the document `trace_report` writes to `results/trace_summary.json`;
//! [`validate_summary`] is the schema authority both the binary and the
//! test suite check against.

use sa_json::{impl_json_struct, Json};

use crate::metrics::CounterSnapshot;
use crate::span::SpanEvent;

/// Aggregated timing for one span name within one category.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Span name (e.g. `stage1_sampling`).
    pub name: String,
    /// Span category (e.g. `core`).
    pub cat: String,
    /// Number of spans aggregated.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Mean duration, nanoseconds.
    pub mean_ns: u64,
    /// Minimum duration, nanoseconds.
    pub min_ns: u64,
    /// Maximum duration, nanoseconds.
    pub max_ns: u64,
    /// Exact median duration, nanoseconds.
    pub p50_ns: u64,
    /// Exact 95th-percentile duration, nanoseconds.
    pub p95_ns: u64,
    /// Exact 99th-percentile duration, nanoseconds.
    pub p99_ns: u64,
}

impl_json_struct!(StageSummary {
    name,
    cat,
    count,
    total_ns,
    mean_ns,
    min_ns,
    max_ns,
    p50_ns,
    p95_ns,
    p99_ns
});

/// Exact quantile of a sorted slice (nearest-rank method).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Groups events by `(cat, name)` and computes per-group duration
/// statistics, sorted by total time descending (the Table-4 reading
/// order: the most expensive stage first).
pub fn summarize(events: &[SpanEvent]) -> Vec<StageSummary> {
    let mut groups: Vec<(&str, &str, Vec<u64>)> = Vec::new();
    for e in events {
        match groups
            .iter_mut()
            .find(|(cat, name, _)| *cat == e.cat && *name == e.name)
        {
            Some((_, _, durs)) => durs.push(e.dur_ns),
            None => groups.push((e.cat, e.name, vec![e.dur_ns])),
        }
    }
    let mut out: Vec<StageSummary> = groups
        .into_iter()
        .map(|(cat, name, mut durs)| {
            durs.sort_unstable();
            let count = durs.len() as u64;
            let total: u64 = durs.iter().sum();
            StageSummary {
                name: name.to_string(),
                cat: cat.to_string(),
                count,
                total_ns: total,
                mean_ns: total / count.max(1),
                min_ns: durs.first().copied().unwrap_or(0),
                max_ns: durs.last().copied().unwrap_or(0),
                p50_ns: percentile(&durs, 0.50),
                p95_ns: percentile(&durs, 0.95),
                p99_ns: percentile(&durs, 0.99),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then_with(|| (a.cat.as_str(), a.name.as_str()).cmp(&(b.cat.as_str(), b.name.as_str())))
    });
    out
}

/// The `results/trace_summary.json` document: per-stage timing plus the
/// counter and fallback tallies from the traced run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// Prefill sequence length of the traced run.
    pub seq_len: usize,
    /// Worker threads used by the traced run.
    pub threads: usize,
    /// Per-stage timing rows, most expensive first.
    pub stages: Vec<StageSummary>,
    /// All registry counters at the end of the run.
    pub counters: Vec<CounterSnapshot>,
    /// Dense-fallback tally by [`FallbackReason`] name (non-`None`
    /// reasons only).
    pub fallbacks: Vec<(String, u64)>,
    /// Heads whose CRA threshold was not met within the index budget.
    pub heads_alpha_unsatisfied: u64,
    /// Heads that fell back to the dense path.
    pub fallback_heads: u64,
}

impl_json_struct!(TraceSummary {
    seq_len,
    threads,
    stages,
    counters,
    fallbacks,
    heads_alpha_unsatisfied,
    fallback_heads
});

/// Structural check for a parsed `trace_summary.json`: required keys,
/// well-formed stage rows with internally consistent statistics
/// (`min ≤ p50 ≤ p95 ≤ p99 ≤ max`, `count ≥ 1`). Returns the stage
/// count.
///
/// # Errors
///
/// Returns a description of the first structural violation found.
pub fn validate_summary(doc: &Json) -> Result<usize, String> {
    for key in ["seq_len", "threads", "heads_alpha_unsatisfied", "fallback_heads"] {
        doc.get(key)
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("missing or non-integer {key}"))?;
    }
    doc.get("counters")
        .and_then(Json::as_array)
        .ok_or("missing counters array")?;
    doc.get("fallbacks")
        .and_then(Json::as_array)
        .ok_or("missing fallbacks array")?;
    let stages = doc
        .get("stages")
        .and_then(Json::as_array)
        .ok_or("missing stages array")?;
    for (i, s) in stages.iter().enumerate() {
        let ctx = |field: &str| format!("stages[{i}]: bad or missing {field}");
        s.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("name"))?;
        s.get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("cat"))?;
        let int = |field: &str| {
            s.get(field)
                .and_then(Json::as_i64)
                .ok_or_else(|| ctx(field))
        };
        let count = int("count")?;
        if count < 1 {
            return Err(format!("stages[{i}]: count {count} < 1"));
        }
        int("total_ns")?;
        int("mean_ns")?;
        let (min, p50, p95, p99, max) = (
            int("min_ns")?,
            int("p50_ns")?,
            int("p95_ns")?,
            int("p99_ns")?,
            int("max_ns")?,
        );
        if !(min <= p50 && p50 <= p95 && p95 <= p99 && p99 <= max) {
            return Err(format!(
                "stages[{i}]: percentiles not ordered: min {min} p50 {p50} p95 {p95} p99 {p99} max {max}"
            ));
        }
    }
    Ok(stages.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(cat: &'static str, name: &'static str, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            name,
            cat,
            start_ns,
            dur_ns,
            tid: 0,
            depth: 0,
            label: None,
        }
    }

    #[test]
    fn summarize_groups_and_orders_by_total() {
        let events = vec![
            event("core", "cheap", 0, 10),
            event("core", "cheap", 20, 30),
            event("core", "expensive", 0, 1000),
            event("pool", "cheap", 0, 5),
        ];
        let stages = summarize(&events);
        assert_eq!(stages.len(), 3, "grouped by (cat, name)");
        assert_eq!(stages[0].name, "expensive");
        let cheap = stages
            .iter()
            .find(|s| s.cat == "core" && s.name == "cheap")
            .expect("core/cheap row");
        assert_eq!(cheap.count, 2);
        assert_eq!(cheap.total_ns, 40);
        assert_eq!(cheap.mean_ns, 20);
        assert_eq!(cheap.min_ns, 10);
        assert_eq!(cheap.max_ns, 30);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let durs: Vec<SpanEvent> = (1..=100).map(|i| event("t", "s", i, i)).collect();
        let stages = summarize(&durs);
        assert_eq!(stages[0].p50_ns, 50);
        assert_eq!(stages[0].p95_ns, 95);
        assert_eq!(stages[0].p99_ns, 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn summary_round_trips_and_validates() {
        let events = vec![event("core", "stage1_sampling", 0, 100)];
        let summary = TraceSummary {
            seq_len: 2048,
            threads: 4,
            stages: summarize(&events),
            counters: vec![CounterSnapshot {
                name: "core.heads".to_string(),
                value: 8,
            }],
            fallbacks: vec![("NonFiniteInputs".to_string(), 1)],
            heads_alpha_unsatisfied: 0,
            fallback_heads: 1,
        };
        let text = sa_json::to_string_pretty(&sa_json::ToJson::to_json(&summary));
        let doc = sa_json::parse(&text).expect("summary serializes to valid json");
        assert_eq!(validate_summary(&doc), Ok(1));
        let back: TraceSummary = sa_json::from_str(&text).expect("summary round-trips");
        assert_eq!(back, summary);
    }

    #[test]
    fn validate_rejects_inconsistent_stats() {
        let mut summary = TraceSummary {
            stages: summarize(&[event("t", "s", 0, 50)]),
            ..TraceSummary::default()
        };
        summary.stages[0].p95_ns = 10; // below p50
        let text = sa_json::to_string(&sa_json::ToJson::to_json(&summary));
        let doc = sa_json::parse(&text).expect("parses");
        let err = validate_summary(&doc).expect_err("unordered percentiles must fail");
        assert!(err.contains("percentiles"), "unexpected error: {err}");
        assert!(validate_summary(&Json::Object(vec![])).is_err());
    }
}
