//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are `&'static` and interned by name on first use — call sites
//! in hot loops should look a handle up once (the [`crate::counter_add!`]
//! and [`crate::histogram_record!`] macros cache the lookup in a
//! per-call-site `OnceLock`). Every mutation first checks
//! [`crate::enabled`], so a disabled build pays one relaxed atomic load
//! per probe and the registry stays at its zero state.
//!
//! ## Histogram bucket scheme
//!
//! Histograms use [`HISTOGRAM_BUCKETS`] = 64 power-of-two buckets:
//!
//! - bucket 0 holds exactly the value 0,
//! - bucket `i` for `1 ≤ i ≤ 62` holds values in `[2^(i-1), 2^i)`,
//! - bucket 63 is the **overflow bucket**: it holds every value
//!   `≥ 2^62` and its upper bound is reported as `u64::MAX`. Records
//!   landing there are additionally counted in
//!   [`Histogram::overflow`], so a saturating histogram is visible in
//!   snapshots instead of silently folding into the top bucket.
//!
//! This spans nanoseconds to hours with ≤ 2× resolution — the right
//! trade for latency percentile readouts (p50/p95/p99) that must cost
//! O(1) per record on the hot path. Quantiles are nearest-rank over
//! bucket upper bounds, clamped to the true recorded maximum: a
//! single-sample histogram reports that sample exactly, and an
//! all-overflow histogram reports its true maximum rather than
//! `u64::MAX` (both pinned by unit tests below).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use sa_json::impl_json_struct;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (no-op while tracing is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A last-value-wins gauge (also tracks the maximum ever set).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// Sets the gauge (no-op while tracing is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Maximum value ever set.
    pub fn max(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Number of power-of-two histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket (power-of-two) histogram with p50/p95/p99 readout.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    overflow: AtomicU64,
}

/// Bucket index for a value: 0 holds 0, bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound of bucket `i` (used as the percentile estimate: an
/// overestimate by at most 2×, consistent across runs).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Records a value (no-op while tracing is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let b = bucket_of(v);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        if b == HISTOGRAM_BUCKETS - 1 {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Number of recorded values that landed in the overflow bucket
    /// (values `≥ 2^62` — see the module docs on the bucket scheme).
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// where the cumulative count crosses `q · count` (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_upper(i).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            name: self.name.to_string(),
            count,
            sum: self.sum(),
            mean: if count == 0 {
                0.0
            } else {
                self.sum() as f64 / count as f64
            },
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            overflow: self.overflow(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

fn with_registry<R>(f: impl FnOnce(&mut Vec<Metric>) -> R) -> R {
    let mut guard = match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}

/// Interns (or returns the existing) counter `name`. O(registered
/// metrics) — cache the handle at hot call sites.
pub fn counter(name: &'static str) -> &'static Counter {
    with_registry(|reg| {
        for m in reg.iter() {
            if let Metric::Counter(c) = m {
                if c.name == name {
                    return *c;
                }
            }
        }
        let c: &'static Counter = Box::leak(Box::new(Counter {
            name,
            value: AtomicU64::new(0),
        }));
        reg.push(Metric::Counter(c));
        c
    })
}

/// Interns (or returns the existing) gauge `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    with_registry(|reg| {
        for m in reg.iter() {
            if let Metric::Gauge(g) = m {
                if g.name == name {
                    return *g;
                }
            }
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge {
            name,
            value: AtomicI64::new(0),
            max: AtomicI64::new(i64::MIN),
        }));
        reg.push(Metric::Gauge(g));
        g
    })
}

/// Interns (or returns the existing) histogram `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    with_registry(|reg| {
        for m in reg.iter() {
            if let Metric::Histogram(h) = m {
                if h.name == name {
                    return *h;
                }
            }
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram {
            name,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }));
        reg.push(Metric::Histogram(h));
        h
    })
}

/// Zeroes every registered metric (handles stay valid — the registry
/// interns for the process lifetime).
pub fn reset() {
    with_registry(|reg| {
        for m in reg.iter() {
            match m {
                Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => {
                    g.value.store(0, Ordering::Relaxed);
                    g.max.store(i64::MIN, Ordering::Relaxed);
                }
                Metric::Histogram(h) => h.reset(),
            }
        }
    });
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

impl_json_struct!(CounterSnapshot { name, value });

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
    /// Maximum value ever set.
    pub max: i64,
}

impl_json_struct!(GaugeSnapshot { name, value, max });

/// Point-in-time readout of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Mean recorded value.
    pub mean: f64,
    /// Minimum recorded value (0 when empty).
    pub min: u64,
    /// Maximum recorded value.
    pub max: u64,
    /// Median (bucket upper-bound estimate).
    pub p50: u64,
    /// 95th percentile (bucket upper-bound estimate).
    pub p95: u64,
    /// 99th percentile (bucket upper-bound estimate).
    pub p99: u64,
    /// Records that landed in the overflow bucket (values `≥ 2^62`).
    pub overflow: u64,
}

impl_json_struct!(HistogramSnapshot {
    name,
    count,
    sum,
    mean,
    min,
    max,
    p50,
    p95,
    p99,
    overflow: default
});

/// A full registry snapshot, name-sorted (deterministic output order
/// regardless of registration order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl_json_struct!(MetricsSnapshot {
    counters,
    gauges,
    histograms
});

/// Snapshots every registered metric (including zero-valued ones).
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = with_registry(|reg| {
        let mut s = MetricsSnapshot::default();
        for m in reg.iter() {
            match m {
                Metric::Counter(c) => s.counters.push(CounterSnapshot {
                    name: c.name.to_string(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => s.gauges.push(GaugeSnapshot {
                    name: g.name.to_string(),
                    value: g.get(),
                    max: g.max(),
                }),
                Metric::Histogram(h) => s.histograms.push(h.snapshot()),
            }
        }
        s
    });
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

/// Adds to a named counter, caching the registry lookup per call site.
/// Expands to a single relaxed atomic load while tracing is disabled.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            static __SA_TRACE_C: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            __SA_TRACE_C
                .get_or_init(|| $crate::metrics::counter($name))
                .add($n);
        }
    };
}

/// Records into a named histogram, caching the registry lookup per call
/// site. Expands to a single relaxed atomic load while tracing is
/// disabled.
#[macro_export]
macro_rules! histogram_record {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static __SA_TRACE_H: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            __SA_TRACE_H
                .get_or_init(|| $crate::metrics::histogram($name))
                .record($v);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoped;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let _session = scoped();
        let c = counter("test.counter_roundtrip");
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        assert!(std::ptr::eq(c, counter("test.counter_roundtrip")));
        let g = gauge("test.gauge_roundtrip");
        g.set(9);
        g.set(-2);
        assert_eq!(g.get(), -2);
        assert_eq!(g.max(), 9);
    }

    #[test]
    fn disabled_metrics_stay_zero() {
        let _session = scoped();
        crate::set_enabled(false);
        counter("test.disabled_counter").add(5);
        gauge("test.disabled_gauge").set(5);
        histogram("test.disabled_hist").record(5);
        assert_eq!(counter("test.disabled_counter").get(), 0);
        assert_eq!(gauge("test.disabled_gauge").get(), 0);
        assert_eq!(histogram("test.disabled_hist").count(), 0);
        crate::set_enabled(true);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let _session = scoped();
        let h = histogram("test.hist_quantiles");
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        // Power-of-two buckets overestimate by at most 2x.
        let p50 = h.quantile(0.5);
        assert!((500..=1000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) == 1000);
        assert_eq!(histogram("test.hist_empty").quantile(0.5), 0);
    }

    #[test]
    fn single_sample_quantile_is_exact() {
        let _session = scoped();
        // The nearest-rank readout clamps to the recorded max, so a
        // single sample is reported exactly at every quantile — not as
        // its bucket's power-of-two upper bound.
        for v in [0u64, 1, 3, 700, 1_000_003] {
            let h = histogram(match v {
                0 => "test.hist_single_0",
                1 => "test.hist_single_1",
                3 => "test.hist_single_3",
                700 => "test.hist_single_700",
                _ => "test.hist_single_big",
            });
            h.record(v);
            assert_eq!(h.count(), 1);
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "q={q} v={v}");
            }
        }
    }

    #[test]
    fn all_overflow_histogram_reports_true_max() {
        let _session = scoped();
        let h = histogram("test.hist_all_overflow");
        let lo = 1u64 << 62;
        let hi = (1u64 << 62) + 12_345;
        h.record(lo);
        h.record(hi);
        // Both land in the overflow bucket (upper bound u64::MAX); the
        // clamp keeps the readout at the true maximum.
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.quantile(0.5), hi);
        assert_eq!(h.quantile(0.99), hi);
        let snap = h.snapshot();
        assert_eq!(snap.overflow, 2);
        assert_eq!(snap.p99, hi);
        h.reset();
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_counter_tracks_only_the_top_bucket() {
        let _session = scoped();
        let h = histogram("test.hist_overflow_edges");
        h.record((1u64 << 62) - 1); // top in-range bucket
        assert_eq!(h.overflow(), 0);
        h.record(1u64 << 62); // first overflow value
        assert_eq!(h.overflow(), 1);
        h.record(u64::MAX);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bucket_layout_is_monotone() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        let mut prev = 0;
        for shift in 0..63 {
            let b = bucket_of(1u64 << shift);
            assert!(b >= prev);
            prev = b;
        }
        assert!(bucket_upper(5) > bucket_upper(4));
    }

    #[test]
    fn snapshot_is_sorted_and_round_trips() {
        let _session = scoped();
        counter("test.snap_b").add(2);
        counter("test.snap_a").add(1);
        histogram("test.snap_h").record(100);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let s = sa_json::to_string(&snap);
        let back: MetricsSnapshot = sa_json::from_str(&s).expect("snapshot round-trips");
        assert_eq!(back, snap);
    }

    #[test]
    fn macros_cache_and_record() {
        let _session = scoped();
        for _ in 0..10 {
            crate::counter_add!("test.macro_counter", 2);
            crate::histogram_record!("test.macro_hist", 7);
        }
        assert_eq!(counter("test.macro_counter").get(), 20);
        assert_eq!(histogram("test.macro_hist").count(), 10);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let _session = scoped();
        let c = counter("test.reset_counter");
        c.add(5);
        reset();
        assert_eq!(c.get(), 0);
        c.add(1);
        assert_eq!(c.get(), 1);
    }
}
