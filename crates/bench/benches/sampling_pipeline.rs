//! Criterion benchmarks of SampleAttention's mask-discovery pipeline:
//! stage-1 sampling, stage-2 filtering, and the end-to-end operator,
//! compared against full attention at the same shape. On CPU, as on GPU,
//! the discovery stages should be a small fraction of the dense
//! attention cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_core::filtering::{filter_kv_indices, KvRatioSchedule};
use sa_core::sampling::sample_attention_scores;
use sa_core::{SampleAttention, SampleAttentionConfig};
use sa_kernels::full_attention;
use sa_tensor::{DeterministicRng, Matrix};
use std::hint::black_box;

fn qkv(s: usize, d: usize) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(7);
    (
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
    )
}

fn bench_pipeline(c: &mut Criterion) {
    let d = 64;
    let mut group = c.benchmark_group("sampling_pipeline");
    group.sample_size(10);
    for &s in &[512usize, 2048] {
        let (q, k, v) = qkv(s, d);
        group.bench_with_input(BenchmarkId::new("stage1_sampling", s), &s, |b, _| {
            b.iter(|| black_box(sample_attention_scores(&q, &k, 0.05).unwrap()))
        });
        let sampled = sample_attention_scores(&q, &k, 0.05).unwrap();
        group.bench_with_input(BenchmarkId::new("stage2_filtering", s), &s, |b, _| {
            b.iter(|| {
                black_box(filter_kv_indices(
                    &sampled.column_scores,
                    0.95,
                    1.0,
                    &KvRatioSchedule::Exact,
                ))
            })
        });
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        group.bench_with_input(BenchmarkId::new("sample_attention_e2e", s), &s, |b, _| {
            b.iter(|| black_box(attn.forward(&q, &k, &v).unwrap().output))
        });
        group.bench_with_input(BenchmarkId::new("full_attention", s), &s, |b, _| {
            b.iter(|| black_box(full_attention(&q, &k, &v, true).unwrap().output))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
