//! Criterion benchmark of the full synthetic-transformer prefill with
//! different attention methods plugged in — the CPU analogue of the
//! paper's TTFT measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_baselines::{AttentionMethod, FullAttention, SampleAttentionMethod, StreamingLlm};
use sa_model::{ModelConfig, SyntheticTransformer};
use std::hint::black_box;

fn bench_prefill(c: &mut Criterion) {
    let model = SyntheticTransformer::new(ModelConfig::tiny(42)).expect("model");
    let mut group = c.benchmark_group("prefill_ttft");
    group.sample_size(10);
    for &s in &[256usize, 512] {
        let tokens = model.tokenize_filler(s);
        let methods: Vec<(&str, Box<dyn AttentionMethod>)> = vec![
            ("full", Box::new(FullAttention::new())),
            ("sample_attention", Box::new(SampleAttentionMethod::paper_default())),
            ("streaming_llm", Box::new(StreamingLlm::paper_config())),
        ];
        for (name, m) in &methods {
            group.bench_with_input(BenchmarkId::new(*name, s), &s, |b, _| {
                b.iter(|| black_box(model.prefill(&tokens, m.as_ref()).unwrap().hidden));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prefill);
criterion_main!(benches);
