//! Criterion micro-benchmarks of the attention kernels: naive full
//! attention vs the blocked flash kernel vs the block-sparse kernel at
//! several densities. The expected shape mirrors the paper's Figure 5(a):
//! sparse wall-clock scales with mask density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_kernels::{
    flash_attention, full_attention, sparse_flash_attention, FlashParams, StructuredMask,
};
use sa_tensor::{DeterministicRng, Matrix};
use std::hint::black_box;

fn qkv(s: usize, d: usize) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(42);
    (
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
    )
}

fn bench_kernels(c: &mut Criterion) {
    let d = 64;
    let mut group = c.benchmark_group("attention_kernels");
    group.sample_size(10);
    for &s in &[256usize, 512, 1024] {
        let (q, k, v) = qkv(s, d);
        group.bench_with_input(BenchmarkId::new("full", s), &s, |b, _| {
            b.iter(|| black_box(full_attention(&q, &k, &v, true).unwrap().output))
        });
        group.bench_with_input(BenchmarkId::new("flash", s), &s, |b, _| {
            b.iter(|| {
                black_box(
                    flash_attention(&q, &k, &v, true, FlashParams::default())
                        .unwrap()
                        .output,
                )
            })
        });
        for &window_ratio in &[0.05f32, 0.25] {
            let mask = StructuredMask::builder(s, s)
                .window_ratio(window_ratio)
                .sinks(4)
                .columns((0..s / 64).map(|i| i * 61 % s).collect())
                .build()
                .unwrap();
            let label = format!("sparse_w{:.0}%", window_ratio * 100.0);
            group.bench_with_input(BenchmarkId::new(label, s), &s, |b, _| {
                b.iter(|| black_box(sparse_flash_attention(&q, &k, &v, &mask).unwrap().output))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
