//! Shared analysis helpers for the sparsity experiments: per-head
//! probability matrices and sparsity-degree sweeps over the synthetic
//! models.

use sa_baselines::FullAttention;
use sa_kernels::attention_probs;
use sa_model::{PrefillResult, SyntheticTransformer};
use sa_tensor::{Matrix, TensorError};

/// Runs a full-attention prefill and returns the result (whose
/// `layer_inputs` feed per-head score recomputation).
pub fn reference_prefill(
    model: &SyntheticTransformer,
    tokens: &[u32],
) -> Result<PrefillResult, TensorError> {
    model.prefill(tokens, &FullAttention::new())
}

/// Exact probability matrix of head `(layer, head)` given a reference
/// prefill.
pub fn head_probs(
    model: &SyntheticTransformer,
    reference: &PrefillResult,
    layer: usize,
    head: usize,
) -> Result<Matrix, TensorError> {
    let hidden = &reference.layer_inputs[layer];
    let (q, k, _v) = model.layers()[layer].project_head(hidden, head)?;
    attention_probs(&q, &k, true)
}

/// Mean optimal sparsity degree `SD(alpha)` across all heads of `layer`.
pub fn layer_mean_sd(
    model: &SyntheticTransformer,
    reference: &PrefillResult,
    layer: usize,
    alpha: f32,
) -> Result<f64, TensorError> {
    let heads = model.config().num_heads;
    let mut sum = 0.0;
    for h in 0..heads {
        let p = head_probs(model, reference, layer, h)?;
        let (sd, _) = sa_core::sparsity::optimal_sparsity_degree(&p, alpha);
        sum += sd;
    }
    Ok(sum / heads as f64)
}

/// Mean SD across every head of every layer.
pub fn model_mean_sd(
    model: &SyntheticTransformer,
    reference: &PrefillResult,
    alpha: f32,
) -> Result<f64, TensorError> {
    let layers = model.config().num_layers;
    let mut sum = 0.0;
    for l in 0..layers {
        sum += layer_mean_sd(model, reference, l, alpha)?;
    }
    Ok(sum / layers as f64)
}
