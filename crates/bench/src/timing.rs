//! A std-only micro-benchmark harness: the hermetic replacement for the
//! former Criterion benches (see DESIGN.md, "Hermetic build policy").
//!
//! Each former bench target is now a `cargo run --release` binary
//! (`bench_attention_kernels`, `bench_sampling_pipeline`,
//! `bench_end_to_end`) built on this module: a [`Bench`] runs each
//! measured closure for a warmup phase followed by `trials` timed
//! iterations and reports min / median / p90 wall-clock times.
//!
//! This is deliberately simpler than Criterion — no outlier rejection or
//! statistical regression — but it is dependency-free, deterministic in
//! shape, and good enough to compare kernel variants at the factor-of-two
//! granularity the experiments discuss.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing summary of one measured case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case label (e.g. `"flash/s1024"`).
    pub label: String,
    /// Number of timed trials.
    pub trials: usize,
    /// Fastest trial.
    pub min: Duration,
    /// Median trial.
    pub median: Duration,
    /// 90th-percentile trial.
    pub p90: Duration,
}

impl Measurement {
    /// Formats as a fixed-width report row.
    pub fn row(&self) -> String {
        format!(
            "{:<40} {:>12} {:>12} {:>12}   ({} trials)",
            self.label,
            fmt_duration(self.min),
            fmt_duration(self.median),
            fmt_duration(self.p90),
            self.trials,
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of timed cases with shared warmup/trial settings.
#[derive(Debug)]
pub struct Bench {
    name: String,
    warmup: usize,
    trials: usize,
    results: Vec<Measurement>,
}

impl Bench {
    /// A bench group with the default 3 warmup + 15 timed trials.
    pub fn new(name: &str) -> Self {
        Bench {
            name: name.to_string(),
            warmup: 3,
            trials: 15,
            results: Vec::new(),
        }
    }

    /// Overrides the warmup iteration count.
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the timed trial count (clamped to at least 1).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Times `f` (warmup runs, then `trials` timed runs) and records the
    /// measurement. The closure's return value is passed through
    /// [`black_box`] so the optimiser cannot elide the work.
    pub fn run<T>(&mut self, label: &str, mut f: impl FnMut() -> T) -> &Measurement {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.trials);
        for _ in 0..self.trials {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        let m = Measurement {
            label: label.to_string(),
            trials: self.trials,
            min: samples[0],
            median: samples[samples.len() / 2],
            p90: samples[((samples.len() * 9) / 10).min(samples.len() - 1)],
        };
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements so far, in run order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders the full report (header + one row per measurement).
    pub fn report(&self) -> String {
        let mut out = format!(
            "## {}\n{:<40} {:>12} {:>12} {:>12}\n",
            self.name, "case", "min", "median", "p90"
        );
        for m in &self.results {
            out.push_str(&m.row());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_orders_statistics() {
        let mut b = Bench::new("unit").warmup(1).trials(9);
        let m = b.run("spin", || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(m.trials, 9);
        assert!(m.min <= m.median && m.median <= m.p90);
    }

    #[test]
    fn report_contains_all_rows() {
        let mut b = Bench::new("group").warmup(0).trials(2);
        b.run("a", || 1);
        b.run("b", || 2);
        let r = b.report();
        assert!(r.contains("## group"));
        assert!(r.contains("a") && r.contains("b"));
        assert_eq!(b.results().len(), 2);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
