//! A std-only micro-benchmark harness: the hermetic replacement for the
//! former Criterion benches (see DESIGN.md, "Hermetic build policy").
//!
//! Each former bench target is now a `cargo run --release` binary
//! (`bench_attention_kernels`, `bench_sampling_pipeline`,
//! `bench_end_to_end`) built on this module: a [`Bench`] runs each
//! measured closure for a warmup phase followed by `trials` timed
//! iterations and reports min / mean / median / p90 / p95 / p99 / max
//! wall-clock times (tail percentiles clamp to the slowest trial when
//! the trial count is small).
//!
//! This is deliberately simpler than Criterion — no outlier rejection or
//! statistical regression — but it is dependency-free, deterministic in
//! shape, and good enough to compare kernel variants at the factor-of-two
//! granularity the experiments discuss.

use std::hint::black_box;
use std::time::{Duration, Instant};

use sa_json::{Json, ToJson};
use sa_tensor::pool;

/// Timing summary of one measured case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case label (e.g. `"flash/s1024"`).
    pub label: String,
    /// Number of timed trials.
    pub trials: usize,
    /// Fastest trial.
    pub min: Duration,
    /// Mean trial time.
    pub mean: Duration,
    /// Median trial (alias of `p50`).
    pub median: Duration,
    /// 90th-percentile trial.
    pub p90: Duration,
    /// 95th-percentile trial.
    pub p95: Duration,
    /// 99th-percentile trial (the slowest trial for small trial counts).
    pub p99: Duration,
    /// Slowest trial.
    pub max: Duration,
}

impl Measurement {
    /// Builds the summary from raw trial samples (sorted internally).
    fn from_samples(label: &str, mut samples: Vec<Duration>) -> Self {
        samples.sort_unstable();
        let n = samples.len();
        let total: Duration = samples.iter().sum();
        let pick = |q: f64| samples[(((n as f64) * q) as usize).min(n - 1)];
        Measurement {
            label: label.to_string(),
            trials: n,
            min: samples[0],
            mean: total / n as u32,
            median: pick(0.50),
            p90: pick(0.90),
            p95: pick(0.95),
            p99: pick(0.99),
            max: samples[n - 1],
        }
    }

    /// Formats as a fixed-width report row.
    pub fn row(&self) -> String {
        format!(
            "{:<40} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}   ({} trials)",
            self.label,
            fmt_duration(self.min),
            fmt_duration(self.mean),
            fmt_duration(self.median),
            fmt_duration(self.p95),
            fmt_duration(self.p99),
            fmt_duration(self.max),
            self.trials,
        )
    }
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        let ns = |d: Duration| (d.as_nanos() as u64).to_json();
        Json::Object(vec![
            ("label".to_string(), self.label.to_json()),
            ("trials".to_string(), (self.trials as u64).to_json()),
            ("min_ns".to_string(), ns(self.min)),
            ("mean_ns".to_string(), ns(self.mean)),
            ("median_ns".to_string(), ns(self.median)),
            ("p50_ns".to_string(), ns(self.median)),
            ("p90_ns".to_string(), ns(self.p90)),
            ("p95_ns".to_string(), ns(self.p95)),
            ("p99_ns".to_string(), ns(self.p99)),
            ("max_ns".to_string(), ns(self.max)),
        ])
    }
}

/// A serial-vs-parallel pair measured by
/// [`Bench::run_serial_parallel`]: the same closure timed under
/// `SA_THREADS=1` and at the session's default worker count.
#[derive(Debug, Clone)]
pub struct SerialParallelPair {
    /// The serial (1-thread) measurement.
    pub serial: Measurement,
    /// The parallel (default-thread-count) measurement.
    pub parallel: Measurement,
    /// Worker count used for the parallel run.
    pub threads: usize,
    /// `serial.median / parallel.median` (1.0 when the pool has a single
    /// worker, since both runs are then the same configuration).
    pub speedup: f64,
}

impl ToJson for SerialParallelPair {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("serial".to_string(), self.serial.to_json()),
            ("parallel".to_string(), self.parallel.to_json()),
            ("threads".to_string(), (self.threads as u64).to_json()),
            ("speedup".to_string(), self.speedup.to_json()),
        ])
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of timed cases with shared warmup/trial settings.
#[derive(Debug)]
pub struct Bench {
    name: String,
    warmup: usize,
    trials: usize,
    results: Vec<Measurement>,
    pairs: Vec<SerialParallelPair>,
}

impl Bench {
    /// A bench group with the default 3 warmup + 15 timed trials.
    pub fn new(name: &str) -> Self {
        Bench {
            name: name.to_string(),
            warmup: 3,
            trials: 15,
            results: Vec::new(),
            pairs: Vec::new(),
        }
    }

    /// Overrides the warmup iteration count.
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the timed trial count (clamped to at least 1).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Times `f` (warmup runs, then `trials` timed runs) and records the
    /// measurement. The closure's return value is passed through
    /// [`black_box`] so the optimiser cannot elide the work.
    pub fn run<T>(&mut self, label: &str, mut f: impl FnMut() -> T) -> &Measurement {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.trials);
        for _ in 0..self.trials {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        self.results.push(Measurement::from_samples(label, samples));
        self.results.last().expect("just pushed")
    }

    /// Times `f` twice — pinned to one worker (the `SA_THREADS=1`
    /// configuration) and at the session's default worker count — and
    /// records a [`SerialParallelPair`] with the median-based speedup.
    ///
    /// Both runs execute identical arithmetic (the pool contract is
    /// bit-determinism across thread counts), so the pair isolates pure
    /// scheduling overhead/benefit. On a single-core host both legs are
    /// the same configuration and the speedup hovers around 1.0.
    pub fn run_serial_parallel<T>(
        &mut self,
        label: &str,
        mut f: impl FnMut() -> T,
    ) -> &SerialParallelPair {
        let serial = pool::with_threads(1, || {
            self.run(&format!("{label}/serial"), &mut f).clone()
        });
        let threads = pool::current_threads();
        let parallel = self
            .run(&format!("{label}/par{threads}"), &mut f)
            .clone();
        let speedup = if parallel.median.as_nanos() == 0 {
            1.0
        } else {
            serial.median.as_nanos() as f64 / parallel.median.as_nanos() as f64
        };
        self.pairs.push(SerialParallelPair {
            serial,
            parallel,
            threads,
            speedup,
        });
        self.pairs.last().expect("just pushed")
    }

    /// All measurements so far, in run order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// All serial-vs-parallel pairs recorded so far, in run order.
    pub fn pairs(&self) -> &[SerialParallelPair] {
        &self.pairs
    }

    /// Renders the full report (header + one row per measurement).
    pub fn report(&self) -> String {
        let mut out = format!(
            "## {}\n{:<40} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            self.name, "case", "min", "mean", "median", "p95", "p99", "max"
        );
        for m in &self.results {
            out.push_str(&m.row());
            out.push('\n');
        }
        if !self.pairs.is_empty() {
            out.push_str(&format!(
                "{:<40} {:>12} {:>12} {:>9}\n",
                "serial vs parallel", "serial", "parallel", "speedup"
            ));
            for p in &self.pairs {
                let label = p
                    .serial
                    .label
                    .strip_suffix("/serial")
                    .unwrap_or(&p.serial.label);
                out.push_str(&format!(
                    "{:<40} {:>12} {:>12} {:>8.2}x   ({} threads)\n",
                    label,
                    fmt_duration(p.serial.median),
                    fmt_duration(p.parallel.median),
                    p.speedup,
                    p.threads,
                ));
            }
        }
        out
    }
}

impl ToJson for Bench {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_string(), self.name.to_json()),
            ("warmup".to_string(), (self.warmup as u64).to_json()),
            ("trials".to_string(), (self.trials as u64).to_json()),
            ("results".to_string(), self.results.to_json()),
            ("serial_vs_parallel".to_string(), self.pairs.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_orders_statistics() {
        let mut b = Bench::new("unit").warmup(1).trials(9);
        let m = b.run("spin", || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(m.trials, 9);
        assert!(m.min <= m.median && m.median <= m.p90);
        assert!(m.p90 <= m.p95 && m.p95 <= m.p99 && m.p99 <= m.max);
        assert!(m.min <= m.mean && m.mean <= m.max);
    }

    #[test]
    fn from_samples_statistics_are_exact() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_nanos).collect();
        let m = Measurement::from_samples("exact", samples);
        assert_eq!(m.min, Duration::from_nanos(1));
        assert_eq!(m.max, Duration::from_nanos(100));
        assert_eq!(m.median, Duration::from_nanos(51));
        assert_eq!(m.p95, Duration::from_nanos(96));
        assert_eq!(m.p99, Duration::from_nanos(100));
        assert_eq!(m.mean, Duration::from_nanos(50)); // 5050/100 truncated
    }

    #[test]
    fn report_contains_all_rows() {
        let mut b = Bench::new("group").warmup(0).trials(2);
        b.run("a", || 1);
        b.run("b", || 2);
        let r = b.report();
        assert!(r.contains("## group"));
        assert!(r.contains("a") && r.contains("b"));
        assert_eq!(b.results().len(), 2);
    }

    #[test]
    fn serial_parallel_pair_records_both_legs() {
        let mut b = Bench::new("pairs").warmup(0).trials(3);
        let p = b.run_serial_parallel("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(p.serial.label.ends_with("/serial"));
        assert!(p.threads >= 1);
        assert!(p.speedup.is_finite() && p.speedup > 0.0);
        assert_eq!(b.pairs().len(), 1);
        // Both legs also land in the flat results list.
        assert_eq!(b.results().len(), 2);
        assert!(b.report().contains("speedup"));
    }

    #[test]
    fn bench_serializes_to_json() {
        let mut b = Bench::new("json").warmup(0).trials(1);
        b.run("a", || 1);
        b.run_serial_parallel("b", || 2);
        let text = b.to_json().render(None);
        assert!(text.contains("\"serial_vs_parallel\""));
        assert!(text.contains("median_ns"));
        assert!(text.contains("speedup"));
        for key in ["mean_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns"] {
            assert!(text.contains(key), "missing {key} in BENCH json");
        }
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
