//! recovery_bench: resume-from-checkpoint vs retry-from-scratch under
//! a fault storm.
//!
//! Both legs replay the same seeded [`sa_serve::fault_storm_workload`]
//! through the continuous-batching planner with configs that differ in
//! exactly one bit: [`recovery_enabled`](sa_serve::ServeConfig::recovery_enabled).
//! With recovery **on**, every crashed attempt resumes from its
//! chunk-boundary checkpoint and recomputes at most the one in-flight
//! chunk; with recovery **off**, it retries from scratch and recomputes
//! everything the crashed attempt had completed. The bench asserts the
//! recovery contract on every point:
//!
//! - **strictly less recompute** — resume recomputes fewer prefill
//!   tokens than scratch (the storm guarantees crashes with progress
//!   worth preserving);
//! - **no worse goodput** — served-within-deadline throughput with
//!   recovery on is at least the scratch baseline's;
//! - **recovery actually ran** — every point tallies at least one
//!   resumed attempt.
//!
//! One point also replays through the *executing* scheduler
//! ([`Scheduler::run_continuous`]) at `SA_THREADS` 1, 2, and the
//! default, asserting the recovered ledgers are bit-identical and
//! account for every request — crash recovery must not cost the repo
//! its determinism contract.
//!
//! Outputs:
//! - stdout: the per-point comparison table and `serve.*` counters;
//! - `results/recovery.json`: schema [`SCHEMA`].
//!
//! Flags: `--seed <u64>`, `--quick` (smaller storm points), `--out <dir>`.

use sa_bench::{render_table, write_json, Args};
use sa_serve::{fault_storm_workload, Ledger, Outcome, Scheduler, ServeConfig, SloSummary};
use sa_tensor::pool;
use sa_trace::metrics;

/// One storm point's recovery-vs-scratch comparison.
#[derive(Debug, Clone, PartialEq)]
struct RecoveryPoint {
    /// Requests in the storm.
    requests: u64,
    /// Workload / scheduler seed of this point.
    seed: u64,
    /// Prefill tokens the streams offered (prompt + decode tokens) —
    /// the denominator of the wasted-work ratios.
    offered_tokens: u64,
    /// Attempts that resumed from a checkpoint (recovery leg).
    recovered_attempts: u64,
    /// Prefill tokens recomputed after crashes, recovery on.
    recomputed_tokens_resume: u64,
    /// Prefill tokens recomputed after crashes, recovery off.
    recomputed_tokens_scratch: u64,
    /// `recomputed / offered`, recovery on.
    wasted_ratio_resume: f64,
    /// `recomputed / offered`, recovery off.
    wasted_ratio_scratch: f64,
    /// Requests served, recovery on.
    served_resume: u64,
    /// Requests served, recovery off.
    served_scratch: u64,
    /// Served-within-deadline per virtual second, recovery on.
    goodput_resume: f64,
    /// Served-within-deadline per virtual second, recovery off.
    goodput_scratch: f64,
}

sa_json::impl_json_struct!(RecoveryPoint {
    requests,
    seed,
    offered_tokens,
    recovered_attempts,
    recomputed_tokens_resume,
    recomputed_tokens_scratch,
    wasted_ratio_resume,
    wasted_ratio_scratch,
    served_resume,
    served_scratch,
    goodput_resume,
    goodput_scratch
});

/// The bench's results-file payload.
#[derive(Debug, Clone, PartialEq)]
struct RecoveryReport {
    /// Results-file schema tag ([`SCHEMA`]).
    schema: String,
    /// Master seed (point seeds derive from it).
    seed: u64,
    /// Per-point comparisons, smallest storm first.
    points: Vec<RecoveryPoint>,
    /// Worker-thread counts of the execution identity check.
    thread_counts: Vec<u64>,
    /// Whether the executed recovery ledger was bit-identical at every
    /// replayed thread count.
    identical_across_threads: bool,
    /// Checkpoints captured during the execution identity check.
    checkpoint_snapshots: u64,
    /// Checkpoints restored during the execution identity check.
    checkpoint_restores: u64,
    /// The canonical executed ledger (single-threaded replay).
    ledger: Ledger,
}

sa_json::impl_json_struct!(RecoveryReport {
    schema,
    seed,
    points,
    thread_counts,
    identical_across_threads,
    checkpoint_snapshots,
    checkpoint_restores,
    ledger
});

/// Schema tag of `results/recovery.json`.
const SCHEMA: &str = "sa.recovery.v1";

/// The bench's config: the requested leg over a doubled memory budget.
/// The storm's long prompts would otherwise push the planner into the
/// governor's Critical regime, where a single urgent giant can be shed
/// in one leg and placed in the other purely on admission timing —
/// that pressure ladder is `chaos_soak`'s contract; this bench isolates
/// what crash recovery itself does to recompute and goodput.
fn bench_cfg(seed: u64, recovery: bool) -> ServeConfig {
    let base = ServeConfig::default();
    ServeConfig {
        seed,
        recovery_enabled: recovery,
        mem_budget_bytes: base.mem_budget_bytes * 2,
        ..base
    }
}

/// Plans one leg and reduces it to the point's tallies.
fn plan_leg(seed: u64, recovery: bool, requests: &[sa_serve::Request]) -> (u64, u64, u64, f64) {
    let cfg = bench_cfg(seed, recovery);
    let scheduler = Scheduler::new(cfg).expect("tiny model config is valid");
    let plans = scheduler.plan_continuous(requests);
    let recovered: u64 = plans.iter().map(|p| p.recovered_attempts).sum();
    let recomputed: u64 = plans.iter().map(|p| p.recomputed_tokens).sum();
    let slo = SloSummary::from_continuous_plans("continuous", &plans, requests);
    (recovered, recomputed, slo.served, slo.goodput_per_sec)
}

fn main() {
    let args = Args::parse();
    // Counters are gated on the tracing switch; the bench wants the
    // checkpoint counters live for the execution identity check.
    sa_trace::set_enabled(true);
    metrics::reset();

    // Injected crashes are *expected* to panic inside the pool's
    // containment; keep their backtraces off the bench's output while
    // leaving any unexpected panic loudly visible.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected"));
        if !injected {
            default_hook(info);
        }
    }));

    let sizes: &[usize] = if args.quick { &[12, 24] } else { &[24, 48, 96] };
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seed = args.seed.wrapping_add(i as u64);
        let requests = fault_storm_workload(seed, n);
        let offered: u64 = requests
            .iter()
            .map(|r| (r.seq_len + r.new_tokens as usize) as u64)
            .sum();

        let (recovered, rec_resume, served_resume, goodput_resume) =
            plan_leg(seed, true, &requests);
        let (scratch_recovered, rec_scratch, served_scratch, goodput_scratch) =
            plan_leg(seed, false, &requests);

        // The recovery contract, on every point.
        assert_eq!(scratch_recovered, 0, "scratch leg cannot resume");
        assert!(recovered > 0, "storm of {n} never exercised recovery");
        assert!(
            rec_resume < rec_scratch,
            "resume recomputed {rec_resume} tokens, scratch only {rec_scratch} — \
             checkpoints must strictly reduce recompute"
        );
        assert!(
            goodput_resume >= goodput_scratch,
            "recovery goodput {goodput_resume:.3}/s fell below scratch {goodput_scratch:.3}/s"
        );

        rows.push(vec![
            n.to_string(),
            recovered.to_string(),
            rec_resume.to_string(),
            rec_scratch.to_string(),
            format!("{:.3}", rec_resume as f64 / offered as f64),
            format!("{:.3}", rec_scratch as f64 / offered as f64),
            format!("{served_resume}/{served_scratch}"),
            format!("{goodput_resume:.3}"),
            format!("{goodput_scratch:.3}"),
        ]);
        points.push(RecoveryPoint {
            requests: n as u64,
            seed,
            offered_tokens: offered,
            recovered_attempts: recovered,
            recomputed_tokens_resume: rec_resume,
            recomputed_tokens_scratch: rec_scratch,
            wasted_ratio_resume: rec_resume as f64 / offered as f64,
            wasted_ratio_scratch: rec_scratch as f64 / offered as f64,
            served_resume,
            served_scratch,
            goodput_resume,
            goodput_scratch,
        });
    }

    println!("recovery bench: fault storms, seed {}\n", args.seed);
    println!(
        "{}",
        render_table(
            &[
                "requests",
                "resumed",
                "recompute(resume)",
                "recompute(scratch)",
                "wasted(resume)",
                "wasted(scratch)",
                "served r/s",
                "goodput(resume)",
                "goodput(scratch)",
            ],
            &rows
        )
    );

    // --- Execution identity check: the smallest point, with recovery
    // on, through the real scheduler at several thread counts. ---
    let exec_seed = args.seed;
    let exec_requests = fault_storm_workload(exec_seed, sizes[0]);
    let exec = Scheduler::new(bench_cfg(exec_seed, true)).expect("tiny model config is valid");

    let default_threads = pool::current_threads();
    let mut thread_counts: Vec<usize> = Vec::new();
    for t in [1, 2, default_threads] {
        if !thread_counts.contains(&t) {
            thread_counts.push(t);
        }
    }
    let mut ledgers: Vec<Ledger> = Vec::new();
    for &t in &thread_counts {
        let ledger = pool::with_threads(t, || exec.run_continuous(&exec_requests))
            .expect("continuous replay never fails");
        ledger
            .validate(&exec_requests)
            .expect("recovered ledger accounts for every request");
        ledgers.push(ledger);
    }
    let canonical = &ledgers[0];
    let identical = ledgers.iter().all(|l| l == canonical);
    assert!(identical, "recovered ledger differs across thread counts");
    assert!(
        canonical.count(Outcome::Served) > 0,
        "execution leg served nothing"
    );
    let exec_recovered: u64 = canonical.records.iter().map(|r| r.recovered_attempts).sum();
    assert!(exec_recovered > 0, "execution leg never resumed a checkpoint");

    let snap = metrics::snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let serve_counters: Vec<Vec<String>> = snap
        .counters
        .iter()
        .filter(|c| c.name.starts_with("serve."))
        .map(|c| vec![c.name.clone(), c.value.to_string()])
        .collect();
    println!("{}", render_table(&["counter", "value"], &serve_counters));
    let snapshots = counter("serve.checkpoint.snapshots");
    let restores = counter("serve.checkpoint.restores");
    assert!(snapshots > 0, "execution leg captured no checkpoints");
    assert!(restores > 0, "execution leg restored no checkpoints");

    let report = RecoveryReport {
        schema: SCHEMA.to_string(),
        seed: args.seed,
        points,
        thread_counts: thread_counts.iter().map(|&t| t as u64).collect(),
        identical_across_threads: identical,
        checkpoint_snapshots: snapshots,
        checkpoint_restores: restores,
        ledger: canonical.clone(),
    };
    if let Some(path) = write_json(&args, "recovery", &report) {
        println!("wrote {}", path.display());
    }
    println!(
        "verdict: {} storm points, resume strictly cheaper on all, ledgers identical at threads {:?}",
        sizes.len(),
        thread_counts
    );
}
