//! trace_report: runs a seeded SampleAttention prefill under `sa-trace`
//! and renders the measured per-stage / per-head breakdown.
//!
//! This is the observability counterpart of `table4_breakdown`'s
//! roofline model: the same stage taxonomy (sampling → filtering →
//! mask merge → sparse kernel), but timed from live spans instead of
//! predicted from FLOP counts. The paper's Table 4 ordering — the two
//! index-building stages cost far less than the sparse kernel they
//! feed — is asserted, not just printed.
//!
//! Outputs:
//! - stdout: per-stage table (count, total, mean, p50/p95/p99),
//!   per-head table, counter/histogram registry dump, fallback tally;
//! - `results/trace_summary.json` (schema-checked on write via
//!   [`sa_trace::summary::validate_summary`]);
//! - `SA_TRACE=<path>`: additionally exports the Chrome trace-event
//!   JSON to `<path>` (re-read and schema-checked before exiting).
//!
//! Flags: `--seed <u64>` (model seed), `--quick` (512-token prefill
//! instead of 2048), `--out <dir>` (results directory).

use sa_baselines::SampleAttentionMethod;
use sa_bench::{f, load_json, render_table, write_json, Args};
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_trace::summary::{summarize, validate_summary, StageSummary, TraceSummary};
use sa_trace::TraceSession;

/// µs with two decimals from a nanosecond count.
fn us(ns: u64) -> String {
    f(ns as f64 / 1000.0, 2)
}

fn main() {
    let args = Args::parse();
    let seq_len = if args.quick { 512 } else { 2048 };

    // Enable tracing before any pipeline work. SA_TRACE=<path> also
    // exports the Chrome trace; otherwise aggregate purely in-process.
    let session = {
        let from_env = TraceSession::from_env();
        if from_env.active() {
            from_env
        } else {
            TraceSession::in_process()
        }
    };
    sa_trace::metrics::reset();

    let model =
        SyntheticTransformer::new(ModelConfig::tiny(args.seed)).expect("tiny config is valid");
    let tokens = model.tokenize_filler(seq_len);
    let method = SampleAttentionMethod::paper_default();
    let result = model.prefill(&tokens, &method).expect("prefill succeeds");

    let fallback_tally: Vec<(String, u64)> = result
        .fallback_tally()
        .into_iter()
        .map(|(reason, n)| (reason.as_str().to_string(), n as u64))
        .collect();
    let heads_alpha_unsatisfied = result.heads_alpha_unsatisfied() as u64;
    let fallback_heads = result.fallback_heads() as u64;

    let metrics = sa_trace::metrics::snapshot();
    let (events, chrome_path) = session.finish().expect("trace export writes");
    let stages = summarize(&events);

    println!(
        "Measured prefill breakdown (seq_len={seq_len}, threads={}, seed={})\n",
        sa_tensor::pool::current_threads(),
        args.seed
    );
    let stage_rows: Vec<Vec<String>> = stages
        .iter()
        .map(|s| {
            vec![
                format!("{}/{}", s.cat, s.name),
                s.count.to_string(),
                us(s.total_ns),
                us(s.mean_ns),
                us(s.p50_ns),
                us(s.p95_ns),
                us(s.p99_ns),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["stage", "count", "total(us)", "mean(us)", "p50(us)", "p95(us)", "p99(us)"],
            &stage_rows
        )
    );

    let heads = per_head(&events);
    if !heads.is_empty() {
        println!("Per-head attention time:\n");
        let head_rows: Vec<Vec<String>> = heads
            .iter()
            .map(|(label, total_ns, count)| {
                vec![label.clone(), count.to_string(), us(*total_ns)]
            })
            .collect();
        println!(
            "{}",
            render_table(&["head", "spans", "total(us)"], &head_rows)
        );
    }

    if !metrics.counters.is_empty() {
        println!("Counters:\n");
        let rows: Vec<Vec<String>> = metrics
            .counters
            .iter()
            .map(|c| vec![c.name.clone(), c.value.to_string()])
            .collect();
        println!("{}", render_table(&["counter", "value"], &rows));
    }
    if !metrics.histograms.is_empty() {
        println!("Histograms (live-block counts, chunk times):\n");
        let rows: Vec<Vec<String>> = metrics
            .histograms
            .iter()
            .map(|h| {
                vec![
                    h.name.clone(),
                    h.count.to_string(),
                    f(h.mean, 1),
                    h.p50.to_string(),
                    h.p95.to_string(),
                    h.p99.to_string(),
                    h.max.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["histogram", "count", "mean", "p50", "p95", "p99", "max"], &rows)
        );
    }

    if fallback_tally.is_empty() {
        println!("Fallbacks: none ({fallback_heads} heads fell back, {heads_alpha_unsatisfied} heads missed alpha)");
    } else {
        println!("Fallbacks ({fallback_heads} heads, {heads_alpha_unsatisfied} missed alpha):");
        for (reason, n) in &fallback_tally {
            println!("  {reason}: {n}");
        }
    }

    check_stage_ordering(&stages);

    let summary = TraceSummary {
        seq_len,
        threads: sa_tensor::pool::current_threads(),
        stages,
        counters: metrics.counters,
        fallbacks: fallback_tally,
        heads_alpha_unsatisfied,
        fallback_heads,
    };
    if let Some(path) = write_json(&args, "trace_summary", &summary) {
        // Self-validate what we just wrote: re-read, schema-check.
        let doc: sa_json::Json = load_json(&path).expect("trace_summary re-reads");
        match validate_summary(&doc) {
            Ok(n) => println!("\nwrote {} ({n} stages, schema ok)", path.display()),
            Err(e) => {
                eprintln!("error: {} failed schema check: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = chrome_path {
        let doc: sa_json::Json = load_json(&path).expect("chrome trace re-reads");
        match sa_trace::validate_chrome_trace(&doc) {
            Ok(n) => println!("wrote {} ({n} trace events, schema ok)", path.display()),
            Err(e) => {
                eprintln!("error: {} failed schema check: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Head spans grouped by `L<l>.H<h>` label, heaviest first.
fn per_head(events: &[sa_trace::SpanEvent]) -> Vec<(String, u64, u64)> {
    let mut heads: Vec<(String, u64, u64)> = Vec::new();
    for e in events {
        if e.cat != "model" || e.name != "head" {
            continue;
        }
        let label = e.label.clone().unwrap_or_else(|| "?".to_string());
        match heads.iter_mut().find(|(l, _, _)| *l == label) {
            Some((_, total, count)) => {
                *total += e.dur_ns;
                *count += 1;
            }
            None => heads.push((label, e.dur_ns, 1)),
        }
    }
    heads.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    heads
}

/// Asserts the paper's Table-4 stage ordering on the measured spans:
/// building the sparse index (stage-1 sampling + stage-2 filtering) must
/// cost less than running the sparse kernel it feeds. Exits non-zero on
/// violation so `scripts/verify.sh` catches regressions.
fn check_stage_ordering(stages: &[StageSummary]) {
    let total = |name: &str| {
        stages
            .iter()
            .find(|s| s.cat == "core" && s.name == name)
            .map_or(0, |s| s.total_ns)
    };
    let index_build = total("stage1_sampling") + total("stage2_filtering");
    let kernel = total("sparse_kernel");
    if kernel == 0 {
        eprintln!("error: no core/sparse_kernel spans recorded");
        std::process::exit(1);
    }
    if index_build >= kernel {
        eprintln!(
            "error: stage ordering violated: sampling+filtering {}us >= sparse kernel {}us",
            us(index_build),
            us(kernel)
        );
        std::process::exit(1);
    }
    println!(
        "\nStage ordering ok: sampling+filtering {}us < sparse kernel {}us ({}x)",
        us(index_build),
        us(kernel),
        f(kernel as f64 / index_build.max(1) as f64, 1)
    );
}
