//! Table 3: hyper-parameter ablation on the ChatGLM2-like model.
//!
//! Varies one hyper-parameter at a time around the default operating
//! point (α=0.95, r_w=8 %, r_row=5 %) and reports LongBench / BABILong /
//! NIAH totals. Paper shape: performance degrades for small α, small
//! windows, or tiny sampling ratios, and saturates at the defaults.
//!
//! `--extended` adds design-choice ablations beyond the paper: forced
//! sinks, the coarse stage-2 schedule, and a no-window variant.

use sa_baselines::{AttentionMethod, FullAttention, SampleAttentionMethod};
use sa_bench::{f, render_table, write_json, Args};
use sa_core::{KvRatioSchedule, SampleAttention, SampleAttentionConfig};
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_workloads::{babilong_suite, evaluate_method, longbench_suite, needle_grid, NeedleConfig, Task};
struct AblationRow {
    variant: String,
    longbench: f32,
    babilong: f32,
    needle: f32,
    density: f64,
}

sa_json::impl_json_struct!(AblationRow {
    variant,
    longbench,
    babilong,
    needle,
    density
});

/// SampleAttention with an explicit config + schedule behind the method
/// interface.
struct Variant {
    name: String,
    method: Box<dyn AttentionMethod>,
}

fn sa(name: &str, config: SampleAttentionConfig) -> Variant {
    Variant {
        name: name.to_string(),
        method: Box::new(SampleAttentionMethod::new(config)),
    }
}

/// Adapter for a custom stage-2 schedule.
struct ScheduledSa {
    inner: SampleAttention,
}

impl AttentionMethod for ScheduledSa {
    fn name(&self) -> &str {
        "SampleAttention(coarse)"
    }
    fn forward(
        &self,
        q: &sa_tensor::Matrix,
        k: &sa_tensor::Matrix,
        v: &sa_tensor::Matrix,
    ) -> Result<sa_baselines::MethodOutput, sa_tensor::TensorError> {
        let out = self.inner.forward(q, k, v).map_err(|e| match e {
            sa_core::SampleAttentionError::Tensor(t) => t,
            other => sa_tensor::TensorError::InvalidDimension {
                op: "ScheduledSa",
                what: other.to_string(),
            },
        })?;
        Ok(sa_baselines::MethodOutput {
            output: out.output,
            cost: out.stats.total_cost(),
            density: out.stats.mask_density,
            alpha_satisfied: out.stats.alpha_satisfied,
            fell_back: out.stats.fell_back(),
            fallback_reason: out.stats.fallback_reason,
        })
    }
}

fn main() {
    let args = Args::parse();
    let extended = args.flag("--extended");
    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(args.seed)).expect("model");
    let vocab = model.config().vocab_size;

    let (length, instances) = if args.quick { (256, 1) } else { (384, 1) };
    let longbench: Vec<Task> = longbench_suite(vocab, length, instances, args.seed);
    let babilong: Vec<Task> = babilong_suite(vocab, &[length], args.seed ^ 1);
    let needle: Vec<Task> = needle_grid(
        vocab,
        &NeedleConfig {
            lengths: vec![length],
            depth_intervals: if args.quick { 4 } else { 8 },
            seed: args.seed ^ 2,
        },
    )
    .into_iter()
    .map(|c| c.task)
    .collect();

    let cfg = |alpha: f32, r_w: f32, r_row: f32| {
        SampleAttentionConfig::builder()
            .cra_threshold(alpha)
            .window_ratio(r_w)
            .sample_ratio(r_row)
            .build()
            .expect("valid config")
    };

    let mut variants: Vec<Variant> = vec![Variant {
        name: "full attention".to_string(),
        method: Box::new(FullAttention::new()),
    }];
    for alpha in [0.80f32, 0.90, 0.95, 0.98] {
        variants.push(sa(&format!("alpha={alpha:.2}"), cfg(alpha, 0.08, 0.05)));
    }
    variants.push(sa("r_w=4%", cfg(0.95, 0.04, 0.05)));
    // r_w=8% is the alpha=0.95 row.
    variants.push(sa("r_row=2%", cfg(0.95, 0.08, 0.02)));
    variants.push(sa("r_row=10%", cfg(0.95, 0.08, 0.10)));
    if extended {
        variants.push(sa(
            "no window (min_window=1)",
            SampleAttentionConfig::builder()
                .window_ratio(0.0)
                .min_window(1)
                .build()
                .expect("valid"),
        ));
        variants.push(sa(
            "forced sinks=4",
            SampleAttentionConfig::builder()
                .forced_sinks(4)
                .build()
                .expect("valid"),
        ));
        variants.push(Variant {
            name: "coarse stage-2 schedule".to_string(),
            method: Box::new(ScheduledSa {
                inner: SampleAttention::with_schedule(
                    SampleAttentionConfig::paper_default(),
                    KvRatioSchedule::paper_coarse(),
                ),
            }),
        });
    }

    println!("Table 3: hyper-parameter ablation (S={length})\n");
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for v in &variants {
        let lb = evaluate_method(&model, &longbench, v.method.as_ref()).expect("lb");
        let bl = evaluate_method(&model, &babilong, v.method.as_ref()).expect("bl");
        let ni = evaluate_method(&model, &needle, v.method.as_ref()).expect("ni");
        rows.push(vec![
            v.name.clone(),
            f(lb.total as f64, 1),
            f(bl.total as f64, 1),
            f(ni.total as f64, 1),
            f(lb.mean_density, 3),
        ]);
        payload.push(AblationRow {
            variant: v.name.clone(),
            longbench: lb.total,
            babilong: bl.total,
            needle: ni.total,
            density: lb.mean_density,
        });
    }
    println!(
        "{}",
        render_table(
            &["variant", "LongBench", "BABILong", "Needle", "mask density"],
            &rows
        )
    );
    println!(
        "Paper shape: scores dip at alpha=0.80, r_w=4%, r_row=2%, and saturate at the\ndefaults (alpha=0.95, r_w=8%, r_row=5%); density falls with alpha."
    );
    write_json(&args, "table3_ablation", &payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_json_round_trip() {
        let r = AblationRow {
            variant: "full pipeline".into(),
            longbench: 41.0,
            babilong: 62.0,
            needle: 99.0,
            density: 0.61,
        };
        let text = sa_json::to_string(&vec![r]);
        let back: Vec<AblationRow> = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
