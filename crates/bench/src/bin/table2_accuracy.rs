//! Table 2: accuracy comparison across sparse attention methods on the
//! LongBench-proxy and BABILong-proxy suites, for both synthetic
//! backbones.
//!
//! Paper shape to reproduce: SampleAttention ≥ 99 % of full attention
//! (near-lossless) on every family; BigBird intermediate (~91 %);
//! StreamingLLM / HyperAttention / Hash-Sparse degrade sharply.

use sa_baselines::{
    AttentionMethod, BigBird, FullAttention, HashSparse, HyperAttention, SampleAttentionMethod,
    StreamingLlm,
};
use sa_bench::{f, render_table, write_json, Args};
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_workloads::{babilong_suite, evaluate_method, longbench_suite, normalize_to_full, Task};
struct ModelReport {
    model: String,
    methods: Vec<sa_workloads::MethodReport>,
    babilong: Vec<(String, f32)>,
    pct_of_full: Vec<(String, f32)>,
}

sa_json::impl_json_struct!(ModelReport {
    model,
    methods,
    babilong,
    pct_of_full
});

fn methods(seed: u64, s: usize) -> Vec<Box<dyn AttentionMethod>> {
    vec![
        Box::new(FullAttention::new()),
        Box::new(SampleAttentionMethod::paper_default()),
        Box::new(BigBird::paper_config(seed)),
        Box::new(StreamingLlm::paper_config()),
        Box::new(HyperAttention::scaled(s, seed)),
        Box::new(HashSparse::paper_config(seed)),
    ]
}

fn main() {
    let args = Args::parse();
    let (length, instances) = if args.quick { (256, 1) } else { (384, 2) };
    let babilong_lengths: Vec<usize> = if args.quick {
        vec![256]
    } else {
        vec![256, 512]
    };

    let mut payloads = Vec::new();
    for (name, config) in [
        ("ChatGLM2-like", ModelConfig::chatglm2_like(args.seed)),
        ("InternLM2-like", ModelConfig::internlm2_like(args.seed ^ 1)),
    ] {
        let model = SyntheticTransformer::new(config).expect("model");
        let vocab = config.vocab_size;
        let lb: Vec<Task> = longbench_suite(vocab, length, instances, args.seed);
        let bl: Vec<Task> = babilong_suite(vocab, &babilong_lengths, args.seed ^ 2);

        println!("== {name} ==\n");
        let mut lb_reports = Vec::new();
        let mut bl_totals = Vec::new();
        for m in methods(args.seed, length) {
            let lb_report = evaluate_method(&model, &lb, m.as_ref()).expect("evaluate");
            let bl_report = evaluate_method(&model, &bl, m.as_ref()).expect("evaluate");
            bl_totals.push((m.name().to_string(), bl_report.total / bl_report.family_scores.len().max(1) as f32));
            lb_reports.push(lb_report);
        }

        let full_total = lb_reports[0].total;
        let headers: Vec<&str> = {
            let mut h = vec!["method"];
            h.extend(
                lb_reports[0]
                    .family_scores
                    .iter()
                    .map(|fs| fs.family.as_str()),
            );
            h.push("LB total");
            h.push("BABILong");
            h.push("% of full");
            h
        };
        let rows: Vec<Vec<String>> = lb_reports
            .iter()
            .zip(&bl_totals)
            .map(|(r, (_, bl_mean))| {
                let mut row = vec![r.method.clone()];
                row.extend(r.family_scores.iter().map(|fs| f(fs.score as f64, 1)));
                row.push(f(r.total as f64, 1));
                row.push(f(*bl_mean as f64, 1));
                row.push(format!("{}%", f(100.0 * r.total as f64 / full_total as f64, 1)));
                row
            })
            .collect();
        println!("{}", render_table(&headers, &rows));

        let pct: Vec<(String, f32)> = lb_reports
            .iter()
            .map(|r| (r.method.clone(), normalize_to_full(r, &lb_reports[0])))
            .collect();
        payloads.push(ModelReport {
            model: name.to_string(),
            methods: lb_reports,
            babilong: bl_totals,
            pct_of_full: pct,
        });
    }
    println!(
        "Paper shape: SampleAttention >= 99% of full; BigBird ~91%; StreamingLLM /\nHyperAttention / Hash-Sparse degrade sharply."
    );
    write_json(&args, "table2_accuracy", &payloads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_workloads::{FamilyScore, MethodReport};

    #[test]
    fn payload_json_round_trip() {
        let p = ModelReport {
            model: "chatglm2-like".into(),
            methods: vec![MethodReport {
                method: "sample_attention".into(),
                family_scores: vec![FamilyScore {
                    family: "SingleDoc QA".into(),
                    score: 40.5,
                    n_tasks: 4,
                }],
                total: 40.5,
                mean_density: 0.6,
            }],
            babilong: vec![("sample_attention".into(), 61.0)],
            pct_of_full: vec![("sample_attention".into(), 99.2)],
        };
        let text = sa_json::to_string(&vec![p]);
        let back: Vec<ModelReport> = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
