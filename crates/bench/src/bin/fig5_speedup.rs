//! Figure 5: attention latency, sampling-overhead share, and TTFT from
//! 8K to 96K tokens (ChatGLM2-6B geometry, single A100, batch 1).
//!
//! Reproduces: (a) self-attention latency for SDPA / FlashAttention2 /
//! SampleAttention(α=0.95, 0.80); (b) the sampling vs sparse-compute time
//! split inside SampleAttention; (c) the TTFT comparison. Paper anchors:
//! at 96K, attention speedups 2.20× (α=0.95) and 5.12× (α=0.80) over
//! FlashAttention2; TTFT reductions 1.62× and 2.28×.

use sa_bench::{f, load_json, render_table, write_json, Args};
use sa_perf::ttft::{AttentionKind, TtftModel};
use std::path::Path;

struct Row {
    seq_len: usize,
    sdpa_ms: f64,
    flash_ms: f64,
    sample95_ms: f64,
    sample80_ms: f64,
    speedup95: f64,
    speedup80: f64,
    sampling_share95: f64,
    ttft_flash_ms: f64,
    ttft95_ms: f64,
    ttft80_ms: f64,
    /// SampleAttention(α=0.95) with the measured tiled-kernel speedup
    /// applied to the sparse-compute share (sampling is unaffected by
    /// the kernel layout). Equals `sample95_ms` when no
    /// `results/tile_kernel.json` A/B report is available.
    sample95_tiled_ms: f64,
    /// `flash_ms / sample95_tiled_ms`.
    speedup95_tiled: f64,
}

sa_json::impl_json_struct!(Row {
    seq_len,
    sdpa_ms,
    flash_ms,
    sample95_ms,
    sample80_ms,
    speedup95,
    speedup80,
    sampling_share95,
    ttft_flash_ms,
    ttft95_ms,
    ttft80_ms,
    sample95_tiled_ms: default,
    speedup95_tiled: default
});

/// Median single-thread speedup of the tiled kernel over the row-major
/// kernel, measured by the `tile_kernel` binary. Falls back to 1.0 (no
/// adjustment) when the A/B report has not been generated.
fn measured_tile_speedup(out_dir: &Path) -> f64 {
    let path = out_dir.join("tile_kernel.json");
    load_json::<sa_json::Json>(&path)
        .ok()
        .and_then(|doc| doc.get("median_serial_speedup").and_then(|v| v.as_f64()))
        .filter(|s| s.is_finite() && *s > 0.0)
        .unwrap_or(1.0)
}

fn main() {
    let args = Args::parse();
    let model = TtftModel::paper_microbench();
    let lengths: Vec<usize> = if args.quick {
        vec![8_192, 32_768, 98_304]
    } else {
        vec![8_192, 16_384, 32_768, 49_152, 65_536, 81_920, 98_304]
    };
    let sa95 = AttentionKind::SampleAttention {
        alpha: 0.95,
        sample_ratio: 0.05,
    };
    let sa80 = AttentionKind::SampleAttention {
        alpha: 0.80,
        sample_ratio: 0.05,
    };

    let tile_speedup = measured_tile_speedup(&args.out_dir);

    let rows: Vec<Row> = lengths
        .iter()
        .map(|&s| {
            let sdpa = model.attention_latency(s, AttentionKind::Sdpa) * 1e3;
            let flash = model.attention_latency(s, AttentionKind::Flash) * 1e3;
            let s95 = model.attention_latency(s, sa95) * 1e3;
            let s80 = model.attention_latency(s, sa80) * 1e3;
            let b95 = model.ttft(s, sa95);
            let ttft_flash = model.ttft(s, AttentionKind::Flash).total_s() * 1e3;
            let share = b95.sampling_s / b95.attention_s;
            // Only the sparse-compute share is accelerated by the tiled
            // layout; sampling/filter time is kernel-agnostic.
            let s95_tiled = s95 * (share + (1.0 - share) / tile_speedup);
            Row {
                seq_len: s,
                sdpa_ms: sdpa,
                flash_ms: flash,
                sample95_ms: s95,
                sample80_ms: s80,
                speedup95: flash / s95,
                speedup80: flash / s80,
                sampling_share95: share,
                ttft_flash_ms: ttft_flash,
                ttft95_ms: b95.total_s() * 1e3,
                ttft80_ms: model.ttft(s, sa80).total_s() * 1e3,
                sample95_tiled_ms: s95_tiled,
                speedup95_tiled: flash / s95_tiled,
            }
        })
        .collect();

    println!("Figure 5(a): self-attention latency per full forward (ms), 28 layers x 32 heads, d=128");
    println!(
        "(tiled column applies the measured {}x single-thread tiled-kernel speedup to the sparse share)\n",
        f(tile_speedup, 2)
    );
    let table_a: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}K", r.seq_len / 1024),
                f(r.sdpa_ms, 1),
                f(r.flash_ms, 1),
                f(r.sample95_ms, 1),
                f(r.sample95_tiled_ms, 1),
                f(r.sample80_ms, 1),
                format!("{}x", f(r.speedup95, 2)),
                format!("{}x", f(r.speedup95_tiled, 2)),
                format!("{}x", f(r.speedup80, 2)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "S",
                "SDPA",
                "FlashAttn2",
                "SA(a=.95)",
                "SA.95 tiled",
                "SA(a=.80)",
                "speedup.95",
                "tiled.95",
                "speedup.80"
            ],
            &table_a
        )
    );

    println!("Figure 5(b): sampling share of SampleAttention(a=0.95) time\n");
    let table_b: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}K", r.seq_len / 1024),
                format!("{}%", f(r.sampling_share95 * 100.0, 1)),
                format!("{}%", f((1.0 - r.sampling_share95) * 100.0, 1)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["S", "sampling+filter", "sparse compute"], &table_b)
    );

    println!("Figure 5(c): TTFT (ms) and reduction vs FlashAttention2\n");
    let table_c: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}K", r.seq_len / 1024),
                f(r.ttft_flash_ms, 0),
                f(r.ttft95_ms, 0),
                f(r.ttft80_ms, 0),
                format!("{}x", f(r.ttft_flash_ms / r.ttft95_ms, 2)),
                format!("{}x", f(r.ttft_flash_ms / r.ttft80_ms, 2)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["S", "TTFT flash", "TTFT SA.95", "TTFT SA.80", "red.95", "red.80"],
            &table_c
        )
    );

    if let Some(last) = rows.last() {
        println!(
            "Paper anchors at 96K: attention speedups 2.20x / 5.12x; TTFT reductions 1.62x / 2.28x."
        );
        println!(
            "This model at {}K:  attention speedups {}x / {}x; TTFT reductions {}x / {}x.",
            last.seq_len / 1024,
            f(last.speedup95, 2),
            f(last.speedup80, 2),
            f(last.ttft_flash_ms / last.ttft95_ms, 2),
            f(last.ttft_flash_ms / last.ttft80_ms, 2),
        );
    }
    write_json(&args, "fig5_speedup", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_json_round_trip() {
        let p = Row {
            seq_len: 98_304,
            sdpa_ms: 900.0,
            flash_ms: 300.0,
            sample95_ms: 130.0,
            sample80_ms: 110.0,
            speedup95: 2.3,
            speedup80: 2.7,
            sampling_share95: 0.12,
            ttft_flash_ms: 5000.0,
            ttft95_ms: 2400.0,
            ttft80_ms: 2100.0,
            sample95_tiled_ms: 120.0,
            speedup95_tiled: 2.5,
        };
        let text = sa_json::to_string(&vec![p]);
        let back: Vec<Row> = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
