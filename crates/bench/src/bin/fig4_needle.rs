//! Figure 4 (and Appendix Figure 8): Needle-in-a-Haystack scores per
//! method across lengths and depths.
//!
//! Prints one depth × length score grid per method plus totals.
//! Paper shape: full attention and SampleAttention solid everywhere;
//! StreamingLLM a narrow band (sinks + recent window); hash/LSH methods
//! patchy.

use sa_baselines::{
    AttentionMethod, BigBird, FullAttention, HashSparse, HyperAttention, SampleAttentionMethod,
    StreamingLlm,
};
use sa_bench::{f, write_json, Args};
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_workloads::{needle_grid, NeedleCell, NeedleConfig};
struct MethodGrid {
    method: String,
    lengths: Vec<usize>,
    depths: Vec<f64>,
    /// scores[depth][length]
    scores: Vec<Vec<f32>>,
    total: f32,
}

sa_json::impl_json_struct!(MethodGrid {
    method,
    lengths,
    depths,
    scores,
    total
});

fn main() {
    let args = Args::parse();
    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(args.seed)).expect("model");
    let lengths: Vec<usize> = if args.quick {
        vec![256, 512]
    } else {
        vec![256, 512, 768, 1024]
    };
    let depths = if args.quick { 4 } else { 8 };
    let cells: Vec<NeedleCell> = needle_grid(
        model.config().vocab_size,
        &NeedleConfig {
            lengths: lengths.clone(),
            depth_intervals: depths,
            seed: args.seed,
        },
    );
    let depth_values: Vec<f64> = cells
        .iter()
        .take(depths)
        .map(|c| c.depth_fraction)
        .collect();

    let methods: Vec<Box<dyn AttentionMethod>> = vec![
        Box::new(FullAttention::new()),
        Box::new(SampleAttentionMethod::paper_default()),
        Box::new(BigBird::paper_config(args.seed)),
        Box::new(StreamingLlm::paper_config()),
        Box::new(HyperAttention::scaled(512, args.seed)),
        Box::new(HashSparse::paper_config(args.seed)),
    ];

    let mut grids = Vec::new();
    for m in &methods {
        let mut scores = vec![vec![0.0f32; lengths.len()]; depths];
        for cell in &cells {
            let li = lengths.iter().position(|&l| l == cell.length).unwrap();
            let di = depth_values
                .iter()
                .position(|&d| (d - cell.depth_fraction).abs() < 1e-9)
                .unwrap();
            scores[di][li] = cell.task.evaluate(&model, m.as_ref()).expect("evaluate");
        }
        let total: f32 = scores.iter().flatten().sum();
        println!("== {} (total {total:.0} / {}) ==", m.name(), cells.len() * 100);
        print!("{:>8}", "depth\\S");
        for &l in &lengths {
            print!("{l:>7}");
        }
        println!();
        for (di, row) in scores.iter().enumerate() {
            print!("{:>8}", f(depth_values[di], 2));
            for v in row {
                print!("{:>7}", f(*v as f64, 0));
            }
            println!();
        }
        println!();
        grids.push(MethodGrid {
            method: m.name().to_string(),
            lengths: lengths.clone(),
            depths: depth_values.clone(),
            scores,
            total,
        });
    }

    println!("Totals (max {}):", cells.len() * 100);
    for g in &grids {
        println!("  {:32} {:>8}", g.method, f(g.total as f64, 0));
    }
    println!("\nPaper shape: FullAttention and SampleAttention near-perfect across the grid;\nStreamingLLM only at depth~0 (sinks) and depth~1 (window); others patchy.");
    write_json(&args, "fig4_needle", &grids);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_json_round_trip() {
        let p = MethodGrid {
            method: "sample_attention".into(),
            lengths: vec![256, 512],
            depths: vec![0.0, 0.5, 1.0],
            scores: vec![vec![100.0, 100.0], vec![99.0, 98.0], vec![100.0, 97.0]],
            total: 99.0,
        };
        let text = sa_json::to_string(&p);
        let back: MethodGrid = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
