//! Benchmark of the full synthetic-transformer prefill with different
//! attention methods plugged in — the CPU analogue of the paper's TTFT
//! measurement.
//!
//! Run with `cargo run -p sa-bench --release --bin bench_end_to_end`
//! (`--quick` shrinks the size sweep and trial count).

use sa_baselines::{AttentionMethod, FullAttention, SampleAttentionMethod, StreamingLlm};
use sa_bench::timing::Bench;
use sa_bench::Args;
use sa_model::{ModelConfig, SyntheticTransformer};

fn main() {
    let args = Args::parse();
    let model = SyntheticTransformer::new(ModelConfig::tiny(args.seed)).expect("model");
    let sizes: &[usize] = if args.quick { &[256] } else { &[256, 512] };
    let mut bench = Bench::new("prefill_ttft").trials(if args.quick { 5 } else { 10 });
    for &s in sizes {
        let tokens = model.tokenize_filler(s);
        let methods: Vec<(&str, Box<dyn AttentionMethod>)> = vec![
            ("full", Box::new(FullAttention::new())),
            (
                "sample_attention",
                Box::new(SampleAttentionMethod::paper_default()),
            ),
            ("streaming_llm", Box::new(StreamingLlm::paper_config())),
        ];
        for (name, m) in &methods {
            bench.run(&format!("{name}/s{s}"), || {
                model.prefill(&tokens, m.as_ref()).unwrap().hidden
            });
        }
    }
    print!("{}", bench.report());
}
