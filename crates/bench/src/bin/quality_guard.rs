//! quality_guard: end-to-end proof that the quality guardrail plane
//! enforces the near-lossless contract at runtime.
//!
//! Four legs, each asserting part of the contract:
//!
//! - **clean** — a mixed workload with per-tenant quality floors and
//!   shadow canaries enabled: zero quarantine transitions (no false
//!   positives on healthy traffic), the floored tenant never serves an
//!   uncertified rung, and every floor refusal surfaces as a typed
//!   `ShedQualityFloor` outcome, never a silent downgrade.
//! - **sweep** — the same workload replayed at canary denominators
//!   `[0, 64, 32, 8]`: canary selection is measurement-only, so served
//!   counts and certified goodput are *identical* at every rate (hence
//!   trivially monotone in the canary rate) while the number of probed
//!   requests grows as the denominator shrinks.
//! - **storm** — canaries on every request (`denominator = 1`) under an
//!   installed fault plan layering zero-mass stage-1 score tampering,
//!   serving-loop crashes, and checkpoint KV bit-flips. The zero-mass
//!   corruption poisons every sparse head, so the detector must
//!   quarantine **every** head of the model ("catches every injected
//!   corruption"); bit-flipped restores must all be caught by the
//!   checkpoint checksum. Lifting the plan, clean probation waves must
//!   re-admit every head.
//! - **determinism** — the storm-then-recovery trajectory (ledgers
//!   *and* the guard's quarantine/readmit transitions) replayed at
//!   `SA_THREADS` 1, 2, and default must serialize to byte-identical
//!   JSON.
//!
//! Outputs:
//! - stdout: per-leg verdict tables;
//! - `results/quality_guard.json` (`sa.quality_guard.v1`).
//!
//! Flags: `--seed <u64>`, `--quick` (smaller waves), `--out <dir>`.

use sa_bench::{f, render_table, write_json, Args};
use sa_serve::{
    mixed_workload, Ledger, Outcome, QualityGuard, QualityTransition, Scheduler, ServeConfig,
    SloSummary, TenantFloor,
};
use sa_tensor::fault::{self, FaultPlan};
use sa_tensor::pool;
use sa_trace::metrics;

/// The bench's results-file payload.
#[derive(Debug, Clone)]
struct QualityGuardReport {
    /// Results-file schema tag.
    schema: String,
    /// Workload, scheduler, and canary seed.
    seed: u64,
    /// Worker-thread counts the determinism leg replayed at.
    thread_counts: Vec<u64>,
    /// Requests per wave in the clean leg.
    clean_requests: u64,
    /// Waves replayed in the clean leg.
    clean_waves: u64,
    /// Canary-probed requests across the clean leg.
    clean_canaries: u64,
    /// Quarantine/readmit transitions on clean traffic (must be 0).
    clean_transitions: u64,
    /// `ShedQualityFloor` outcomes across the clean leg (typed floor
    /// refusals; the floored tenant is never silently downgraded).
    clean_floor_sheds: u64,
    /// The floored tenant's uncertified-token permille in the final
    /// clean wave (must respect its floor).
    clean_floored_tenant_uncertified_permille: u64,
    /// SLO summary of the final clean wave (carries the per-tenant
    /// certified-goodput quality columns).
    clean_slo: SloSummary,
    /// Canary denominators the sweep replayed (0 = disabled).
    sweep_denominators: Vec<u64>,
    /// Canary-probed requests at each denominator.
    sweep_canaries: Vec<u64>,
    /// Certified goodput (certified served / span) at each denominator.
    sweep_certified_goodput: Vec<f64>,
    /// Whether served counts and certified goodput were identical at
    /// every canary rate (canaries never perturb scheduling).
    sweep_scheduling_invariant: bool,
    /// Requests per wave in the storm leg.
    storm_requests: u64,
    /// Sparse heads in the model (layers × heads per layer).
    storm_total_heads: u64,
    /// Heads quarantined after the storm wave (must equal
    /// `storm_total_heads`: the zero-mass fault poisons every head).
    storm_quarantined_heads: u64,
    /// Quarantine trips recorded during the storm.
    storm_trips: u64,
    /// Readmissions recorded during the probation waves.
    storm_readmits: u64,
    /// Heads still quarantined after probation (must be 0).
    storm_residual_quarantined: u64,
    /// Attempts that resumed from a checkpoint during the storm.
    storm_recovered_attempts: u64,
    /// Bit-flipped checkpoint restores caught by the checksum.
    storm_checkpoint_corruptions: u64,
    /// Whether ledgers and guard transitions were byte-identical at
    /// every replayed thread count.
    identical_across_threads: bool,
    /// The canonical storm + recovery transition trail.
    transitions: Vec<QualityTransition>,
    /// The canonical storm-wave ledger (single-threaded replay).
    storm_ledger: Ledger,
}

sa_json::impl_json_struct!(QualityGuardReport {
    schema,
    seed,
    thread_counts,
    clean_requests,
    clean_waves,
    clean_canaries,
    clean_transitions,
    clean_floor_sheds,
    clean_floored_tenant_uncertified_permille,
    clean_slo,
    sweep_denominators,
    sweep_canaries,
    sweep_certified_goodput,
    sweep_scheduling_invariant,
    storm_requests,
    storm_total_heads,
    storm_quarantined_heads,
    storm_trips,
    storm_readmits,
    storm_residual_quarantined,
    storm_recovered_attempts,
    storm_checkpoint_corruptions,
    identical_across_threads,
    transitions,
    storm_ledger
});

/// Schema tag of `results/quality_guard.json`.
const SCHEMA: &str = "sa.quality_guard.v1";

/// The tenant carrying a quality floor in the clean leg.
const FLOORED_TENANT: u64 = 0;

fn counter_now(name: &str) -> u64 {
    metrics::snapshot()
        .counters
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

fn clean_config(seed: u64, denominator: u64) -> ServeConfig {
    ServeConfig {
        seed,
        canary_denominator: denominator,
        quality_floors: vec![TenantFloor {
            tenant: FLOORED_TENANT,
            // The floored tenant may degrade down to Tight but never to
            // the uncertified WindowOnly rung.
            max_rung_index: 2,
            max_uncertified_permille: 0,
        }],
        ..ServeConfig::default()
    }
    .from_env()
}

fn storm_config(seed: u64) -> ServeConfig {
    ServeConfig {
        seed,
        // Probe every served request: the storm must observe every
        // injected corruption, not a sampled fraction.
        canary_denominator: 1,
        ..ServeConfig::default()
    }
    .from_env()
}

fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .zero_mass()
        .serve_crash("serve_attempt", 4)
        .kv_bit_flips(1)
}

fn main() {
    let args = Args::parse();
    let n = if args.quick { 12 } else { 32 };
    let clean_waves = 3usize;
    sa_trace::set_enabled(true);
    metrics::reset();

    // Injected worker faults legitimately panic inside the pool's
    // containment; keep their backtraces quiet, surface anything else.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));

    // --- Clean leg: floors + canaries on healthy traffic. ---
    let requests = mixed_workload(args.seed, n);
    let scheduler = Scheduler::new(clean_config(args.seed, 4)).expect("tiny model config is valid");
    let mut guard = QualityGuard::for_model(scheduler.model());
    let mut clean_canaries = 0u64;
    let mut clean_floor_sheds = 0u64;
    let mut last_ledger = None;
    for _ in 0..clean_waves {
        let ledger = scheduler
            .run_guarded(&requests, &mut guard)
            .expect("clean wave never fails");
        ledger
            .validate(&requests)
            .expect("clean ledger accounts for every request");
        clean_canaries += ledger.records.iter().filter(|r| r.canary).count() as u64;
        clean_floor_sheds += ledger.count(Outcome::ShedQualityFloor) as u64;
        last_ledger = Some(ledger);
    }
    let last_ledger = last_ledger.expect("at least one clean wave ran");
    let clean_slo = SloSummary::from_ledger("oneshot_guarded", &last_ledger, &requests);

    assert!(clean_canaries > 0, "clean leg probed no canaries");
    assert!(
        guard.transitions().is_empty(),
        "false quarantine on clean traffic: {:?}",
        guard.transitions()
    );
    assert_eq!(guard.quarantined_count(), 0, "clean leg left heads quarantined");
    // The floored tenant never serves the uncertified rung, and its
    // floor refusals are typed sheds, not silent downgrades.
    for rec in &last_ledger.records {
        if rec.tenant == FLOORED_TENANT && rec.outcome == Outcome::Served {
            assert_ne!(
                rec.rung, "window_only",
                "floored tenant served an uncertified rung (request {})",
                rec.id
            );
        }
    }
    let floored_row = clean_slo
        .tenants
        .iter()
        .find(|t| t.tenant == FLOORED_TENANT)
        .expect("floored tenant appears in the SLO quality columns");
    assert_eq!(
        floored_row.uncertified_permille, 0,
        "floored tenant exceeded its uncertified-token cap"
    );
    let clean_uncertified_permille = floored_row.uncertified_permille;

    let mut clean_rows = vec![vec![
        n.to_string(),
        clean_waves.to_string(),
        clean_canaries.to_string(),
        "0".to_string(),
        clean_floor_sheds.to_string(),
        f(clean_slo.certified_goodput_per_sec, 3),
    ]];
    println!("quality guard: clean leg (seed {})\n", args.seed);
    println!(
        "{}",
        render_table(
            &["requests", "waves", "canaries", "false_trips", "floor_sheds", "cert_goodput"],
            &clean_rows.drain(..).collect::<Vec<_>>()
        )
    );

    // --- Sweep leg: canaries are measurement-only. ---
    let denominators: Vec<u64> = vec![0, 64, 32, 8];
    let mut sweep_canaries = Vec::new();
    let mut sweep_goodput = Vec::new();
    let mut sweep_served = Vec::new();
    for &d in &denominators {
        let s = Scheduler::new(clean_config(args.seed, d)).expect("tiny model config is valid");
        let ledger = s.run(&requests).expect("sweep wave never fails");
        ledger
            .validate(&requests)
            .expect("sweep ledger accounts for every request");
        let slo = SloSummary::from_ledger("oneshot", &ledger, &requests);
        sweep_canaries.push(ledger.records.iter().filter(|r| r.canary).count() as u64);
        sweep_goodput.push(slo.certified_goodput_per_sec);
        sweep_served.push(ledger.count(Outcome::Served) as u64);
    }
    let sweep_invariant = sweep_served.iter().all(|&s| s == sweep_served[0])
        && sweep_goodput.iter().all(|&g| g == sweep_goodput[0]);
    assert!(
        sweep_invariant,
        "canary rate perturbed scheduling: served {sweep_served:?}, goodput {sweep_goodput:?}"
    );
    assert_eq!(sweep_canaries[0], 0, "denominator 0 must disable canaries");
    assert!(
        sweep_canaries.windows(2).all(|w| w[0] <= w[1]),
        "canary volume must grow as the denominator shrinks: {sweep_canaries:?}"
    );
    let sweep_rows: Vec<Vec<String>> = denominators
        .iter()
        .zip(&sweep_canaries)
        .zip(&sweep_goodput)
        .map(|((d, c), g)| vec![d.to_string(), c.to_string(), f(*g, 3)])
        .collect();
    println!("sweep leg: certified goodput vs canary rate\n");
    println!(
        "{}",
        render_table(&["denominator", "canaries", "cert_goodput"], &sweep_rows)
    );

    // --- Storm leg: every corruption detected, then full recovery. ---
    let storm_requests = mixed_workload(args.seed ^ 0x51_07, n);
    let storm_scheduler = Scheduler::new(storm_config(args.seed)).expect("tiny model config is valid");
    let total_heads = storm_scheduler.model().layers().len()
        * storm_scheduler
            .model()
            .layers()
            .first()
            .map_or(0, |l| l.num_heads());
    let probation_waves = 3usize;
    let base_corruptions = counter_now("serve.checkpoint.corruptions");

    let default_threads = pool::current_threads();
    let mut thread_counts: Vec<usize> = Vec::new();
    for t in [1, 2, default_threads] {
        if !thread_counts.contains(&t) {
            thread_counts.push(t);
        }
    }

    // Replay the whole storm-then-recovery trajectory at every thread
    // count; ledgers and the guard's transition trail must not budge.
    let mut trajectories: Vec<(Vec<String>, String, usize, u64)> = Vec::new();
    let mut canonical_ledgers: Vec<Ledger> = Vec::new();
    let mut canonical_guard = None;
    for &t in &thread_counts {
        let mut g = QualityGuard::for_model(storm_scheduler.model());
        let mut quarantined_after_storm = 0u64;
        let ledgers = pool::with_threads(t, || {
            let mut out = Vec::new();
            {
                let _faults = fault::install(storm_plan(args.seed));
                let ledger = storm_scheduler
                    .run_guarded(&storm_requests, &mut g)
                    .expect("storm wave never fails");
                ledger
                    .validate(&storm_requests)
                    .expect("storm ledger accounts for every request");
                out.push(ledger);
            }
            quarantined_after_storm = g.quarantined_count() as u64;
            for _ in 0..probation_waves {
                let ledger = storm_scheduler
                    .run_guarded(&storm_requests, &mut g)
                    .expect("probation wave never fails");
                ledger
                    .validate(&storm_requests)
                    .expect("probation ledger accounts for every request");
                out.push(ledger);
            }
            out
        });
        let ledger_json: Vec<String> = ledgers.iter().map(sa_json::to_string).collect();
        let transitions_json = sa_json::to_string(&g.transitions().to_vec());
        trajectories.push((
            ledger_json,
            transitions_json,
            g.quarantined_count(),
            quarantined_after_storm,
        ));
        if canonical_guard.is_none() {
            canonical_ledgers = ledgers;
            canonical_guard = Some(g);
        }
    }
    let canonical_guard = canonical_guard.expect("at least one thread count replayed");
    let identical = trajectories
        .iter()
        .all(|(l, t, q, qs)| {
            (l, t, q, qs)
                == (
                    &trajectories[0].0,
                    &trajectories[0].1,
                    &trajectories[0].2,
                    &trajectories[0].3,
                )
        });
    assert!(
        identical,
        "storm trajectory differs across thread counts {thread_counts:?}"
    );

    let quarantined_after_storm = trajectories[0].3;
    let residual = trajectories[0].2 as u64;
    let trips = canonical_guard
        .transitions()
        .iter()
        .filter(|t| t.action == "quarantine")
        .count() as u64;
    let readmits = canonical_guard
        .transitions()
        .iter()
        .filter(|t| t.action == "readmit")
        .count() as u64;
    let storm_ledger = canonical_ledgers
        .first()
        .cloned()
        .expect("storm wave produced a ledger");
    let storm_recovered: u64 = storm_ledger
        .records
        .iter()
        .map(|r| r.recovered_attempts)
        .sum();
    let storm_corruptions = counter_now("serve.checkpoint.corruptions") - base_corruptions;

    // The zero-mass fault poisons stage 1 of every sparse head: the
    // detector must have caught every one of them.
    assert_eq!(
        quarantined_after_storm as usize, total_heads,
        "storm corruption escaped the detector on some heads"
    );
    assert_eq!(
        residual, 0,
        "{residual} heads never re-admitted after clean probation"
    );
    assert!(readmits >= total_heads as u64, "probation re-admitted too few heads");
    assert!(
        storm_ledger.count(Outcome::Served) > 0,
        "storm leg served nothing"
    );

    let storm_rows = vec![vec![
        n.to_string(),
        total_heads.to_string(),
        quarantined_after_storm.to_string(),
        trips.to_string(),
        readmits.to_string(),
        residual.to_string(),
        storm_recovered.to_string(),
        storm_corruptions.to_string(),
    ]];
    println!("storm leg: zero-mass + crash + kv-flip fault plan\n");
    println!(
        "{}",
        render_table(
            &[
                "requests",
                "heads",
                "quarantined",
                "trips",
                "readmits",
                "residual",
                "recovered",
                "kv_caught",
            ],
            &storm_rows
        )
    );

    let report = QualityGuardReport {
        schema: SCHEMA.to_string(),
        seed: args.seed,
        thread_counts: thread_counts.iter().map(|&t| t as u64).collect(),
        clean_requests: n as u64,
        clean_waves: clean_waves as u64,
        clean_canaries,
        clean_transitions: 0,
        clean_floor_sheds,
        clean_floored_tenant_uncertified_permille: clean_uncertified_permille,
        clean_slo,
        sweep_denominators: denominators,
        sweep_canaries,
        sweep_certified_goodput: sweep_goodput,
        sweep_scheduling_invariant: sweep_invariant,
        storm_requests: n as u64,
        storm_total_heads: total_heads as u64,
        storm_quarantined_heads: quarantined_after_storm,
        storm_trips: trips,
        storm_readmits: readmits,
        storm_residual_quarantined: residual,
        storm_recovered_attempts: storm_recovered,
        storm_checkpoint_corruptions: storm_corruptions,
        identical_across_threads: identical,
        transitions: canonical_guard.transitions().to_vec(),
        storm_ledger,
    };
    if let Some(path) = write_json(&args, "quality_guard", &report) {
        println!("wrote {}", path.display());
    }
    println!(
        "verdict: {} heads quarantined and re-admitted, 0 false trips, ledgers + transitions identical at threads {:?}",
        total_heads, thread_counts
    );
}
